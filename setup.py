"""Setup shim for legacy editable installs in offline environments.

The container has setuptools but no ``wheel`` package and no network, so
``pip install -e .`` must fall back to ``setup.py develop``.  All project
metadata lives in ``pyproject.toml``; this file only bridges the two.
"""

from setuptools import setup

setup()
