"""Edge-deployment planning with the hardware cost models.

The paper motivates NSHD for resource-limited edge devices (Sec. I).
This example sweeps every cut layer of a chosen CNN and reports, for
each candidate deployment: inference MACs, estimated Xavier-class GPU
energy, ZCU104 DPU throughput, and model size — then recommends the
shallowest cut whose projected size fits a deployment budget.

Purely analytic (no training), so it runs in seconds.
"""

import argparse

from repro.experiments import HD_DIM, REDUCED_FEATURES
from repro.hardware import (DPUModel, cnn_inference_energy,
                            cnn_size_bytes, energy_improvement,
                            nshd_inference_energy, nshd_macs,
                            nshd_size_bytes)
from repro.models import create_model, paper_cut_layers
from repro.utils import format_table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="mobilenetv2",
                        choices=["vgg16", "mobilenetv2", "efficientnet_b0",
                                 "efficientnet_b7"])
    parser.add_argument("--classes", type=int, default=10)
    parser.add_argument("--size-budget-mb", type=float, default=1.0,
                        help="deployment flash/DRAM budget for the model")
    args = parser.parse_args()

    model = create_model(args.model, num_classes=args.classes,
                         width_mult=0.25, seed=0)
    dpu = DPUModel()
    cnn_energy = cnn_inference_energy(model)["total"]
    cnn_mb = cnn_size_bytes(model).total_mb
    cnn_fps = dpu.cnn_fps(model)

    rows = []
    recommendation = None
    candidate_layers = sorted(set(
        list(paper_cut_layers(args.model)) +
        [model.num_feature_layers() - 1]))
    for layer in candidate_layers:
        stages = nshd_macs(model, layer, HD_DIM, REDUCED_FEATURES,
                           args.classes)
        energy = nshd_inference_energy(model, layer, HD_DIM,
                                       REDUCED_FEATURES,
                                       args.classes)["total"]
        fps = dpu.nshd_fps(model, layer, HD_DIM, REDUCED_FEATURES,
                           args.classes)
        size_mb = nshd_size_bytes(model, layer, HD_DIM, REDUCED_FEATURES,
                                  args.classes).total_mb
        saving = energy_improvement(cnn_energy, energy)
        rows.append([f"NSHD@{layer}", f"{stages['total'] / 1e6:.2f}M",
                     f"{saving * 100:+.1f}%", f"{fps:.0f}",
                     f"{size_mb:.2f}MB"])
        if recommendation is None and size_mb <= args.size_budget_mb:
            recommendation = (layer, size_mb, saving)
    rows.append(["Full CNN", "-", "+0.0%", f"{cnn_fps:.0f}",
                 f"{cnn_mb:.2f}MB"])

    print(format_table(
        ["Deployment", "MACs/inf", "Energy vs CNN", "DPU FPS", "Size"],
        rows, title=f"Edge deployment options for {args.model} "
                    f"({args.classes} classes)"))

    if recommendation:
        layer, size_mb, saving = recommendation
        print(f"\nRecommendation: cut at layer {layer} — fits the "
              f"{args.size_budget_mb:.1f}MB budget at {size_mb:.2f}MB and "
              f"saves {saving * 100:.0f}% energy vs the full CNN.")
    else:
        print(f"\nNo NSHD configuration fits {args.size_budget_mb:.1f}MB; "
              f"consider a smaller width multiplier or lower D.")


if __name__ == "__main__":
    main()
