"""Quickstart: train an NSHD model end to end on a small synthetic task.

Steps (mirroring the paper's pipeline, Fig. 1):
 1. generate a CIFAR-like synthetic dataset;
 2. pretrain a small VGG16-style CNN (the "off-the-shelf" teacher);
 3. build NSHD: truncate the CNN at a cut layer, compress features with
    the manifold learner, encode to hypervectors, retrain class
    hypervectors with knowledge distillation (Algorithm 1);
 4. compare accuracy and model size against the full CNN.

Runs in a couple of minutes on CPU.  For the paper-scale experiments see
``benchmarks/``.
"""

import numpy as np

from repro.data import make_dataset, normalize_images
from repro.hardware import cnn_size_bytes, nshd_size_bytes
from repro.learn import NSHD
from repro.models import create_model, train_cnn

CUT_LAYER = 27       # ReLU after conv5-2, as in the paper's VGG16 rows
HD_DIM = 2000
REDUCED_FEATURES = 32


def main():
    print("1) Generating synthetic CIFAR-like data ...")
    x_train, y_train, x_test, y_test = make_dataset(
        num_classes=10, num_train=500, num_test=200, seed=42)
    x_train, mean, std = normalize_images(x_train)
    x_test, _, _ = normalize_images(x_test, mean, std)

    print("2) Pretraining the VGG16-style teacher (a few epochs) ...")
    model = create_model("vgg16", num_classes=10, width_mult=0.125, seed=0)
    train_cnn(model, x_train, y_train, epochs=8, batch_size=32, lr=2e-3,
              seed=0, verbose=True)
    cnn_accuracy = model.accuracy(x_test, y_test)

    print(f"3) Building NSHD (cut layer {CUT_LAYER}, D={HD_DIM}, "
          f"F^={REDUCED_FEATURES}) and distilling ...")
    nshd = NSHD(model, layer_index=CUT_LAYER, dim=HD_DIM,
                reduced_features=REDUCED_FEATURES, temperature=14.0,
                alpha=0.5, seed=0)
    history = nshd.fit(x_train, y_train, epochs=12)
    nshd_accuracy = nshd.accuracy(x_test, y_test)

    print("\n=== Results ===")
    print(f"CNN  test accuracy : {cnn_accuracy:.3f}")
    print(f"NSHD test accuracy : {nshd_accuracy:.3f} "
          f"(train: {history['train_acc'][-1]:.3f})")
    cnn_mb = cnn_size_bytes(model).total_mb
    nshd_mb = nshd_size_bytes(model, CUT_LAYER, HD_DIM, REDUCED_FEATURES,
                              10).total_mb
    print(f"CNN  model size    : {cnn_mb:.2f} MB")
    print(f"NSHD model size    : {nshd_mb:.2f} MB "
          f"({(1 - nshd_mb / cnn_mb) * 100:.0f}% smaller)")

    # Symbolic inference: the query hypervector's similarity to each
    # class hypervector is the model's entire "reasoning".
    query = nshd.encode(x_test[:1])
    sims = nshd.trainer.similarities(query)[0]
    ranked = np.argsort(sims)[::-1]
    print(f"\nSample 0: true class {y_test[0]}, "
          f"top-3 by similarity: {ranked[:3].tolist()}")


if __name__ == "__main__":
    main()
