"""Plugging a custom CNN into NSHD.

The paper notes NSHD "can take virtually any deep learning model as its
feature extractor" (Sec. IV-A).  The contract is the
:class:`repro.models.IndexedCNN` base class: populate ``features`` (an
indexed trunk), ``head`` and ``classifier``, and the whole NSHD stack —
truncation, manifold learner, distillation, cost models — works
unchanged.

This example defines a small custom CNN, pretrains it, and runs the full
NSHD pipeline plus the hardware cost models against it.
"""

import numpy as np

from repro import nn
from repro.data import make_dataset, normalize_images
from repro.hardware import nshd_macs, nshd_size_bytes, trunk_macs
from repro.learn import NSHD
from repro.models import IndexedCNN, train_cnn
from repro.models.blocks import ConvBNAct


class TinyNet(IndexedCNN):
    """A 7-layer custom CNN with NSHD-compatible layer indexing."""

    name = "tinynet"
    paper_layers = (3, 5)  # the cut points we want to evaluate

    def __init__(self, num_classes: int = 10, image_size: int = 32,
                 rng=None):
        super().__init__(num_classes, image_size)
        rng = rng or np.random.default_rng()
        self.features = nn.Sequential(
            ConvBNAct(3, 16, kernel=3, stride=1, activation="relu",
                      rng=rng),                     # 0
            nn.MaxPool2d(2),                        # 1
            ConvBNAct(16, 32, kernel=3, activation="relu", rng=rng),  # 2
            nn.MaxPool2d(2),                        # 3
            ConvBNAct(32, 64, kernel=3, activation="relu", rng=rng),  # 4
            nn.MaxPool2d(2),                        # 5
            ConvBNAct(64, 96, kernel=3, activation="relu", rng=rng),  # 6
        )
        self.head = nn.Sequential(nn.AdaptiveAvgPool2d(1), nn.Flatten())
        self.classifier = nn.Sequential(nn.Linear(96, num_classes, rng=rng))


def main():
    x_train, y_train, x_test, y_test = make_dataset(
        num_classes=8, num_train=400, num_test=160, seed=9)
    x_train, mean, std = normalize_images(x_train)
    x_test, _, _ = normalize_images(x_test, mean, std)

    model = TinyNet(num_classes=8, rng=np.random.default_rng(3))
    print("Pretraining the custom CNN ...")
    train_cnn(model, x_train, y_train, epochs=8, batch_size=32, lr=2e-3,
              seed=3)
    print(f"TinyNet accuracy: {model.accuracy(x_test, y_test):.3f}")

    for layer in TinyNet.paper_layers:
        nshd = NSHD(model, layer_index=layer, dim=1500,
                    reduced_features=16, seed=0)
        nshd.fit(x_train, y_train, epochs=10)
        stages = nshd_macs(model, layer, 1500, 16, 8)
        size_mb = nshd_size_bytes(model, layer, 1500, 16, 8).total_mb
        print(f"NSHD@layer{layer}: acc={nshd.accuracy(x_test, y_test):.3f} "
              f"macs={stages['total'] / 1e6:.2f}M "
              f"(trunk {trunk_macs(model, layer) / 1e6:.2f}M) "
              f"size={size_mb:.2f}MB")


if __name__ == "__main__":
    main()
