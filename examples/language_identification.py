"""Language identification with HD n-gram encoding (cited task [13]).

The paper grounds HD computing's track record in language recognition
(Imani et al., "Low-power sparse hyperdimensional encoder for language
recognition").  This example reproduces that task in miniature with the
library's sequence encoder: per-language class hypervectors are bundles
of n-gram-encoded training sentences, and identification is nearest
class hypervector — the same centroid+similarity machinery NSHD uses
for images.

Languages are synthetic letter distributions (no corpora available
offline), which preserves the task structure: distinct character-level
n-gram statistics per class.
"""

import numpy as np

from repro.hd import dot_similarity
from repro.hd.sequences import SequenceEncoder
from repro.learn import MassTrainer

LANGUAGES = {
    # letter pool, doubled-letter habit — crude phonotactic signatures
    "vowelish": "aeiouaeioulnr",
    "nordic": "aeioukjhswtv",
    "techno": "qxzkwvbdgpt",
    "rollic": "rrllmmnnaeio",
}
SENTENCE_LENGTH = 50
TRAIN_SENTENCES = 30
TEST_SENTENCES = 15


def sample_sentence(pool: str, rng: np.random.Generator) -> str:
    letters = rng.choice(list(pool), size=SENTENCE_LENGTH)
    return "".join(letters)


def main():
    rng = np.random.default_rng(0)
    encoder = SequenceEncoder(dim=4096, ngram=3,
                              rng=np.random.default_rng(1))
    names = list(LANGUAGES)

    print("Encoding training sentences ...")
    train_hvs, train_labels = [], []
    for label, name in enumerate(names):
        for _ in range(TRAIN_SENTENCES):
            train_hvs.append(encoder.encode(
                sample_sentence(LANGUAGES[name], rng)))
            train_labels.append(label)
    train_hvs = np.stack(train_hvs)
    train_labels = np.array(train_labels)

    trainer = MassTrainer(len(names), encoder.dim, lr=0.05)
    trainer.fit(train_hvs, train_labels, epochs=10,
                rng=np.random.default_rng(2))

    print("Evaluating ...")
    correct = 0
    total = 0
    for label, name in enumerate(names):
        for _ in range(TEST_SENTENCES):
            hv = encoder.encode(sample_sentence(LANGUAGES[name], rng))
            prediction = int(trainer.predict(hv[None, :])[0])
            correct += prediction == label
            total += 1
    print(f"Language identification accuracy: {correct / total:.3f} "
          f"({len(names)} languages, {total} test sentences)")

    sample = sample_sentence(LANGUAGES["nordic"], rng)
    sims = trainer.similarities(encoder.encode(sample)[None, :])[0]
    readout = ", ".join(f"{name}: {sim:+.3f}"
                        for name, sim in zip(names, sims))
    print(f"\nSample readout ('{sample[:24]}…'): {readout}")


if __name__ == "__main__":
    main()
