"""Explainable symbolic inference with NSHD (the Sec. VII-E story).

NSHD's decision process is fully transparent: a prediction is just
"which class hypervector is the query most similar to", and the class
hypervectors live in the same algebraic space as the samples.  This
example:

 1. trains a small NSHD model;
 2. prints, for a few test images, the complete similarity readout the
    model reasons with (there is nothing else hidden inside);
 3. quantifies how retraining reorganizes hyperspace — cluster
    separation of the sample hypervectors before vs after retraining
    (the effect Fig. 11 visualizes with t-SNE);
 4. demonstrates symbolic *algebra* on learned classes: removing a
    class's contribution from a mixed bundle recovers the other class.
"""

import numpy as np

from repro.analysis import class_alignment, cluster_separation, tsne
from repro.data import make_dataset, normalize_images
from repro.learn import NSHD
from repro.models import create_model, train_cnn


def main():
    x_train, y_train, x_test, y_test = make_dataset(
        num_classes=6, num_train=360, num_test=150, seed=5)
    x_train, mean, std = normalize_images(x_train)
    x_test, _, _ = normalize_images(x_test, mean, std)

    model = create_model("vgg16", num_classes=6, width_mult=0.125, seed=1)
    train_cnn(model, x_train, y_train, epochs=6, batch_size=32, lr=2e-3,
              seed=1, verbose=False)

    nshd = NSHD(model, layer_index=27, dim=2000, reduced_features=24,
                seed=0)
    # Snapshot after one iteration (Fig. 11a), then train to the end.
    nshd.fit(x_train, y_train, epochs=1)
    early_hvs = nshd.encode(x_test)
    early_sep = cluster_separation(early_hvs, y_test)
    nshd.fit_features(nshd.extractor.extract(x_train), y_train,
                      nshd.teacher.logits(x_train), epochs=11,
                      initialize=False)
    final_hvs = nshd.encode(x_test)
    final_sep = cluster_separation(final_hvs, y_test)

    print("=== Symbolic inference readout ===")
    sims = nshd.trainer.similarities(final_hvs[:3])
    for i in range(3):
        readout = ", ".join(f"class {c}: {s:+.3f}"
                            for c, s in enumerate(sims[i]))
        print(f"image {i} (true {y_test[i]}): {readout}")
        print(f"  -> predicted {int(np.argmax(sims[i]))} — the argmax of "
              f"the similarities above is the entire decision")

    print("\n=== Hyperspace reorganization (Fig. 11) ===")
    print(f"cluster separation after 1 iteration : {early_sep:.3f}")
    print(f"cluster separation after retraining  : {final_sep:.3f}")
    margin = class_alignment(final_hvs, y_test, nshd.trainer.class_matrix)
    print(f"own-vs-other class similarity margin : {margin:+.3f}")

    print("\n=== Symbolic algebra on learned classes ===")
    # Bundle a class-0 and a class-1 hypervector: the composite stays
    # similar to both constituents (bundling preserves similarity) ...
    idx0 = int(np.where(y_test == 0)[0][0])
    idx1 = int(np.where(y_test == 1)[0][0])
    bundle = final_hvs[idx0] + final_hvs[idx1]
    sims_b = nshd.trainer.similarities(bundle[None, :])[0]
    top2 = set(np.argsort(sims_b)[::-1][:2].tolist())
    print(f"bundle(sample0, sample1) top-2 classes: {sorted(top2)}")
    # ... and subtracting one constituent recovers the other.
    residual = bundle - final_hvs[idx0]
    sims_r = nshd.trainer.similarities(residual[None, :])[0]
    print(f"bundle - sample0 -> most similar class: "
          f"{int(np.argmax(sims_r))} (expected 1)")

    print("\nRunning t-SNE on the final hypervectors (2-D projection of "
          "the symbolic space) ...")
    embedding = tsne(final_hvs[:120], num_iters=200, perplexity=15.0,
                     rng=np.random.default_rng(0))
    print(f"t-SNE embedding computed: {embedding.shape[0]} points, "
          f"separation {cluster_separation(embedding, y_test[:120]):.2f}")


if __name__ == "__main__":
    main()
