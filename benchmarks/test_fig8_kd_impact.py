"""Fig. 8 — Impact of knowledge distillation on learning accuracy.

Paper: (a) per-layer on EfficientNet-B0, distillation fills the accuracy
gap left by earlier/weaker cut layers; (b) the same KD-on ≥ KD-off trend
holds across all four models.

Shape checks: mean KD improvement is non-negative over the per-layer
sweep and over the all-models sweep, and KD never loses badly anywhere.
"""

import numpy as np
import pytest

from helpers import emit

from repro.experiments import (HD_DIM, MODEL_NAMES, REDUCED_FEATURES,
                               cached_features, get_teacher)
from repro.learn import NSHD
from repro.models import paper_cut_layers
from repro.utils import format_table

HD_EPOCHS = 15


def kd_pair(model_name, layer, dataset_key="s10"):
    """(accuracy with KD, accuracy without KD) for one model/layer."""
    data = cached_features(model_name, dataset_key, (layer,))
    y_tr, y_te = data["labels"]
    model = get_teacher(model_name, dataset_key)
    accs = {}
    for use_kd in (True, False):
        nshd = NSHD(model, layer, dim=HD_DIM,
                    reduced_features=REDUCED_FEATURES,
                    use_distillation=use_kd, seed=0)
        nshd.fit_features(data["train"][layer], y_tr,
                          data["train_logits"] if use_kd else None,
                          epochs=HD_EPOCHS)
        accs[use_kd] = nshd.accuracy_features(data["test"][layer], y_te)
    return accs[True], accs[False]


@pytest.fixture(scope="module")
def kd_results():
    results = {}
    # (a) EfficientNet-B0, every evaluated layer.
    for layer in paper_cut_layers("efficientnet_b0"):
        results[("efficientnet_b0", layer)] = kd_pair("efficientnet_b0",
                                                      layer)
    # (b) every other model at its earliest evaluated layer.
    for name in MODEL_NAMES:
        if name == "efficientnet_b0":
            continue
        layer = paper_cut_layers(name)[0]
        results[(name, layer)] = kd_pair(name, layer)
    return results


def test_fig8_kd_impact(benchmark, kd_results):
    benchmark(kd_pair, "efficientnet_b0",
              paper_cut_layers("efficientnet_b0")[0])

    rows = []
    boosts = []
    for (name, layer), (with_kd, without_kd) in kd_results.items():
        boost = with_kd - without_kd
        boosts.append(boost)
        rows.append([name, layer, f"{without_kd:.3f}", f"{with_kd:.3f}",
                     f"{boost * 100:+.1f}pp"])
    rows.append(["mean", "-", "-", "-",
                 f"{np.mean(boosts) * 100:+.1f}pp"])
    emit("fig8_kd_impact", format_table(
        ["Model", "Layer", "No KD (MASS)", "With KD (Alg. 1)", "Boost"],
        rows, title="Fig. 8: impact of knowledge distillation"))

    # The paper's teachers (90%+ ImageNet-grade CNNs) make KD a pure win;
    # our CPU-scale teachers hover near the HD student's own accuracy, so
    # the asserted shape is "KD is benign" — no meaningful average loss
    # and no catastrophic single-configuration loss.  The positive-boost
    # mechanism itself is verified under a strong synthetic teacher in
    # tests/test_learn_trainers.py::test_kd_helps_with_noisy_labels.
    assert float(np.mean(boosts)) >= -0.03
    assert min(boosts) > -0.10
