"""Fig. 6 — Throughput (FPS) of the FPGA implementation.

Paper: on the ZCU104 DPU, NSHD (earliest evaluated cut layer per model)
improves inference throughput over the full CNN by 38.14% on average,
across hypervector dimensions.

Shape checks: NSHD FPS > CNN FPS for every model at every D, FPS falls
as D grows, and the average improvement is tens of percent.
"""

import numpy as np
import pytest

from helpers import emit, fresh_model

from repro.experiments import MODEL_NAMES, REDUCED_FEATURES
from repro.hardware import DPUModel
from repro.models import paper_cut_layers
from repro.utils import format_table

DIMS = (1000, 3000, 10000)
NUM_CLASSES = 10


@pytest.fixture(scope="module")
def fps_table():
    dpu = DPUModel()
    table = {}
    for name in MODEL_NAMES:
        model = fresh_model(name, NUM_CLASSES)
        layer = paper_cut_layers(name)[0]
        cnn_fps = dpu.cnn_fps(model)
        nshd_fps = {dim: dpu.nshd_fps(model, layer, dim, REDUCED_FEATURES,
                                      NUM_CLASSES) for dim in DIMS}
        table[name] = (layer, cnn_fps, nshd_fps)
    return table


def test_fig6_fpga_throughput(benchmark, fps_table):
    dpu = DPUModel()
    model = fresh_model("vgg16", NUM_CLASSES)
    benchmark(dpu.nshd_cycles, model, 27, 3000, REDUCED_FEATURES,
              NUM_CLASSES)

    rows = []
    improvements = []
    for name, (layer, cnn_fps, nshd_fps) in fps_table.items():
        for dim in DIMS:
            improvement = nshd_fps[dim] / cnn_fps - 1.0
            improvements.append(improvement)
            rows.append([name, layer, f"{dim // 1000}K",
                         f"{cnn_fps:.0f}", f"{nshd_fps[dim]:.0f}",
                         f"{improvement * 100:+.1f}%"])
    mean_improvement = float(np.mean(improvements))
    rows.append(["average", "-", "-", "-", "-",
                 f"{mean_improvement * 100:+.1f}%"])
    emit("fig6_fpga_fps", format_table(
        ["Model", "Cut layer", "D", "CNN FPS", "NSHD FPS", "Improvement"],
        rows, title="Fig. 6: DPU inference throughput (paper avg +38.14%)"))

    for name, (layer, cnn_fps, nshd_fps) in fps_table.items():
        # NSHD outperforms the CNN at every dimension setting.
        for dim in DIMS:
            assert nshd_fps[dim] > cnn_fps, (name, dim)
        # Higher D costs throughput.
        assert nshd_fps[1000] > nshd_fps[3000] > nshd_fps[10000]

    # Average improvement is tens of percent (paper: 38.14%).
    assert mean_improvement > 0.10
