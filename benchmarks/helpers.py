"""Shared utilities for the benchmark harness.

Each benchmark regenerates one table or figure of the paper as printed
rows and writes them under ``results/`` so EXPERIMENTS.md can reference
the measured numbers.
"""

from __future__ import annotations

import os

__all__ = ["results_dir", "emit", "fresh_model"]


def results_dir() -> str:
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "results")
    os.makedirs(path, exist_ok=True)
    return path


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under results/<name>.txt."""
    print()
    print(text)
    with open(os.path.join(results_dir(), f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def fresh_model(name: str, num_classes: int = 10):
    """Untrained model with the benchmark suite's width settings.

    The analytic benches (energy / MACs / FPS / size) depend only on the
    architecture, so they do not require the pretrained teacher weights.
    """
    from repro.experiments import MODEL_WIDTHS
    from repro.models import create_model
    return create_model(name, num_classes=num_classes,
                        width_mult=MODEL_WIDTHS[name], seed=0)
