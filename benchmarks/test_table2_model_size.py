"""Table II — Model size (learning parameters) comparison.

Paper: NSHD is much smaller than the CNN at early cut layers (VGG16:
537.2MB -> 69.61MB at layer 27) and consistently smaller than BaselineHD
(e.g. 39.91% smaller for VGG16@29), because the manifold layer shrinks
the F×D projection item memory to F̂×D.

Shape checks: NSHD < BaselineHD on every row; NSHD < CNN at each model's
earliest cut layer; size grows with cut depth.
"""

import pytest

from helpers import emit, fresh_model

from repro.experiments import HD_DIM, MODEL_NAMES, REDUCED_FEATURES
from repro.hardware import (baselinehd_size_bytes, cnn_size_bytes,
                            nshd_size_bytes)
from repro.models import paper_cut_layers
from repro.utils import format_table

NUM_CLASSES = 10


@pytest.fixture(scope="module")
def size_table():
    table = {}
    for name in MODEL_NAMES:
        model = fresh_model(name, NUM_CLASSES)
        cnn = cnn_size_bytes(model).total_mb
        for layer in paper_cut_layers(name):
            nshd = nshd_size_bytes(model, layer, HD_DIM, REDUCED_FEATURES,
                                   NUM_CLASSES).total_mb
            base = baselinehd_size_bytes(model, layer, HD_DIM,
                                         NUM_CLASSES).total_mb
            table[(name, layer)] = (cnn, nshd, base)
    return table


def test_table2_model_size(benchmark, size_table):
    model = fresh_model("vgg16", NUM_CLASSES)
    benchmark(nshd_size_bytes, model, 27, HD_DIM, REDUCED_FEATURES,
              NUM_CLASSES)

    rows = [[name, layer, f"{cnn:.2f}MB", f"{nshd:.2f}MB", f"{base:.2f}MB"]
            for (name, layer), (cnn, nshd, base) in size_table.items()]
    emit("table2_model_size", format_table(
        ["Model", "Layer", "CNN", "NSHD", "BaselineHD"], rows,
        title="Table II: model size (learning parameters)"))

    for (name, layer), (cnn, nshd, base) in size_table.items():
        # The manifold layer always beats the full-F projection memory.
        assert nshd < base, (name, layer)

    for name in MODEL_NAMES:
        earliest = paper_cut_layers(name)[0]
        cnn, nshd, _ = size_table[(name, earliest)]
        assert nshd < cnn, name

    # Size grows monotonically with cut depth per model.
    for name in MODEL_NAMES:
        sizes = [size_table[(name, layer)][1]
                 for layer in paper_cut_layers(name)]
        assert sizes == sorted(sizes), name

    # VGG16's reduction is the headline row: at layer 27 NSHD is several
    # times smaller than the CNN (paper: 537MB -> 70MB, a 7.7x cut driven
    # by the dropped FC stack).
    cnn, nshd, _ = size_table[("vgg16", 27)]
    assert cnn / nshd > 2.0
