"""Fig. 10 / Sec. VII-D — Dimensionality vs efficiency/accuracy tradeoff.

Paper: D = 3,000 is enough to match the quality reached at the
traditional D = 10,000 (accuracy saturates), while D = 1,000 loses some
accuracy (≈1.64pp on average); shrinking D from 10,000 to 3,000 cuts the
HD-section parameters by 70% and raises FPGA throughput.

Shape checks: accuracy at 3,000 within a small margin of 10,000; the
1,000-dim model is the least accurate (or ties within noise); FPS rises
monotonically as D falls; HD parameter reduction is exactly 70%.
"""

import pytest

from helpers import emit

from repro.experiments import REDUCED_FEATURES, cached_features, get_teacher
from repro.hardware import DPUModel, nshd_size_bytes
from repro.learn import NSHD
from repro.utils import format_table

MODEL = "efficientnet_b0"
LAYER = 7
DIMS = (1000, 3000, 10000)
HD_EPOCHS = 15


@pytest.fixture(scope="module")
def tradeoff():
    data = cached_features(MODEL, "s10", (LAYER,))
    y_tr, y_te = data["labels"]
    model = get_teacher(MODEL, "s10")
    dpu = DPUModel()
    results = {}
    for dim in DIMS:
        nshd = NSHD(model, LAYER, dim=dim,
                    reduced_features=REDUCED_FEATURES, seed=0)
        nshd.fit_features(data["train"][LAYER], y_tr,
                          data["train_logits"], epochs=HD_EPOCHS)
        acc = nshd.accuracy_features(data["test"][LAYER], y_te)
        fps = dpu.nshd_fps(model, LAYER, dim, REDUCED_FEATURES,
                           model.num_classes)
        size = nshd_size_bytes(model, LAYER, dim, REDUCED_FEATURES,
                               model.num_classes)
        results[dim] = (acc, fps, size.projection + size.class_hvs)
    return results


def test_fig10_dimension_tradeoff(benchmark, tradeoff):
    dpu = DPUModel()
    model = get_teacher(MODEL, "s10")
    benchmark(dpu.nshd_cycles, model, LAYER, 3000, REDUCED_FEATURES, 10)

    rows = [[f"{dim:,}", f"{acc:.3f}", f"{fps:.0f}",
             f"{hd_bytes / 1024:.1f}KB"]
            for dim, (acc, fps, hd_bytes) in tradeoff.items()]
    emit("fig10_dimension_tradeoff", format_table(
        ["D", "NSHD accuracy", "DPU FPS", "HD-section params"],
        rows, title=f"Fig. 10: dimensionality tradeoff ({MODEL} layer "
                    f"{LAYER})"))

    acc = {dim: tradeoff[dim][0] for dim in DIMS}
    fps = {dim: tradeoff[dim][1] for dim in DIMS}
    hd_bytes = {dim: tradeoff[dim][2] for dim in DIMS}

    # Accuracy saturates by D=3,000 (within noise of D=10,000).
    assert acc[3000] >= acc[10000] - 0.04
    # D=1,000 does not beat the saturated regime by more than noise.
    assert acc[1000] <= max(acc[3000], acc[10000]) + 0.02
    # Throughput strictly improves as D shrinks.
    assert fps[1000] > fps[3000] > fps[10000]
    # HD-section parameter reduction from 10k to 3k is 70% (Sec. VII-D).
    assert 1.0 - hd_bytes[3000] / hd_bytes[10000] == \
        pytest.approx(0.70, abs=0.01)
