"""Pytest configuration for the benchmark harness.

Ensures the benchmarks directory itself is importable (for ``helpers``)
and keeps pytest-benchmark output compact.

Ledger integration (PR 3): every benchmark run is stamped with the
machine/environment fingerprint (python, numpy, BLAS backend, CPU count)
and the repro seed so recorded timings are comparable across commits —
the fingerprint lands in each benchmark's ``extra_info`` and in
pytest-benchmark's ``machine_info`` — and, on session finish, each
benchmark's stats are appended to the run ledger under
``results/ledger/benchmarks.jsonl`` (disable with ``REPRO_NO_LEDGER=1``).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest  # noqa: E402

#: Seed pinning the repro's experiment configuration (override with the
#: REPRO_SEED environment variable to record a different stream).
REPRO_SEED = int(os.environ.get("REPRO_SEED", "0"))


def _fingerprint():
    from repro.telemetry.ledger import env_fingerprint
    info = dict(env_fingerprint())
    info["seed"] = REPRO_SEED
    return info


def pytest_benchmark_update_machine_info(config, machine_info):
    """Stamp pytest-benchmark's machine record with the env fingerprint."""
    try:
        machine_info["repro"] = _fingerprint()
    except Exception:  # fingerprinting must never fail the bench run
        pass


@pytest.fixture(autouse=True)
def _benchmark_extra_info(request):
    """Attach the env fingerprint + seed to every benchmark's extra_info."""
    if "benchmark" in request.fixturenames:
        try:
            benchmark = request.getfixturevalue("benchmark")
            benchmark.extra_info.update(_fingerprint())
        except Exception:
            pass
    yield


def pytest_sessionfinish(session, exitstatus):
    """Append each recorded benchmark to the run ledger (best effort)."""
    if os.environ.get("REPRO_NO_LEDGER"):
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return
    try:
        from repro.telemetry.ledger import RunLedger, RunRecord
        ledger = RunLedger(directory=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "results", "ledger"), filename="benchmarks.jsonl")
        for bench in benchmarks:
            stats = getattr(bench, "stats", None)
            if stats is None:
                continue
            summary = {key: float(getattr(stats, key))
                       for key in ("min", "max", "mean", "median", "stddev")
                       if getattr(stats, key, None) is not None}
            record = RunRecord(
                pipeline=bench.name, kind="benchmark",
                config={"fullname": bench.fullname,
                        "group": bench.group,
                        "params": getattr(bench, "params", None)},
                seed=REPRO_SEED,
                wall_s=summary.get("median"),
                stage_times=({"benchmark": summary["median"]}
                             if "median" in summary else {}),
                metrics={"stats": {"type": "gauge", **summary}},
                extra={"extra_info": dict(getattr(bench, "extra_info", {}))})
            ledger.append(record)
    except Exception:
        # The ledger is observability, not a gate on the benchmarks run.
        pass
