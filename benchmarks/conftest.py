"""Pytest configuration for the benchmark harness.

Ensures the benchmarks directory itself is importable (for ``helpers``)
and keeps pytest-benchmark output compact.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
