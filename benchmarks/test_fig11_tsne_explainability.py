"""Fig. 11 — Explainability of HD computing via t-SNE.

Paper: t-SNE of sample hypervectors (EfficientNet-B0 layer 7, CIFAR-10)
is vague at the first training iteration but forms tight per-class
clusters at the final iteration — retraining pulls class hypervectors
toward their samples, making the symbolic space human-interpretable.

Shape checks: cluster-separation and silhouette metrics of the t-SNE
embedding improve from iteration 1 to the final iteration, as does the
sample-to-class-hypervector alignment margin in hyperspace.
"""

import numpy as np
import pytest

from helpers import emit

from repro.analysis import (class_alignment, cluster_separation,
                            silhouette_score, tsne)
from repro.experiments import (HD_DIM, REDUCED_FEATURES, cached_features,
                               get_teacher)
from repro.learn import NSHD
from repro.utils import format_table

MODEL = "efficientnet_b0"
LAYER = 7
SUBSET = 200


def snapshot(nshd, feats, labels):
    """Hypervectors + interpretability metrics at the current iteration."""
    hvs = nshd.encode_features(nshd.scaler.transform(feats))
    embedding = tsne(hvs[:SUBSET], num_iters=250, perplexity=20.0,
                     rng=np.random.default_rng(0))
    return {
        "separation": cluster_separation(embedding, labels[:SUBSET]),
        "silhouette": silhouette_score(embedding, labels[:SUBSET]),
        "alignment": class_alignment(hvs, labels,
                                     nshd.trainer.class_matrix),
    }


@pytest.fixture(scope="module")
def iterations():
    data = cached_features(MODEL, "s10", (LAYER,))
    y_tr, y_te = data["labels"]
    model = get_teacher(MODEL, "s10")
    nshd = NSHD(model, LAYER, dim=HD_DIM,
                reduced_features=REDUCED_FEATURES, seed=0)
    # First training iteration.  As in the paper, the embedded points are
    # the *training* sample hypervectors ("the training samples form
    # several close clusters", Sec. VII-E).
    nshd.fit_features(data["train"][LAYER], y_tr, data["train_logits"],
                      epochs=1)
    first = snapshot(nshd, data["train"][LAYER], y_tr)
    # Continue to the final iteration (manifold and M keep adapting).
    nshd.fit_features(data["train"][LAYER], y_tr, data["train_logits"],
                      epochs=14, initialize=False)
    final = snapshot(nshd, data["train"][LAYER], y_tr)
    return first, final


def test_fig11_tsne_explainability(benchmark, iterations):
    first, final = iterations
    rng = np.random.default_rng(0)
    benchmark(tsne, rng.normal(size=(60, 32)), 50, 15.0)

    rows = [[metric, f"{first[metric]:.3f}", f"{final[metric]:.3f}"]
            for metric in ("separation", "silhouette", "alignment")]
    emit("fig11_tsne_explainability", format_table(
        ["Metric", "First iteration", "Final iteration"], rows,
        title=f"Fig. 11: t-SNE cluster quality of sample hypervectors "
              f"({MODEL} layer {LAYER})"))

    # Training tightens the clusters (the paper's before/after contrast):
    # every metric improves from the first to the final iteration.
    assert final["separation"] > first["separation"]
    assert final["silhouette"] > first["silhouette"]
    assert final["alignment"] > first["alignment"]
    # After retraining, samples sit closer to their own class hypervector
    # than to any other (positive margin) and the embedding separates
    # classes well beyond the no-structure value of 1.0.
    assert final["alignment"] > 0.0
    assert final["separation"] > 1.2
