"""Ablations of NSHD's design choices (beyond the paper's figures).

Three studies called out in DESIGN.md §4:

1. **Manifold training signal** — PCA-initialized FC *with* HD
   error-decoding updates (the paper's Sec. V-C) vs frozen-PCA vs no
   manifold at all (BaselineHD-style full-F projection).
2. **Encoder family** — binary random projection (the paper's Φ_P) vs
   ID-level record encoding vs nonlinear encoding, all on the same
   manifold features.
3. **Binary backend** — the bit-packed XOR+popcount similarity kernel
   must agree exactly with the dense dot product while using 1/32 the
   storage.
"""

import numpy as np
import pytest

from helpers import emit

from repro.experiments import (HD_DIM, REDUCED_FEATURES, cached_features,
                               get_teacher)
from repro.hd import (IDLevelEncoder, NonlinearEncoder, pack_bipolar,
                      packed_dot)
from repro.learn import NSHD, MassTrainer
from repro.utils import format_table

MODEL = "efficientnet_b0"
LAYER = 5  # the feature-heavy early cut, where compression matters most
HD_EPOCHS = 12


@pytest.fixture(scope="module")
def setup():
    data = cached_features(MODEL, "s10", (LAYER,))
    y_tr, y_te = data["labels"]
    model = get_teacher(MODEL, "s10")
    return model, data, y_tr, y_te


@pytest.fixture(scope="module")
def manifold_ablation(setup):
    model, data, y_tr, y_te = setup
    results = {}

    trained = NSHD(model, LAYER, dim=HD_DIM,
                   reduced_features=REDUCED_FEATURES, seed=0)
    trained.fit_features(data["train"][LAYER], y_tr, data["train_logits"],
                         epochs=HD_EPOCHS)
    results["manifold + HD-error training"] = trained.accuracy_features(
        data["test"][LAYER], y_te)

    frozen = NSHD(model, LAYER, dim=HD_DIM,
                  reduced_features=REDUCED_FEATURES, manifold_lr=0.0,
                  seed=0)
    frozen.fit_features(data["train"][LAYER], y_tr, data["train_logits"],
                        epochs=HD_EPOCHS)
    results["manifold frozen at PCA init"] = frozen.accuracy_features(
        data["test"][LAYER], y_te)

    none = NSHD(model, LAYER, dim=HD_DIM, use_manifold=False, seed=0)
    none.fit_features(data["train"][LAYER], y_tr, data["train_logits"],
                      epochs=HD_EPOCHS)
    results["no manifold (full-F projection)"] = none.accuracy_features(
        data["test"][LAYER], y_te)
    return results


@pytest.fixture(scope="module")
def encoder_ablation(setup):
    model, data, y_tr, y_te = setup
    # Shared manifold front end: reuse a trained NSHD's scaler+manifold.
    nshd = NSHD(model, LAYER, dim=HD_DIM,
                reduced_features=REDUCED_FEATURES, seed=0)
    nshd.fit_features(data["train"][LAYER], y_tr, data["train_logits"],
                      epochs=5)
    reduced_tr = nshd.manifold.transform(
        nshd.scaler.transform(data["train"][LAYER]))
    reduced_te = nshd.manifold.transform(
        nshd.scaler.transform(data["test"][LAYER]))

    encoders = {
        "random projection (paper)": nshd.encoder,
        "nonlinear [6]": NonlinearEncoder(REDUCED_FEATURES, HD_DIM,
                                          np.random.default_rng(1),
                                          bandwidth=0.2),
        "ID-level": IDLevelEncoder(REDUCED_FEATURES, HD_DIM, levels=16,
                                   value_range=(-4.0, 4.0),
                                   rng=np.random.default_rng(2)),
    }
    results = {}
    for label, encoder in encoders.items():
        trainer = MassTrainer(model.num_classes, HD_DIM, lr=0.05)
        trainer.fit(encoder.encode(reduced_tr), y_tr, epochs=HD_EPOCHS,
                    rng=np.random.default_rng(0))
        results[label] = trainer.accuracy(encoder.encode(reduced_te), y_te)
    return results


def test_ablation_manifold_training(benchmark, manifold_ablation):
    rows = [[label, f"{acc:.3f}"]
            for label, acc in manifold_ablation.items()]
    emit("ablation_manifold", format_table(
        ["Configuration", "Test accuracy"], rows,
        title=f"Ablation: manifold training signal ({MODEL} layer "
              f"{LAYER})"))

    trained = manifold_ablation["manifold + HD-error training"]
    frozen = manifold_ablation["manifold frozen at PCA init"]
    full = manifold_ablation["no manifold (full-F projection)"]
    # The decoded-error updates must not lose to the frozen projection.
    assert trained >= frozen - 0.03
    # Compression does not collapse accuracy vs the full-F projection.
    assert trained >= full - 0.08

    data = cached_features(MODEL, "s10", (LAYER,))
    benchmark(lambda: np.linalg.norm(data["train"][LAYER][:64]))


def test_ablation_encoders(benchmark, encoder_ablation):
    rows = [[label, f"{acc:.3f}"] for label, acc in
            encoder_ablation.items()]
    emit("ablation_encoders", format_table(
        ["Encoder", "Test accuracy"], rows,
        title="Ablation: HD encoder family on manifold features"))
    # The paper's random projection is competitive with every alternative.
    best = max(encoder_ablation.values())
    assert encoder_ablation["random projection (paper)"] >= best - 0.06

    benchmark(lambda: None)


def test_ablation_binary_backend(benchmark):
    rng = np.random.default_rng(0)
    queries = np.sign(rng.normal(size=(256, HD_DIM)))
    queries[queries == 0] = 1
    classes = np.sign(rng.normal(size=(10, HD_DIM)))
    classes[classes == 0] = 1
    packed_q = pack_bipolar(queries)
    packed_c = pack_bipolar(classes)

    dense = queries @ classes.T
    packed = benchmark(packed_dot, packed_q, packed_c, HD_DIM)
    np.testing.assert_array_equal(packed, dense.astype(np.int64))
    # 1 bit per component vs 8 bytes (float64): 64x smaller in memory.
    assert queries.nbytes / packed_q.nbytes == pytest.approx(64, rel=0.02)

    emit("ablation_backend", format_table(
        ["Kernel", "Storage (bytes)", "Result"],
        [["dense float64 dot", f"{queries.nbytes:,}", "reference"],
         ["packed XOR+popcount", f"{packed_q.nbytes:,}",
          "exact match"]],
        title="Ablation: bit-packed binary backend vs dense kernels"))
