"""Table I — Design acceleration on Xilinx ZCU104.

Paper: the Vitis-AI DPU core occupies 84.9K/230.4K LUT (36.87%),
146.5K/460.8K FF (31.80%), 224/312 BRAM (71.79%), 40/96 URAM (41.67%),
844/1728 DSP (48.84%) at 200 MHz and 4.427 W.

This bench regenerates the ledger from the DPU configuration model and
checks every cell.
"""

import pytest

from helpers import emit

from repro.hardware import ZCU104_DPU
from repro.utils import format_table

PAPER_UTILIZATION = {
    "LUT": 36.87,
    "FF": 31.80,
    "BRAM": 71.79,
    "URAM": 41.67,
    "DSP": 48.84,
}


def test_table1_resource_utilization(benchmark):
    util = benchmark(ZCU104_DPU.utilization_table)

    rows = []
    for kind, usage in ZCU104_DPU.resources.items():
        measured_pct = util[kind] * 100.0
        rows.append([kind, f"{usage.used:g}", f"{usage.available:g}",
                     f"{measured_pct:.2f}%", f"{PAPER_UTILIZATION[kind]}%"])
    rows.append(["Frequency", "-", "-",
                 f"{ZCU104_DPU.frequency_hz / 1e6:.0f}MHz", "200MHz"])
    rows.append(["Power", "-", "-", f"{ZCU104_DPU.power_w}W", "4.427W"])
    emit("table1_fpga_resources", format_table(
        ["Resource", "Used", "Available", "Utilization", "Paper"], rows,
        title="Table I: DPU resource utilization on ZCU104"))

    for kind, paper_pct in PAPER_UTILIZATION.items():
        assert util[kind] * 100.0 == pytest.approx(paper_pct, abs=0.05)
    assert ZCU104_DPU.frequency_hz == 200e6
    assert ZCU104_DPU.power_w == pytest.approx(4.427)
