"""Fig. 7 — Accuracy comparison: VanillaHD / BaselineHD / NSHD / CNN.

Paper: VanillaHD (nonlinear encoding on raw pixels) is far below every
CNN-feature system (39.88% / 19.7% on CIFAR-10/100); NSHD beats
BaselineHD thanks to distillation, reaches the CNN's accuracy at
sufficient cut depth, and can outperform it at late layers.

Shape checks: VanillaHD ≪ CNN; NSHD ≫ VanillaHD; NSHD ≥ BaselineHD on
average; NSHD within a small margin of (or above) the CNN at its deepest
evaluated layer; the many-class dataset is harder for every system.
"""

import numpy as np
import pytest

from helpers import emit

from repro.experiments import (DATASETS, HD_DIM, MODEL_NAMES,
                               REDUCED_FEATURES, cached_features,
                               get_teacher, load_dataset)
from repro.learn import NSHD, BaselineHD, VanillaHD
from repro.models import paper_cut_layers
from repro.utils import format_table

HD_EPOCHS = 15

#: (dataset, models) evaluated; the many-class dataset restricts to the
#: strongest teacher to bound the one-time pretraining cost (see
#: scripts/pretrain_teachers.py).
EVALS = {"s10": MODEL_NAMES, "s25": ("vgg16",)}


def run_systems(dataset_key, model_name):
    """Accuracies of NSHD / BaselineHD / CNN per cut layer."""
    layers = paper_cut_layers(model_name)
    data = cached_features(model_name, dataset_key, layers)
    y_tr, y_te = data["labels"]
    model = get_teacher(model_name, dataset_key)
    cnn_acc = float((data["test_logits"].argmax(axis=1) == y_te).mean())

    results = {}
    for layer in layers:
        nshd = NSHD(model, layer, dim=HD_DIM,
                    reduced_features=REDUCED_FEATURES, seed=0)
        nshd.fit_features(data["train"][layer], y_tr,
                          data["train_logits"], epochs=HD_EPOCHS)
        baseline = BaselineHD(model, layer, dim=HD_DIM, seed=0)
        baseline.fit_features(data["train"][layer], y_tr, epochs=HD_EPOCHS)
        results[layer] = {
            "nshd": nshd.accuracy_features(data["test"][layer], y_te),
            "baseline": baseline.accuracy_features(data["test"][layer],
                                                   y_te),
        }
    return cnn_acc, results


@pytest.fixture(scope="module")
def accuracy_table():
    table = {}
    for dataset_key, models in EVALS.items():
        x_tr, y_tr, x_te, y_te = load_dataset(dataset_key)
        vanilla = VanillaHD(DATASETS[dataset_key].num_classes, dim=HD_DIM,
                            seed=0)
        vanilla.fit(x_tr, y_tr, epochs=HD_EPOCHS)
        table[(dataset_key, "vanilla")] = vanilla.accuracy(x_te, y_te)
        for name in models:
            table[(dataset_key, name)] = run_systems(dataset_key, name)
    return table


def test_fig7_accuracy_comparison(benchmark, accuracy_table):
    # Benchmark one HD retraining epoch (the per-iteration training cost).
    data = cached_features("vgg16", "s10", (27,))
    y_tr, _ = data["labels"]
    model = get_teacher("vgg16", "s10")
    nshd = NSHD(model, 27, dim=HD_DIM, reduced_features=REDUCED_FEATURES,
                seed=0)
    benchmark(nshd.fit_features, data["train"][27], y_tr,
              data["train_logits"], 1)

    rows = []
    for dataset_key, models in EVALS.items():
        vanilla_acc = accuracy_table[(dataset_key, "vanilla")]
        rows.append([dataset_key, "(raw pixels)", "-",
                     f"{vanilla_acc:.3f}", "-", "-", "-"])
        for name in models:
            cnn_acc, per_layer = accuracy_table[(dataset_key, name)]
            for layer, accs in per_layer.items():
                rows.append([dataset_key, name, layer, "-",
                             f"{accs['baseline']:.3f}",
                             f"{accs['nshd']:.3f}", f"{cnn_acc:.3f}"])
    emit("fig7_accuracy", format_table(
        ["Dataset", "Model", "Layer", "VanillaHD", "BaselineHD", "NSHD",
         "CNN"], rows, title="Fig. 7: accuracy comparison"))

    for dataset_key, models in EVALS.items():
        vanilla_acc = accuracy_table[(dataset_key, "vanilla")]
        cnn_accs, nshd_accs, margins = [], [], []
        for name in models:
            cnn_acc, per_layer = accuracy_table[(dataset_key, name)]
            cnn_accs.append(cnn_acc)
            deepest = max(per_layer)
            # NSHD reaches its own teacher's ballpark at the deepest cut
            # layer (the paper's "similar accuracy levels at least").
            assert per_layer[deepest]["nshd"] >= cnn_acc - 0.12, \
                (dataset_key, name)
            for layer, accs in per_layer.items():
                nshd_accs.append(accs["nshd"])
                margins.append(accs["nshd"] - accs["baseline"])
        # VanillaHD is far below the (best) CNN — the paper's headline
        # contrast.  Our weakest scaled teachers sit closer to VanillaHD
        # than the paper's ImageNet-grade CNNs do (see EXPERIMENTS.md).
        assert vanilla_acc < max(cnn_accs) - 0.10, dataset_key
        # NSHD beats raw-pixel HD decisively (in relative terms it is
        # at least ~2x VanillaHD on both datasets).
        assert max(nshd_accs) > vanilla_acc + 0.10, dataset_key
        assert max(nshd_accs) > 1.5 * vanilla_acc, dataset_key
        # ...and is at least as good as BaselineHD on average (Fig. 7's
        # "NSHD outperforms BaselineHD" aggregated over layers).
        assert float(np.mean(margins)) > -0.02, dataset_key

    # More classes is harder, as with CIFAR-10 vs CIFAR-100.
    assert accuracy_table[("s25", "vanilla")] < \
        accuracy_table[("s10", "vanilla")]
