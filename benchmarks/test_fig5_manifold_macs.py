"""Fig. 5 — Impact of the manifold learner on MAC counts.

Paper: the manifold learner cuts total inference MACs versus BaselineHD
(which encodes all F extracted features); e.g. EfficientNet-B0 needs
20.9% / 28.95% fewer computations at layers 6 / 7, and the saving grows
with hypervector dimension (up to 34% for MobileNetV2@17 at D=10,000).

Shape checks: NSHD ≤ BaselineHD MACs everywhere, savings strictly larger
at D=10,000 than at D=3,000, with double-digit percentage savings at the
feature-heavy cut layers.
"""

import pytest

from helpers import emit, fresh_model

from repro.experiments import MODEL_NAMES, REDUCED_FEATURES
from repro.hardware import baselinehd_macs, nshd_macs
from repro.models import paper_cut_layers
from repro.utils import format_table

DIMS = (3000, 10000)
NUM_CLASSES = 10


@pytest.fixture(scope="module")
def mac_table():
    table = {}
    for name in MODEL_NAMES:
        model = fresh_model(name, NUM_CLASSES)
        for layer in paper_cut_layers(name):
            for dim in DIMS:
                nshd = nshd_macs(model, layer, dim, REDUCED_FEATURES,
                                 NUM_CLASSES)["total"]
                base = baselinehd_macs(model, layer, dim,
                                       NUM_CLASSES)["total"]
                table[(name, layer, dim)] = (nshd, base)
    return table


def test_fig5_manifold_macs(benchmark, mac_table):
    model = fresh_model("efficientnet_b0", NUM_CLASSES)
    benchmark(nshd_macs, model, 7, 3000, REDUCED_FEATURES, NUM_CLASSES)

    rows = []
    for (name, layer, dim), (nshd, base) in mac_table.items():
        saving = 1.0 - nshd / base
        rows.append([name, layer, f"{dim // 1000}K", f"{nshd:,}",
                     f"{base:,}", f"{saving * 100:.1f}%"])
    emit("fig5_manifold_macs", format_table(
        ["Model", "Layer", "D", "NSHD MACs", "BaselineHD MACs",
         "Saving from manifold"],
        rows, title="Fig. 5: MACs with vs without the manifold learner"))

    for (name, layer, dim), (nshd, base) in mac_table.items():
        # The manifold learner never increases total MACs at these F.
        assert nshd <= base, (name, layer, dim)

    # Savings grow with hypervector dimension (encode cost scales with D).
    for name in MODEL_NAMES:
        for layer in paper_cut_layers(name):
            save_3k = 1 - mac_table[(name, layer, 3000)][0] / \
                mac_table[(name, layer, 3000)][1]
            save_10k = 1 - mac_table[(name, layer, 10000)][0] / \
                mac_table[(name, layer, 10000)][1]
            assert save_10k >= save_3k - 1e-12

    # Feature-heavy cut layers show double-digit savings (paper: ~20-34%).
    b0_7 = mac_table[("efficientnet_b0", 7, 10000)]
    assert 1 - b0_7[0] / b0_7[1] > 0.10
