"""Fig. 4 — Percentage improvements in energy efficiency (NSHD vs CNN).

Paper: NSHD saves energy at every evaluated cut layer; savings are larger
for earlier layers (e.g. VGG16 layer 27 uses 64% less energy than the
full CNN), consistently on CIFAR-10 and CIFAR-100.

Shape checks here: every (model, paper layer) cell shows a positive
improvement, the earlier of the two layers saves at least as much as the
later one, and the best VGG16 saving is of the paper's magnitude
(tens of percent).
"""

import pytest

from helpers import emit, fresh_model

from repro.experiments import HD_DIM, MODEL_NAMES, REDUCED_FEATURES
from repro.hardware import (cnn_inference_energy, energy_improvement,
                            nshd_inference_energy)
from repro.models import paper_cut_layers
from repro.utils import format_table

DATASET_CLASSES = {"s10 (CIFAR-10 stand-in)": 10,
                   "s25 (CIFAR-100 stand-in)": 25}


@pytest.fixture(scope="module")
def improvements():
    table = {}
    for dataset, num_classes in DATASET_CLASSES.items():
        for name in MODEL_NAMES:
            model = fresh_model(name, num_classes)
            cnn = cnn_inference_energy(model)["total"]
            for layer in paper_cut_layers(name)[:2]:
                nshd = nshd_inference_energy(
                    model, layer, HD_DIM, REDUCED_FEATURES,
                    num_classes)["total"]
                table[(dataset, name, layer)] = \
                    energy_improvement(cnn, nshd)
    return table


def test_fig4_energy_improvements(benchmark, improvements):
    model = fresh_model("vgg16", 10)
    benchmark(nshd_inference_energy, model, 27, HD_DIM, REDUCED_FEATURES, 10)

    rows = [[dataset, name, layer, f"{impr * 100:.1f}%"]
            for (dataset, name, layer), impr in improvements.items()]
    emit("fig4_energy", format_table(
        ["Dataset", "Model", "Cut layer", "Energy improvement vs CNN"],
        rows, title="Fig. 4: energy-efficiency improvement of NSHD"))

    # Every evaluated configuration saves energy.
    for impr in improvements.values():
        assert impr > 0.0

    # Earlier cut layer saves at least as much as the later one.
    for dataset in DATASET_CLASSES:
        for name in MODEL_NAMES:
            early, late = paper_cut_layers(name)[:2]
            assert improvements[(dataset, name, early)] >= \
                improvements[(dataset, name, late)] - 1e-9

    # VGG16's early-layer saving lands in the paper's magnitude band
    # (the paper reports 64%; the scaled substrate should be within
    # a few tens of percent of that, not near zero).
    vgg_early = improvements[("s10 (CIFAR-10 stand-in)", "vgg16", 27)]
    assert vgg_early > 0.3
