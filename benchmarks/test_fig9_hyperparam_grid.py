"""Fig. 9 — KD hyperparameter search (temperature × alpha).

Paper: grid over t ∈ [12,17] × α ∈ [0,0.9] for EfficientNet-B7 layer 7;
the α=0 row (no KD) sits at 67.86% while the best KD cell reaches 75.25%
— a 7.39pp boost — with the optimum in the mid-α band (0.5–0.7).

Shape checks: the α=0 row is temperature-invariant, the best cell beats
the no-KD row, and the optimum lies at α > 0.
"""

import numpy as np
import pytest

from helpers import emit

from repro.analysis import PAPER_ALPHAS, PAPER_TEMPERATURES, kd_grid_search
from repro.experiments import HD_DIM, REDUCED_FEATURES, cached_features, \
    get_teacher
from repro.learn import NSHD

MODEL = "efficientnet_b7"
LAYER = 7


@pytest.fixture(scope="module")
def grid():
    data = cached_features(MODEL, "s10", (LAYER,))
    y_tr, y_te = data["labels"]
    model = get_teacher(MODEL, "s10")
    # Fix the symbolization (manifold + encoder) once, as the paper's
    # search varies only the distillation hyperparameters.
    nshd = NSHD(model, LAYER, dim=HD_DIM, reduced_features=REDUCED_FEATURES,
                seed=0)
    nshd.fit_features(data["train"][LAYER], y_tr, data["train_logits"],
                      epochs=5)
    train_hvs = nshd.encode_features(
        nshd.scaler.transform(data["train"][LAYER]))
    test_hvs = nshd.encode_features(
        nshd.scaler.transform(data["test"][LAYER]))
    result = kd_grid_search(
        train_hvs, y_tr, data["train_logits"], test_hvs, y_te,
        num_classes=model.num_classes, dim=HD_DIM,
        temperatures=PAPER_TEMPERATURES, alphas=PAPER_ALPHAS, epochs=10,
        seed=0)
    return result


def test_fig9_hyperparameter_grid(benchmark, grid):
    data = cached_features(MODEL, "s10", (LAYER,))
    y_tr, y_te = data["labels"]
    benchmark(lambda: kd_grid_search(
        np.sign(np.random.default_rng(0).normal(size=(100, 256))),
        y_tr[:100], data["train_logits"][:100],
        np.sign(np.random.default_rng(1).normal(size=(50, 256))),
        y_te[:50], num_classes=10, dim=256,
        temperatures=(14.0,), alphas=(0.5,), epochs=2))

    header = ["alpha \\ T"] + [f"{t:g}" for t in grid.temperatures]
    rows = [[f"{alpha:g}"] + [f"{acc:.4f}" for acc in grid.accuracies[i]]
            for i, alpha in enumerate(grid.alphas)]
    best_alpha, best_temp, best_acc = grid.best()
    rows.append([f"best: a={best_alpha:g} T={best_temp:g}"] +
                [f"{best_acc:.4f}"] * len(grid.temperatures))
    from repro.utils import format_table
    emit("fig9_hyperparam_grid", format_table(
        header, rows,
        title=f"Fig. 9: KD hyperparameter search ({MODEL} layer {LAYER}); "
              f"KD boost = {grid.kd_boost() * 100:+.2f}pp "
              f"(paper: +7.39pp)"))

    # alpha=0 row is temperature-invariant (plain MASS).
    assert np.allclose(grid.accuracies[0], grid.accuracies[0, 0])
    # Distillation never falls behind plain MASS: the paper's optimum
    # band (alpha in 0.4-0.7) performs at least on par with the alpha=0
    # row.  (The paper's +7.39pp boost assumes an ImageNet-grade teacher;
    # our scaled teacher carries less dark knowledge, so the asserted
    # shape is "KD >= no-KD", with the measured boost reported above.)
    band = [i for i, alpha in enumerate(grid.alphas) if 0.4 <= alpha <= 0.7]
    band_mean = float(grid.accuracies[band].mean())
    assert band_mean >= grid.accuracies[0, 0] - 0.05
    assert grid.kd_boost() >= 0.0
    # The grid is genuinely sensitive to alpha (Fig. 9's premise) —
    # distillation visibly reshapes the accuracy surface.
    assert grid.accuracies.std(axis=0).max() > 1e-4
