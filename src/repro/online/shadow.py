"""Shadow copy of the live class-hypervector matrix + guarded updates.

The live :class:`~repro.serve.engine.InferenceEngine` stays frozen; all
feedback learning happens on a :class:`ShadowModel` — a float64 copy of
the engine's class matrix driven by the existing trainer rules
(:class:`~repro.learn.mass.MassTrainer` dense MASS update or the
:class:`~repro.learn.online.OnlineHDTrainer` sparse two-class rule).
Every mutation path is defended:

* a :class:`~repro.reliability.NumericsGuard` vets each encoded feedback
  hypervector before it can touch the matrix (and the trainer re-vets
  the computed update matrix);
* per-class update norms are clipped to ``max_update_norm`` inside the
  trainer (:func:`~repro.learn.mass.clip_update_norms`), bounding the
  influence of any single feedback sample;
* a token bucket caps the sustained update rate (``rate_limit_per_s``),
  so a feedback flood degrades to 429s instead of model churn;
* every ``holdout_every``-th accepted sample is *not* learned from —
  it lands in a bounded validation ring that the promotion gate later
  scores both the shadow and the live matrix on.  The holdout is taken
  before the update, so validation data is never trained on.

Class-incremental arrival: feedback whose label equals the current
``num_classes`` allocates a fresh class-hypervector row with **no
retrain** — the first sample seeds the row one-shot
(:meth:`~repro.learn.mass.MassTrainer.add_class`), later samples of the
same class are *bundled into that row only* (centroid accumulation),
never running the dense update, so pre-existing class rows stay
bit-exact until ordinary known-class feedback touches them.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

import numpy as np

from ..learn.mass import MassTrainer, normalized_similarity
from ..learn.online import OnlineHDTrainer
from ..reliability.guards import NumericsGuard
from ..telemetry import clock, get_registry, matrix_health

__all__ = ["ShadowModel", "FeedbackError", "RULES"]

RULES = ("mass", "online")


class FeedbackError(ValueError):
    """Raised for malformed feedback (bad label, wrong shape, ...)."""


class _TokenBucket:
    """Minimal thread-safe token bucket (``rate`` tokens/s, burst cap)."""

    def __init__(self, rate_per_s: float, burst: Optional[float] = None):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        self.rate = float(rate_per_s)
        self.capacity = float(burst) if burst else max(1.0, self.rate)
        if self.capacity < 1.0:
            raise ValueError("burst must be >= 1")
        self._tokens = self.capacity
        self._stamp = clock()
        self._lock = threading.Lock()

    def allow(self) -> bool:
        with self._lock:
            now = clock()
            self._tokens = min(self.capacity,
                               self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class ShadowModel:
    """A guarded, rate-limited learning copy of the live class matrix.

    Parameters
    ----------
    class_matrix:
        The live engine's class-hypervector matrix ``(k, dim)``; copied,
        never aliased.
    rule:
        ``"mass"`` (dense similarity-difference update) or ``"online"``
        (sparse two-class OnlineHD rule — better retention under label
        shift since untouched classes never move).
    lr, max_update_norm:
        Trainer learning rate and the per-class L2 cap on each applied
        update.
    rate_limit_per_s, rate_limit_burst:
        Token-bucket admission for feedback; ``None`` disables limiting.
    holdout_every:
        Every N-th admitted sample goes to the validation ring instead
        of the trainer (``0``/``None`` disables holdout).
    validation_capacity:
        Ring size; oldest held-out samples are overwritten.
    max_new_classes:
        Cap on class-incremental growth per generation.
    guard:
        :class:`~repro.reliability.NumericsGuard` (shared with the
        trainer).  Defaults to ``policy="skip_batch"`` so poisoned
        payloads are rejected, not fatal.
    """

    def __init__(self, class_matrix: np.ndarray, rule: str = "mass",
                 lr: float = 0.05, max_update_norm: float = 1.0,
                 rate_limit_per_s: Optional[float] = None,
                 rate_limit_burst: Optional[float] = None,
                 holdout_every: int = 8, validation_capacity: int = 512,
                 max_new_classes: int = 8,
                 guard: Optional[NumericsGuard] = None,
                 sat_factor: float = 3.0):
        if rule not in RULES:
            raise ValueError(f"unknown rule {rule!r}; expected one of "
                             f"{RULES}")
        if holdout_every < 0:
            raise ValueError("holdout_every must be >= 0")
        if validation_capacity <= 0:
            raise ValueError("validation_capacity must be positive")
        if max_new_classes < 0:
            raise ValueError("max_new_classes must be >= 0")
        self.rule = rule
        self.lr = float(lr)
        self.max_update_norm = (float(max_update_norm)
                                if max_update_norm else None)
        self.holdout_every = int(holdout_every)
        self.validation_capacity = int(validation_capacity)
        self.max_new_classes = int(max_new_classes)
        self.sat_factor = float(sat_factor)
        self.guard = guard if guard is not None else NumericsGuard(
            policy="skip_batch", max_abs=1e9, name="online")
        self._bucket = (_TokenBucket(rate_limit_per_s, rate_limit_burst)
                        if rate_limit_per_s else None)
        self._rate_limit_per_s = rate_limit_per_s
        self._lock = threading.RLock()
        self._rebase(np.asarray(class_matrix, dtype=np.float64))

    # -- lifecycle -----------------------------------------------------
    def _rebase(self, base: np.ndarray) -> None:
        base = np.atleast_2d(np.asarray(base, dtype=np.float64))
        self.base = base.copy()
        self.base_classes = int(base.shape[0])
        self.dim = int(base.shape[1])
        if self.rule == "online":
            trainer: MassTrainer = OnlineHDTrainer(
                self.base_classes, self.dim, lr=self.lr,
                reinforce_correct=True, guard=self.guard,
                max_update_norm=self.max_update_norm)
        else:
            trainer = MassTrainer(
                self.base_classes, self.dim, lr=self.lr, guard=self.guard,
                max_update_norm=self.max_update_norm)
        trainer.class_matrix = base.copy()
        self.trainer = trainer
        # Per-new-class bundle counts: index -> samples accumulated.
        self._new_class_counts: Dict[int, int] = {}
        self.generation_feedback = 0
        self.applied = 0
        self.held_out = 0
        self.rejected = 0
        self.rate_limited = 0
        self._ring_hvs = np.zeros((self.validation_capacity, self.dim))
        self._ring_labels = np.full(self.validation_capacity, -1,
                                    dtype=np.int64)
        self._ring_pos = 0
        self._ring_size = 0

    def reset_to(self, class_matrix: np.ndarray) -> None:
        """Rebase onto a newly promoted (or externally reloaded) matrix.

        Clears the validation ring and per-generation counters: held-out
        samples already informed the promotion decision, and re-scoring
        the next generation on them would double-count.
        """
        with self._lock:
            self._rebase(np.asarray(class_matrix, dtype=np.float64))

    # -- properties ----------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The current shadow class matrix (live reference, not a copy)."""
        return self.trainer.class_matrix

    @property
    def num_classes(self) -> int:
        return self.trainer.num_classes

    @property
    def classes_added(self) -> int:
        return self.trainer.num_classes - self.base_classes

    def snapshot(self) -> np.ndarray:
        """Consistent copy of the shadow matrix (for export)."""
        with self._lock:
            return self.trainer.class_matrix.copy()

    # -- feedback ingestion --------------------------------------------
    def ingest(self, encoded: np.ndarray, label: int) -> str:
        """Apply one labelled feedback hypervector to the shadow.

        Returns one of ``"applied"``, ``"new_class"``, ``"held_out"``,
        ``"rate_limited"``, ``"rejected"`` (guard veto).  Raises
        :class:`FeedbackError` for labels outside ``[0, num_classes]``
        or beyond the ``max_new_classes`` growth budget.
        """
        registry = get_registry()
        encoded = np.atleast_2d(np.asarray(encoded, dtype=np.float64))
        if encoded.shape != (1, self.dim):
            raise FeedbackError(
                f"encoded hypervector must have shape (1, {self.dim}) "
                f"or ({self.dim},), got {encoded.shape}")
        label = int(label)
        with self._lock:
            k = self.trainer.num_classes
            if label < 0 or label > k:
                raise FeedbackError(
                    f"label {label} outside [0, {k}] — new classes must "
                    f"arrive densely (next unseen label is {k})")
            if label == k and self.classes_added >= self.max_new_classes:
                raise FeedbackError(
                    f"class growth budget exhausted "
                    f"({self.max_new_classes} new classes this "
                    f"generation)")
        if self._bucket is not None and not self._bucket.allow():
            with self._lock:
                self.rate_limited += 1
            registry.inc("online.feedback.rate_limited")
            return "rate_limited"
        if not self.guard.ok("online.feedback", encoded):
            with self._lock:
                self.rejected += 1
            registry.inc("online.feedback.rejected")
            return "rejected"
        with self._lock:
            self.generation_feedback += 1
            if (self.holdout_every
                    and self.generation_feedback % self.holdout_every == 0):
                self._ring_put(encoded[0], label)
                self.held_out += 1
                registry.inc("online.feedback.held_out")
                registry.set_gauge("online.validation.size",
                                   self._ring_size)
                return "held_out"
            before = self.trainer.class_matrix.copy()
            if label >= self.base_classes:
                status = self._ingest_new_class(encoded, label)
            else:
                applied = self.trainer.step(encoded, np.array([label]))
                if not applied:
                    self.rejected += 1
                    registry.inc("online.feedback.rejected")
                    return "rejected"
                status = "applied"
            self.applied += 1
            after = self.trainer.class_matrix
            shared = min(before.shape[0], after.shape[0])
            moved = float(np.linalg.norm(after[:shared] - before[:shared]))
            if after.shape[0] > shared:  # class growth: count the new row
                moved = float(np.hypot(moved,
                                       np.linalg.norm(after[shared:])))
            registry.observe("online.update_norm", moved)
            registry.inc("online.feedback.applied")
            registry.set_gauge("online.shadow.classes",
                               self.trainer.num_classes)
            return status

    def _ingest_new_class(self, encoded: np.ndarray, label: int) -> str:
        """Class-incremental path: seed or bundle into the *new row only*.

        Never runs the dense trainer update, so rows ``< base_classes``
        are untouched — the bit-exact-parity guarantee for pre-existing
        classes that check_online.py asserts.
        """
        registry = get_registry()
        if label == self.trainer.num_classes:
            self.trainer.add_class(encoded)
            self._new_class_counts[label] = 1
            registry.inc("online.classes_added")
            return "new_class"
        # Subsequent samples: running centroid accumulation on the row.
        self.trainer.class_matrix[label] += encoded[0]
        self._new_class_counts[label] = \
            self._new_class_counts.get(label, 0) + 1
        return "applied"

    # -- validation ring -----------------------------------------------
    def _ring_put(self, hv: np.ndarray, label: int) -> None:
        self._ring_hvs[self._ring_pos] = hv
        self._ring_labels[self._ring_pos] = label
        self._ring_pos = (self._ring_pos + 1) % self.validation_capacity
        self._ring_size = min(self._ring_size + 1,
                              self.validation_capacity)

    def validation_set(self) -> "tuple[np.ndarray, np.ndarray]":
        """Copies of the held-back hypervectors and labels."""
        with self._lock:
            n = self._ring_size
            return self._ring_hvs[:n].copy(), self._ring_labels[:n].copy()

    def evaluate(self, live_matrix: np.ndarray) -> Dict[str, object]:
        """Score shadow vs live on the validation ring.

        Labels the live matrix has no row for (class-incremental
        arrivals) count as misclassified for the live model — that is
        the accuracy a client actually observes today.
        """
        hvs, labels = self.validation_set()
        with self._lock:
            shadow = self.trainer.class_matrix.copy()
        live = np.atleast_2d(np.asarray(live_matrix, dtype=np.float64))
        result: Dict[str, object] = {"size": int(len(labels))}
        if not len(labels):
            result["shadow_accuracy"] = None
            result["live_accuracy"] = None
            return result
        shadow_pred = normalized_similarity(shadow, hvs).argmax(axis=1)
        live_pred = normalized_similarity(live, hvs).argmax(axis=1)
        result["shadow_accuracy"] = float((shadow_pred == labels).mean())
        result["live_accuracy"] = float((live_pred == labels).mean())
        registry = get_registry()
        registry.set_gauge("online.shadow.accuracy",
                           result["shadow_accuracy"])
        registry.set_gauge("online.live.accuracy",
                           result["live_accuracy"])
        return result

    def health(self) -> Dict[str, object]:
        """Matrix-health view of the shadow (drift vs the rebased base)."""
        with self._lock:
            shadow = self.trainer.class_matrix.copy()
            base = self.base
        health = matrix_health(shadow, reference=base,
                               sat_factor=self.sat_factor)
        drift = health.get("drift")
        if isinstance(drift, dict):
            relative = drift.get("relative")
            if isinstance(relative, float) and np.isfinite(relative):
                get_registry().set_gauge("online.shadow.drift", relative)
        return health

    # -- status --------------------------------------------------------
    def status(self) -> Dict[str, object]:
        with self._lock:
            return {
                "rule": self.rule,
                "lr": self.lr,
                "max_update_norm": self.max_update_norm,
                "rate_limit_per_s": self._rate_limit_per_s,
                "holdout_every": self.holdout_every,
                "base_classes": self.base_classes,
                "classes": self.trainer.num_classes,
                "classes_added": self.classes_added,
                "dim": self.dim,
                "feedback": {
                    "seen": self.generation_feedback,
                    "applied": self.applied,
                    "held_out": self.held_out,
                    "rejected": self.rejected,
                    "rate_limited": self.rate_limited,
                },
                "validation_size": self._ring_size,
                "guard": dict(self.guard.counts),
            }
