"""Promotion gating: decide whether the shadow may replace the live model.

:class:`PromotionController` is deliberately *pure decision logic* — it
reads a :class:`~repro.online.shadow.ShadowModel` and the live class
matrix and returns a structured verdict; the actual bundle export and
``/reload`` hot swap live in :class:`~repro.online.learner.OnlineLearner`
so the gates are unit-testable without a server.

Every gate must pass (logical AND):

``min_feedback``
    Enough applied feedback this generation — one lucky sample is not a
    trend.
``min_validation``
    Enough held-back samples in the validation ring for the accuracy
    comparison to mean anything.
``accuracy``
    ``shadow − live ≥ min_accuracy_gain`` on the ring — promotion must
    buy something.
``shadow_accuracy``
    ``shadow ≥ min_shadow_accuracy`` *absolutely*.  This is the poison
    backstop: against a mislabelled ring the live model is
    systematically wrong (accuracy ≈ 0), so a relative gain alone can
    be met by a junk shadow scoring at chance.  A genuine label shift
    is *consistent* — the shadow can actually fit it and scores high —
    while inconsistent poison leaves the shadow near chance, under any
    sensible floor.
``confusability``
    The shadow's max off-diagonal class cosine may exceed the base
    matrix's by at most ``max_confusability_increase`` — feedback that
    smears class hypervectors into each other is structural damage even
    if ring accuracy momentarily holds.
``saturation``
    Shadow saturation fraction ≤ ``max_saturation`` — update blow-up
    concentrates mass in few dimensions long before accuracy collapses.
``drift``
    Optional: relative Frobenius drift of the shared class rows vs the
    base ≤ ``max_relative_drift`` (``None`` disables — class growth and
    heavy label shift legitimately move the matrix a lot).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..telemetry import get_registry, matrix_health
from .shadow import ShadowModel

__all__ = ["PromotionController"]


class PromotionController:
    """Evaluate shadow-vs-live promotion gates; see the module docstring."""

    def __init__(self, min_feedback: int = 64, min_validation: int = 16,
                 min_accuracy_gain: float = 0.01,
                 min_shadow_accuracy: float = 0.5,
                 max_confusability_increase: float = 0.15,
                 max_saturation: float = 0.15,
                 max_relative_drift: Optional[float] = None):
        if min_feedback < 0 or min_validation < 0:
            raise ValueError("min_feedback/min_validation must be >= 0")
        if not 0.0 <= min_shadow_accuracy <= 1.0:
            raise ValueError("min_shadow_accuracy must be in [0, 1]")
        if max_saturation < 0 or max_saturation > 1:
            raise ValueError("max_saturation must be in [0, 1]")
        if max_relative_drift is not None and max_relative_drift <= 0:
            raise ValueError("max_relative_drift must be positive")
        self.min_feedback = int(min_feedback)
        self.min_validation = int(min_validation)
        self.min_accuracy_gain = float(min_accuracy_gain)
        self.min_shadow_accuracy = float(min_shadow_accuracy)
        self.max_confusability_increase = float(max_confusability_increase)
        self.max_saturation = float(max_saturation)
        self.max_relative_drift = max_relative_drift

    def config(self) -> Dict[str, object]:
        return {
            "min_feedback": self.min_feedback,
            "min_validation": self.min_validation,
            "min_accuracy_gain": self.min_accuracy_gain,
            "min_shadow_accuracy": self.min_shadow_accuracy,
            "max_confusability_increase": self.max_confusability_increase,
            "max_saturation": self.max_saturation,
            "max_relative_drift": self.max_relative_drift,
        }

    # ------------------------------------------------------------------
    def evaluate(self, shadow: ShadowModel,
                 live_matrix: np.ndarray) -> Dict[str, object]:
        """Run every gate; returns the full decision record.

        ``{"promote": bool, "reasons": [failed gate names],
        "checks": {gate: {"passed", ...detail}}, "evaluation": ring
        accuracies, "health": shadow matrix health}`` — the record is
        JSON-safe and is surfaced verbatim on ``/onlinez`` and in the
        promotion ledger entries.
        """
        registry = get_registry()
        registry.inc("online.promotion.evaluations")
        checks: Dict[str, Dict[str, object]] = {}

        applied = shadow.applied
        checks["feedback"] = {
            "passed": applied >= self.min_feedback,
            "applied": int(applied),
            "required": self.min_feedback,
        }

        evaluation = shadow.evaluate(live_matrix)
        size = int(evaluation["size"])
        checks["validation"] = {
            "passed": size >= self.min_validation,
            "size": size,
            "required": self.min_validation,
        }

        shadow_acc = evaluation["shadow_accuracy"]
        live_acc = evaluation["live_accuracy"]
        if shadow_acc is None or live_acc is None:
            checks["accuracy"] = {"passed": False, "gain": None,
                                  "required": self.min_accuracy_gain}
            checks["shadow_accuracy"] = {
                "passed": False, "accuracy": None,
                "required": self.min_shadow_accuracy}
        else:
            gain = float(shadow_acc) - float(live_acc)
            checks["accuracy"] = {
                "passed": gain >= self.min_accuracy_gain,
                "gain": gain,
                "shadow": float(shadow_acc),
                "live": float(live_acc),
                "required": self.min_accuracy_gain,
            }
            checks["shadow_accuracy"] = {
                "passed": float(shadow_acc) >= self.min_shadow_accuracy,
                "accuracy": float(shadow_acc),
                "required": self.min_shadow_accuracy,
            }

        health = shadow.health()
        base_health = matrix_health(shadow.base,
                                    sat_factor=shadow.sat_factor)
        shadow_conf = health["confusability"]["off_diag_max"]
        base_conf = base_health["confusability"]["off_diag_max"]
        if isinstance(shadow_conf, float) and math.isfinite(shadow_conf):
            budget = (base_conf if isinstance(base_conf, float)
                      and math.isfinite(base_conf) else 0.0)
            budget += self.max_confusability_increase
            checks["confusability"] = {
                "passed": shadow_conf <= budget,
                "off_diag_max": shadow_conf,
                "budget": budget,
            }
        else:  # fewer than two classes — nothing to confuse
            checks["confusability"] = {"passed": True,
                                       "off_diag_max": None,
                                       "budget": None}

        saturation = float(health["saturation_fraction"])
        checks["saturation"] = {
            "passed": saturation <= self.max_saturation,
            "fraction": saturation,
            "limit": self.max_saturation,
        }

        drift = health.get("drift")
        relative = (drift.get("relative")
                    if isinstance(drift, dict) else None)
        if self.max_relative_drift is None:
            checks["drift"] = {"passed": True, "relative": relative,
                               "limit": None}
        elif isinstance(relative, float) and math.isfinite(relative):
            checks["drift"] = {
                "passed": relative <= self.max_relative_drift,
                "relative": relative,
                "limit": self.max_relative_drift,
            }
        else:  # no comparable reference — cannot certify, so fail safe
            checks["drift"] = {"passed": False, "relative": None,
                               "limit": self.max_relative_drift}

        reasons: List[str] = [name for name, check in checks.items()
                              if not check["passed"]]
        promote = not reasons
        if not promote:
            registry.inc("online.promotion.rejected")
        return {
            "promote": promote,
            "reasons": reasons,
            "checks": checks,
            "evaluation": evaluation,
            "health": health,
        }
