"""OnlineLearner: the server-side façade tying feedback to promotion.

One instance rides a :class:`~repro.serve.server.ModelServer`:

* ``POST /feedback`` bodies land in :meth:`feedback` — either inline
  ``features`` or a ``request_id`` previously returned by ``/predict``
  (the learner remembers a bounded ring of recent request features, so
  a client can say "that prediction was actually class 3" without
  re-uploading the features).  Features are encoded through the *live*
  engine's frozen encoder and fed to the
  :class:`~repro.online.shadow.ShadowModel`.
* Every ``promote_every`` applied samples (and on explicit ``POST
  /promote``) the :class:`~repro.online.promote.PromotionController`
  gates run.  On a pass the learner exports a version-bumped bundle
  (:meth:`~repro.serve.bundle.ModelBundle.promoted` — quality-baseline
  class priors recomputed from shadow predictions on the validation
  ring, so ``/driftz`` prediction-skew does not permanently fire after
  class-incremental growth) and calls the server's existing
  :meth:`~repro.serve.server.ModelServer.reload` — the same verified
  atomic hot swap operators already use, so in-flight ``/predict``
  batches finish on the engine snapshot they started with and the
  router's ``/reload`` fan-out promotes the whole fleet.
* After a successful promotion the shadow is rebased onto the newly
  live matrix and the generation counter bumps.  An *external* reload
  (operator swapped bundles underneath us) is detected by fingerprint
  on the next touch and triggers the same rebase — the shadow never
  learns against a stale base.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..learn.mass import normalized_similarity
from ..reliability.guards import NumericsGuard
from ..telemetry import get_registry
from .promote import PromotionController
from .shadow import RULES, FeedbackError, ShadowModel

__all__ = ["OnlineLearner"]

# Keys accepted in the [online] config section / online_options dict.
ONLINE_OPTION_KEYS = (
    "enabled", "rule", "lr", "max_update_norm", "rate_limit_per_s",
    "rate_limit_burst", "holdout_every", "validation_capacity",
    "max_new_classes", "guard_policy", "guard_max_abs", "promote_every",
    "auto_promote", "export_dir", "remember_requests", "min_feedback",
    "min_validation", "min_accuracy_gain", "min_shadow_accuracy",
    "max_confusability_increase", "max_saturation", "max_relative_drift",
)


class OnlineLearner:
    """Serve-path continual learning controller (see module docstring).

    Constructed by :class:`~repro.serve.server.ModelServer` from the
    ``[online]`` config section; every keyword maps 1:1 to a TOML key.
    """

    def __init__(self, server: Any, rule: str = "mass", lr: float = 0.05,
                 max_update_norm: float = 1.0,
                 rate_limit_per_s: Optional[float] = None,
                 rate_limit_burst: Optional[float] = None,
                 holdout_every: int = 8, validation_capacity: int = 512,
                 max_new_classes: int = 8,
                 guard_policy: str = "skip_batch",
                 guard_max_abs: float = 1e9,
                 promote_every: int = 64, auto_promote: bool = True,
                 export_dir: Optional[str] = None,
                 remember_requests: int = 1024,
                 min_feedback: int = 64, min_validation: int = 16,
                 min_accuracy_gain: float = 0.01,
                 min_shadow_accuracy: float = 0.5,
                 max_confusability_increase: float = 0.15,
                 max_saturation: float = 0.15,
                 max_relative_drift: Optional[float] = None):
        if rule not in RULES:
            raise ValueError(f"unknown rule {rule!r}; expected one of "
                             f"{RULES}")
        if promote_every < 0:
            raise ValueError("promote_every must be >= 0")
        if remember_requests < 0:
            raise ValueError("remember_requests must be >= 0")
        self._server = server
        self.promote_every = int(promote_every)
        self.auto_promote = bool(auto_promote)
        self.export_dir = export_dir
        self.remember_requests = int(remember_requests)
        self.generation = 0
        guard = NumericsGuard(policy=guard_policy, max_abs=guard_max_abs,
                              name="online")
        self.shadow = ShadowModel(
            self.engine.class_matrix, rule=rule, lr=lr,
            max_update_norm=max_update_norm,
            rate_limit_per_s=rate_limit_per_s,
            rate_limit_burst=rate_limit_burst,
            holdout_every=holdout_every,
            validation_capacity=validation_capacity,
            max_new_classes=max_new_classes, guard=guard)
        self.controller = PromotionController(
            min_feedback=min_feedback, min_validation=min_validation,
            min_accuracy_gain=min_accuracy_gain,
            min_shadow_accuracy=min_shadow_accuracy,
            max_confusability_increase=max_confusability_increase,
            max_saturation=max_saturation,
            max_relative_drift=max_relative_drift)
        self._live_fingerprint = self._engine_fingerprint()
        self._recent: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._recent_lock = threading.Lock()
        self._promote_lock = threading.Lock()
        self._since_eval = 0
        self.last_decision: Optional[Dict[str, object]] = None
        self.promotions = 0

    # -- live-engine accessors -----------------------------------------
    @property
    def engine(self) -> Any:
        return self._server.engine

    def _engine_fingerprint(self) -> Optional[str]:
        return self.engine.bundle.info.get("config_fingerprint")

    def _sync_base(self) -> None:
        """Rebase the shadow if the live engine changed underneath us."""
        fingerprint = self._engine_fingerprint()
        if fingerprint != self._live_fingerprint:
            self.shadow.reset_to(self.engine.class_matrix)
            self._live_fingerprint = fingerprint
            self._since_eval = 0

    # -- request memory (request_id → features) ------------------------
    def remember(self, request_id: str, features: np.ndarray) -> None:
        """Retain a served request's features for later feedback.

        Only single-row requests are retained — feedback carries exactly
        one label, so a multi-row batch is ambiguous.
        """
        if not self.remember_requests or len(features) != 1:
            return
        with self._recent_lock:
            self._recent[request_id] = np.array(features[0],
                                                dtype=np.float64)
            while len(self._recent) > self.remember_requests:
                self._recent.popitem(last=False)

    def recall(self, request_id: str) -> Optional[np.ndarray]:
        with self._recent_lock:
            features = self._recent.get(request_id)
            return None if features is None else features.copy()

    # -- feedback ------------------------------------------------------
    def feedback(self, payload: Dict[str, Any]
                 ) -> Tuple[int, Dict[str, Any]]:
        """Handle one ``POST /feedback`` body; returns (status, body).

        Body: ``{"label": int, "features": [...]}`` or ``{"label": int,
        "request_id": "..."}``.  200 applied/held_out/new_class, 400
        malformed, 404 unknown request_id, 422 guard-rejected, 429
        rate-limited.
        """
        registry = get_registry()
        self._sync_base()
        label = payload.get("label")
        if not isinstance(label, int) or isinstance(label, bool):
            return 400, {"error": "feedback requires an integer 'label'"}
        features = payload.get("features")
        request_id = payload.get("request_id")
        if (features is None) == (request_id is None):
            return 400, {"error": "provide exactly one of 'features' or "
                                  "'request_id'"}
        if request_id is not None:
            if not isinstance(request_id, str):
                return 400, {"error": "'request_id' must be a string"}
            features = self.recall(request_id)
            if features is None:
                registry.inc("online.feedback.unknown_request")
                return 404, {"error": f"request_id {request_id!r} not in "
                                      f"the recent-request window"}
        try:
            row = np.asarray(features, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            return 400, {"error": f"features are not numeric: {exc}"}
        row = np.atleast_2d(row)
        if row.ndim != 2 or row.shape[0] != 1:
            return 400, {"error": "features must be a single sample "
                                  "(one row)"}
        if not np.isfinite(row).all():
            return 400, {"error": "features contain NaN/Inf"}
        try:
            encoded = self.engine.encode_features(row)
            status = self.shadow.ingest(encoded, label)
        except FeedbackError as exc:
            return 400, {"error": str(exc)}
        except ValueError as exc:  # e.g. feature-width mismatch
            return 400, {"error": str(exc)}
        body: Dict[str, Any] = {
            "status": status,
            "label": label,
            "classes": self.shadow.num_classes,
            "generation": self.generation,
        }
        if status == "rate_limited":
            return 429, body
        if status == "rejected":
            body["error"] = "feedback rejected by the numerics guard"
            return 422, body
        if status in ("applied", "new_class"):
            self._since_eval += 1
            if (self.auto_promote and self.promote_every
                    and self._since_eval >= self.promote_every):
                decision = self.try_promote()
                body["promotion"] = {
                    "promote": decision["promote"],
                    "reasons": decision["reasons"],
                    "promoted": decision.get("promoted", False),
                }
                body["generation"] = self.generation
        return 200, body

    # -- promotion -----------------------------------------------------
    def _class_priors(self, matrix: np.ndarray) -> Optional[np.ndarray]:
        """Laplace-smoothed class priors from shadow ring predictions.

        This is the satellite-2 recompute: after class-incremental
        growth the promoted bundle's baseline must carry a prior for
        the *new* class — copying the parent's priors would leave
        ``/driftz`` prediction-skew permanently firing on it.  Returns
        ``None`` when the parent bundle carries no quality baseline.
        """
        if self.engine.bundle.info.get("quality_baseline") is None:
            return None
        k = int(matrix.shape[0])
        counts = np.ones(k)  # Laplace prior: every class representable
        hvs, _ = self.shadow.validation_set()
        if len(hvs):
            preds = normalized_similarity(matrix, hvs).argmax(axis=1)
            counts += np.bincount(preds, minlength=k)
        return counts / counts.sum()

    def _export_path(self) -> str:
        directory = self.export_dir
        if directory is None:
            base = getattr(self._server, "bundle_path", None)
            directory = (os.path.dirname(os.path.abspath(base))
                         if base else tempfile.mkdtemp(prefix="online-"))
            self.export_dir = directory
        os.makedirs(directory, exist_ok=True)
        return os.path.join(directory,
                            f"online-gen{self.generation + 1:03d}.npz")

    def try_promote(self) -> Dict[str, object]:
        """Evaluate the gates now; promote atomically if every gate passes.

        Serialized by a lock — concurrent ``/promote`` calls and the
        auto-promotion path cannot double-export.  The decision record
        (gate checks, ring accuracies, shadow health, and on success the
        exported path + reload info) is retained for ``/onlinez``.
        """
        registry = get_registry()
        with self._promote_lock:
            self._sync_base()
            self._since_eval = 0
            decision = self.controller.evaluate(
                self.shadow, self.engine.class_matrix)
            decision["generation"] = self.generation
            decision["evaluated_at"] = time.time()
            if decision["promote"]:
                try:
                    self._promote(decision)
                except Exception as exc:
                    # Export/reload failure must not take the serving
                    # path down: record it, keep the old engine live.
                    decision["promoted"] = False
                    decision["error"] = f"{type(exc).__name__}: {exc}"
                    registry.inc("online.promotion.failed")
            self.last_decision = decision
            return decision

    def _promote(self, decision: Dict[str, object]) -> None:
        matrix = self.shadow.snapshot()
        priors = self._class_priors(matrix)
        child = self.engine.bundle.promoted(
            matrix, generation=self.generation + 1,
            feedback_count=self.shadow.applied,
            class_priors=priors,
            extra={"rule": self.shadow.rule,
                   "classes_added": self.shadow.classes_added})
        path = self._export_path()
        child.save(path)
        info = self._server.reload(path)  # the existing atomic hot swap
        self.generation += 1
        self.promotions += 1
        self._live_fingerprint = self._engine_fingerprint()
        self.shadow.reset_to(self.engine.class_matrix)
        registry = get_registry()
        registry.inc("online.promotion.promoted")
        registry.set_gauge("online.promotion.generation", self.generation)
        decision["promoted"] = True
        decision["bundle_path"] = path
        decision["reload"] = info

    # -- status --------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """The ``GET /onlinez`` payload."""
        self._sync_base()
        return {
            "enabled": True,
            "generation": self.generation,
            "promotions": self.promotions,
            "live_fingerprint": self._live_fingerprint,
            "auto_promote": self.auto_promote,
            "promote_every": self.promote_every,
            "export_dir": self.export_dir,
            "remembered_requests": len(self._recent),
            "shadow": self.shadow.status(),
            "gates": self.controller.config(),
            "last_decision": self.last_decision,
        }
