"""Serve-path continual learning: guarded feedback, shadow models,
gated atomic promotion.

The paper's core economic claim — class hypervectors admit cheap
one-shot updates — is exactly what makes *learning in production*
viable: a labelled feedback sample is one guarded MASS/OnlineHD step,
not a retraining job.  This package closes the repo's train/serve
split into that loop:

* :class:`~repro.online.shadow.ShadowModel` — a float64 shadow copy of
  the live engine's frozen class-hypervector matrix.  ``POST
  /feedback`` samples update the *shadow* (never the serving matrix)
  through the existing trainer rules, wrapped in a
  :class:`~repro.reliability.NumericsGuard`, bounded per-class update
  norms (:func:`~repro.learn.mass.clip_update_norms`), and a token-
  bucket rate limit.  Every ``holdout_every``-th sample is held back
  into a validation ring instead of being learned from.  Feedback with
  a previously unseen label allocates a **new class hypervector with
  no retrain** (class-incremental arrival, ImageHD-style).
* :class:`~repro.online.promote.PromotionController` — evaluates the
  shadow against the live matrix on the held-back ring and the
  :mod:`repro.telemetry.diagnostics` matrix-health view (accuracy
  delta, confusability, saturation, drift, minimum feedback/validation
  counts).  Every gate must pass; a poisoned feedback stream fails the
  accuracy-gain and confusability gates and never reaches production.
* :class:`~repro.online.learner.OnlineLearner` — the server-side
  façade: resolves ``/feedback`` bodies (inline features or a
  remembered ``request_id``), feeds the shadow, and on a passing
  evaluation performs **atomic promotion** — export a version-bumped
  bundle (:meth:`~repro.serve.bundle.ModelBundle.promoted`, with
  recomputed quality-baseline class priors) and reuse the existing
  ``/reload`` hot swap, so in-flight ``/predict`` batches finish on
  whichever engine they started with and the router's ``/reload``
  fan-out promotes fleet-wide.

Everything is observable under ``online.*`` / ``serve.feedback.*``
metrics (see docs/OBSERVABILITY.md) and ``GET /onlinez``; the tier-2
gate is ``scripts/check_online.sh``.  See docs/ONLINE.md.
"""

from .learner import OnlineLearner
from .promote import PromotionController
from .shadow import FeedbackError, ShadowModel

__all__ = ["OnlineLearner", "PromotionController", "ShadowModel",
           "FeedbackError"]
