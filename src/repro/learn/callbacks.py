"""Trainer callbacks: one hook for telemetry, checkpointing, early stop.

:class:`MassTrainer.fit` (and therefore the distillation trainer and the
BaselineHD/VanillaHD pipelines) invokes every registered callback's
``on_epoch_end(epoch, metrics)`` after each epoch.  ``metrics`` is a
plain dict carrying at least::

    {"epoch": int,            # 0-based epoch just finished
     "train_acc": float,      # accuracy after this epoch's updates
     "epoch_time_s": float,   # wall time of the epoch (tracing clock)
     "history": dict}         # the trainer's running history (by ref)

This replaces the ad-hoc ``epoch_callback`` closure that the pipelines
previously threaded into ``fit`` for checkpointing — checkpoint writes,
metric publication and future early-stopping all share the same hook.
The legacy ``epoch_callback`` parameter still works and is invoked after
the callbacks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..telemetry import get_registry
from ..telemetry.metrics import MetricsRegistry

__all__ = ["TrainerCallback", "TelemetryCallback", "CheckpointCallback",
           "EarlyStopping"]


class TrainerCallback:
    """Base class: override any subset of the hooks."""

    def on_fit_start(self, trainer, total_epochs: int) -> None:
        """Called once before the first trained epoch."""

    def on_epoch_end(self, epoch: int, metrics: Dict[str, object]) -> None:
        """Called after every epoch with the metrics dict described in
        the module docstring."""

    def on_fit_end(self, history: Dict[str, List[float]]) -> None:
        """Called once after the last epoch (also when stopped early)."""

    def should_stop(self) -> bool:
        """Polled after ``on_epoch_end``; return True to end training."""
        return False


class TelemetryCallback(TrainerCallback):
    """Publish per-epoch trainer metrics into a metrics registry.

    Parameters
    ----------
    prefix:
        Metric-name prefix (``{prefix}.epoch``, ``{prefix}.train_acc``,
        ``{prefix}.epoch_time_s``); lets several trainers in one process
        publish side by side.
    registry:
        Defaults to the process-global registry.
    """

    def __init__(self, prefix: str = "train",
                 registry: Optional[MetricsRegistry] = None):
        self.prefix = prefix
        self.registry = registry

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    def on_epoch_end(self, epoch: int, metrics: Dict[str, object]) -> None:
        registry = self._registry()
        registry.inc(f"{self.prefix}.epochs")
        registry.set_gauge(f"{self.prefix}.epoch", float(epoch))
        for key, value in metrics.items():
            if key in ("epoch", "history") or not isinstance(
                    value, (int, float)):
                continue
            if key.endswith("_time_s"):
                registry.observe(f"{self.prefix}.{key}", float(value))
            else:
                registry.set_gauge(f"{self.prefix}.{key}", float(value))


class CheckpointCallback(TrainerCallback):
    """Atomic pipeline checkpoint writes every ``every`` epochs.

    Wraps :meth:`repro.learn.pipeline._HDPipeline.save_checkpoint`; the
    optional ``history_prefix`` carries epochs restored from a previous
    checkpoint so the persisted history stays complete across resumes.
    """

    def __init__(self, pipeline, path: str, every: int = 1,
                 total_epochs: Optional[int] = None,
                 history_prefix: Optional[Dict[str, List[float]]] = None):
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.pipeline = pipeline
        self.path = path
        self.every = every
        self.total_epochs = total_epochs
        self.history_prefix = {key: list(values) for key, values
                               in (history_prefix or {}).items()}

    def merged_history(self, history: Dict[str, List[float]]
                       ) -> Dict[str, List[float]]:
        merged = {key: list(values)
                  for key, values in self.history_prefix.items()}
        for key, values in history.items():
            merged[key] = merged.get(key, []) + list(values)
        return merged

    def on_epoch_end(self, epoch: int, metrics: Dict[str, object]) -> None:
        completed = epoch + 1
        if completed % self.every and completed != self.total_epochs:
            return
        history = metrics.get("history") or {}
        self.pipeline.save_checkpoint(self.path, completed,
                                      self.merged_history(history))


class EarlyStopping(TrainerCallback):
    """Stop when a monitored metric fails to improve for ``patience``
    epochs (greater-is-better by default, e.g. ``train_acc``)."""

    def __init__(self, monitor: str = "train_acc", patience: int = 5,
                 min_delta: float = 0.0, mode: str = "max"):
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best: Optional[float] = None
        self.stale = 0
        self.stopped_epoch: Optional[int] = None

    def on_fit_start(self, trainer, total_epochs: int) -> None:
        self.best = None
        self.stale = 0
        self.stopped_epoch = None

    def on_epoch_end(self, epoch: int, metrics: Dict[str, object]) -> None:
        value = metrics.get(self.monitor)
        if value is None:
            return
        value = float(value)
        sign = 1.0 if self.mode == "max" else -1.0
        if self.best is None or sign * (value - self.best) > self.min_delta:
            self.best = value
            self.stale = 0
        else:
            self.stale += 1
            if self.stale >= self.patience:
                self.stopped_epoch = epoch

    def should_stop(self) -> bool:
        return self.stopped_epoch is not None
