"""MASS retraining: Many-class Similarity Scaling (CascadeHD [3]).

MASS tunes class hypervectors using *class-wise similarity differences*
(paper Sec. V-A): for a training hypervector ``H`` with one-hot label
vector ``o`` the update is

    U = o − δ(M, H)
    M ← M + λ Uᵀ H

so misclassified samples (large similarity error) cause large updates,
pulling the correct class hypervector toward ``H`` and pushing the others
away, while well-classified samples barely move the model.

δ is the *normalized* (cosine) similarity so that it is commensurate with
the one-hot target — raw bipolar dot products grow with D and would make
``o − δ`` meaningless.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Callable, Dict, List, Optional,
                    Sequence)

import numpy as np

from ..data.loader import one_hot
from ..pipeline.stages import cosine_similarities
from ..telemetry import clock, get_registry, span
from .centroid import train_centroids

if TYPE_CHECKING:  # avoid an import cycle; the guard is duck-typed
    from ..reliability.guards import NumericsGuard
    from .callbacks import TrainerCallback

__all__ = ["normalized_similarity", "clip_update_norms", "MassTrainer"]


def normalized_similarity(class_matrix: np.ndarray,
                          queries: np.ndarray) -> np.ndarray:
    """Cosine similarity δ(M, H) used by the retraining rules, ``(n, k)``.

    Thin alias for :func:`repro.pipeline.stages.cosine_similarities` —
    the stage graph owns the one canonical implementation that training
    and serving share (bit-for-bit).
    """
    return cosine_similarities(class_matrix, queries)


def clip_update_norms(delta: np.ndarray, max_norm: float) -> np.ndarray:
    """Row-wise L2 clip of an update matrix: ``(k, dim)`` → ``(k, dim)``.

    Rows whose norm exceeds ``max_norm`` are rescaled onto the ball,
    rows under the cap pass through untouched (bit-exact).  This is the
    safety bound the online-learning path puts between untrusted
    feedback and the class-hypervector matrix: one poisoned sample can
    move each class hypervector at most ``max_norm``.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    delta = np.atleast_2d(np.asarray(delta, dtype=np.float64))
    norms = np.linalg.norm(delta, axis=1, keepdims=True)
    scale = np.where(norms > max_norm, max_norm / np.where(
        norms > 0, norms, 1.0), 1.0)
    if np.all(scale == 1.0):
        return delta
    return delta * scale


class MassTrainer:
    """Iterative class-hypervector retraining with the MASS rule.

    Parameters
    ----------
    num_classes, dim:
        Shape of the class-hypervector matrix ``M``.
    lr:
        The paper's λ.  Updates are scaled by the query-hypervector norm
        so ``lr`` is dimension-independent.
    guard:
        Optional :class:`repro.reliability.NumericsGuard`.  When set,
        every batch's inputs and update matrix are vetted *before* they
        touch ``class_matrix``; bad batches are skipped (or raise,
        depending on the guard's policy) so the model is never corrupted.
    max_update_norm:
        Optional per-class L2 cap on each applied update (after the
        ``λ/√dim`` scaling).  ``None`` (the default) applies updates
        unclipped — bit-exact with the historical behaviour.  The
        online-learning serving path sets this so one feedback sample
        has bounded influence on the model.
    """

    def __init__(self, num_classes: int, dim: int, lr: float = 0.05,
                 guard: Optional["NumericsGuard"] = None,
                 max_update_norm: Optional[float] = None):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if dim <= 0:
            raise ValueError("dim must be positive")
        if max_update_norm is not None and max_update_norm <= 0:
            raise ValueError("max_update_norm must be positive")
        self.num_classes = num_classes
        self.dim = dim
        self.lr = lr
        self.guard = guard
        self.max_update_norm = max_update_norm
        self.class_matrix = np.zeros((num_classes, dim))

    # ------------------------------------------------------------------
    def initialize(self, hypervectors: np.ndarray,
                   labels: np.ndarray) -> None:
        """Bootstrap ``M`` with single-pass centroid bundling.

        With a :attr:`guard` attached, poisoned samples are handled per
        the guard's policy *before* bundling: ``raise`` aborts, while
        ``warn``/``skip_batch`` drop the non-finite rows so the centroids
        are built from clean samples only.
        """
        hypervectors = np.atleast_2d(hypervectors)
        labels = np.asarray(labels)
        if (self.guard is not None
                and not self.guard.ok("mass.initialize", hypervectors)):
            keep = np.isfinite(hypervectors).all(axis=1)
            hypervectors = hypervectors[keep]
            labels = labels[keep]
        self.class_matrix = train_centroids(hypervectors, labels,
                                            self.num_classes)

    def similarities(self, hypervectors: np.ndarray) -> np.ndarray:
        with span("stage.similarity",
                  nbytes=int(np.asarray(hypervectors).nbytes)):
            return normalized_similarity(self.class_matrix, hypervectors)

    # ------------------------------------------------------------------
    @staticmethod
    def _record_margins(similarities: np.ndarray,
                        labels: np.ndarray) -> None:
        """Publish the batch's similarity margins to telemetry.

        The margin of a sample is ``δ_true − max_other δ`` — positive
        when classified correctly, and its magnitude measures how safely.
        The distribution (histogram ``train.similarity_margin``) is the
        paper's Fig. 7-style view on how separated the classes are.
        """
        similarities = np.atleast_2d(similarities)
        labels = np.asarray(labels)
        rows = np.arange(len(similarities))
        true_sims = similarities[rows, labels]
        masked = similarities.copy()
        masked[rows, labels] = -np.inf
        margins = true_sims - masked.max(axis=1)
        get_registry().observe_many("train.similarity_margin", margins)

    # ------------------------------------------------------------------
    def compute_update(self, hypervectors: np.ndarray, labels: np.ndarray,
                       **_unused) -> np.ndarray:
        """The MASS update matrix ``U = one_hot − δ(M, H)``, ``(n, k)``.

        Subclasses (knowledge distillation) override this hook; the
        ``M += λ Uᵀ H`` application is shared.
        """
        targets = one_hot(labels, self.num_classes)
        similarities = self.similarities(hypervectors)
        self._record_margins(similarities, labels)
        return targets - similarities

    def step(self, hypervectors: np.ndarray, labels: np.ndarray,
             **update_kwargs) -> bool:
        """Apply one update ``M ← M + λ Uᵀ H`` for a (mini)batch.

        Returns True when the update was applied.  With a
        :attr:`guard` attached, non-finite inputs or updates are caught
        *before* touching ``class_matrix`` and the batch is skipped
        (returns False) or raises, per the guard's policy.
        """
        hypervectors = np.atleast_2d(hypervectors)
        registry = get_registry()
        registry.inc("train.batches")
        registry.inc("train.samples", len(hypervectors))
        with span("stage.update", nbytes=int(hypervectors.nbytes)):
            if self.guard is not None:
                extras = [np.asarray(v) for v in update_kwargs.values()
                          if isinstance(v, (np.ndarray, list, tuple,
                                            float, int))]
                if not self.guard.ok("mass.inputs", hypervectors, *extras):
                    registry.inc("train.skipped_batches")
                    return False
            update = self.compute_update(hypervectors, labels,
                                         **update_kwargs)
            if self.guard is not None and not self.guard.ok("mass.update",
                                                            update):
                registry.inc("train.skipped_batches")
                return False
            scale = self.lr / np.sqrt(self.dim)
            delta = scale * update.T @ hypervectors
            if self.max_update_norm is not None:
                delta = clip_update_norms(delta, self.max_update_norm)
            registry.observe("train.update_norm",
                             float(np.linalg.norm(delta)))
            self.class_matrix += delta
        return True

    # ------------------------------------------------------------------
    def add_class(self, init_hv: Optional[np.ndarray] = None) -> int:
        """Grow the model by one class; returns the new class index.

        Class-incremental arrival (ImageHD-style continual learning): a
        previously unseen label gets a fresh class-hypervector row with
        **no retrain** of the existing classes.  ``init_hv`` bootstraps
        the row (typically the first encoded feedback hypervector of
        the new class — a one-shot centroid); ``None`` starts from
        zeros and lets subsequent updates fill it in.
        """
        if init_hv is None:
            row = np.zeros((1, self.dim))
        else:
            row = np.atleast_2d(np.asarray(init_hv, dtype=np.float64))
            if row.shape != (1, self.dim):
                raise ValueError(
                    f"init_hv must have shape (1, {self.dim}) or "
                    f"({self.dim},), got {row.shape}")
            if not np.isfinite(row).all():
                raise ValueError("init_hv contains NaN/Inf")
        self.class_matrix = np.vstack([self.class_matrix, row])
        self.num_classes += 1
        return self.num_classes - 1

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Serializable trainer state (the class-hypervector matrix)."""
        return {"class_matrix": self.class_matrix.copy()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state written by :meth:`state_dict` (shape-checked)."""
        if "class_matrix" not in state:
            raise ValueError(
                f"{type(self).__name__} state dict is missing "
                f"'class_matrix' (got keys {sorted(state)})")
        matrix = np.asarray(state["class_matrix"], dtype=np.float64)
        if matrix.shape != (self.num_classes, self.dim):
            raise ValueError(
                f"{type(self).__name__} expects class_matrix of shape "
                f"{(self.num_classes, self.dim)}, got {matrix.shape}")
        self.class_matrix = matrix.copy()

    # ------------------------------------------------------------------
    def fit(self, hypervectors: np.ndarray, labels: np.ndarray,
            epochs: int = 20, batch_size: int = 64,
            rng: Optional[np.random.Generator] = None,
            initialize: bool = True,
            extra_per_sample: Optional[Dict[str, np.ndarray]] = None,
            start_epoch: int = 0,
            epoch_callback: Optional[Callable[[int, Dict[str, List[float]]],
                                              None]] = None,
            callbacks: Optional[Sequence["TrainerCallback"]] = None
            ) -> Dict[str, List[float]]:
        """Run retraining epochs; returns per-epoch training accuracy.

        ``extra_per_sample`` carries aligned side information (e.g. teacher
        logits for the distillation subclass); it is shuffled and batched
        together with the hypervectors.

        ``start_epoch`` supports checkpoint/resume: the loop runs epochs
        ``[start_epoch, epochs)``.  A resumed caller passes
        ``initialize=False`` and a shuffle ``rng`` restored to the killed
        run's state for bit-exact continuation.

        ``callbacks`` are :class:`repro.learn.callbacks.TrainerCallback`
        instances: after every epoch each receives
        ``on_epoch_end(epoch, metrics)`` with ``{"epoch", "train_acc",
        "epoch_time_s", "history"}`` and is then polled via
        ``should_stop()``; checkpoint writes, telemetry publication and
        early stopping all ride this hook.  The legacy
        ``epoch_callback(epoch, history)`` closure still works and runs
        after the callbacks.
        """
        hypervectors = np.atleast_2d(hypervectors)
        labels = np.asarray(labels)
        rng = rng or np.random.default_rng()
        if not 0 <= start_epoch <= epochs:
            raise ValueError(f"start_epoch {start_epoch} outside "
                             f"[0, {epochs}]")
        if initialize:
            self.initialize(hypervectors, labels)
        extra_per_sample = extra_per_sample or {}
        callbacks = list(callbacks or [])

        history: Dict[str, List[float]] = {"train_acc": [],
                                           "epoch_time": []}
        for callback in callbacks:
            callback.on_fit_start(self, epochs)
        stop = False
        for epoch in range(start_epoch, epochs):
            epoch_start = clock()
            # A fresh permutation per epoch (rather than in-place shuffling
            # of a persistent index array) makes each epoch's ordering a
            # pure function of the RNG state — the property checkpoint
            # resume relies on for bit-exact continuation.
            indices = rng.permutation(len(hypervectors))
            for start in range(0, len(indices), batch_size):
                batch = indices[start:start + batch_size]
                kwargs = {key: value[batch]
                          for key, value in extra_per_sample.items()}
                self.step(hypervectors[batch], labels[batch], **kwargs)
            train_acc = self.accuracy(hypervectors, labels)
            epoch_time = clock() - epoch_start
            history["train_acc"].append(train_acc)
            history["epoch_time"].append(epoch_time)
            metrics = {"epoch": epoch, "train_acc": train_acc,
                       "epoch_time_s": epoch_time, "history": history}
            for callback in callbacks:
                callback.on_epoch_end(epoch, metrics)
            if epoch_callback is not None:
                epoch_callback(epoch, history)
            if any(callback.should_stop() for callback in callbacks):
                stop = True
            if stop:
                break
        for callback in callbacks:
            callback.on_fit_end(history)
        return history

    # ------------------------------------------------------------------
    def predict(self, hypervectors: np.ndarray) -> np.ndarray:
        return self.similarities(hypervectors).argmax(axis=1)

    def accuracy(self, hypervectors: np.ndarray,
                 labels: np.ndarray) -> float:
        return float((self.predict(hypervectors) ==
                      np.asarray(labels)).mean())
