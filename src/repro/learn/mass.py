"""MASS retraining: Many-class Similarity Scaling (CascadeHD [3]).

MASS tunes class hypervectors using *class-wise similarity differences*
(paper Sec. V-A): for a training hypervector ``H`` with one-hot label
vector ``o`` the update is

    U = o − δ(M, H)
    M ← M + λ Uᵀ H

so misclassified samples (large similarity error) cause large updates,
pulling the correct class hypervector toward ``H`` and pushing the others
away, while well-classified samples barely move the model.

δ is the *normalized* (cosine) similarity so that it is commensurate with
the one-hot target — raw bipolar dot products grow with D and would make
``o − δ`` meaningless.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..data.loader import one_hot
from .centroid import train_centroids

__all__ = ["normalized_similarity", "MassTrainer"]


def normalized_similarity(class_matrix: np.ndarray,
                          queries: np.ndarray) -> np.ndarray:
    """Cosine similarity δ(M, H) used by the retraining rules, ``(n, k)``."""
    queries = np.atleast_2d(queries)
    class_norms = np.linalg.norm(class_matrix, axis=1)
    class_norms = np.where(class_norms < 1e-12, 1.0, class_norms)
    query_norms = np.linalg.norm(queries, axis=1, keepdims=True)
    query_norms = np.where(query_norms < 1e-12, 1.0, query_norms)
    return (queries @ class_matrix.T) / (query_norms * class_norms[None, :])


class MassTrainer:
    """Iterative class-hypervector retraining with the MASS rule.

    Parameters
    ----------
    num_classes, dim:
        Shape of the class-hypervector matrix ``M``.
    lr:
        The paper's λ.  Updates are scaled by the query-hypervector norm
        so ``lr`` is dimension-independent.
    """

    def __init__(self, num_classes: int, dim: int, lr: float = 0.05):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.num_classes = num_classes
        self.dim = dim
        self.lr = lr
        self.class_matrix = np.zeros((num_classes, dim))

    # ------------------------------------------------------------------
    def initialize(self, hypervectors: np.ndarray,
                   labels: np.ndarray) -> None:
        """Bootstrap ``M`` with single-pass centroid bundling."""
        self.class_matrix = train_centroids(hypervectors, labels,
                                            self.num_classes)

    def similarities(self, hypervectors: np.ndarray) -> np.ndarray:
        return normalized_similarity(self.class_matrix, hypervectors)

    # ------------------------------------------------------------------
    def compute_update(self, hypervectors: np.ndarray, labels: np.ndarray,
                       **_unused) -> np.ndarray:
        """The MASS update matrix ``U = one_hot − δ(M, H)``, ``(n, k)``.

        Subclasses (knowledge distillation) override this hook; the
        ``M += λ Uᵀ H`` application is shared.
        """
        targets = one_hot(labels, self.num_classes)
        return targets - self.similarities(hypervectors)

    def step(self, hypervectors: np.ndarray, labels: np.ndarray,
             **update_kwargs) -> None:
        """Apply one update ``M ← M + λ Uᵀ H`` for a (mini)batch."""
        hypervectors = np.atleast_2d(hypervectors)
        update = self.compute_update(hypervectors, labels, **update_kwargs)
        scale = self.lr / np.sqrt(self.dim)
        self.class_matrix += scale * update.T @ hypervectors

    # ------------------------------------------------------------------
    def fit(self, hypervectors: np.ndarray, labels: np.ndarray,
            epochs: int = 20, batch_size: int = 64,
            rng: Optional[np.random.Generator] = None,
            initialize: bool = True,
            extra_per_sample: Optional[Dict[str, np.ndarray]] = None
            ) -> Dict[str, List[float]]:
        """Run retraining epochs; returns per-epoch training accuracy.

        ``extra_per_sample`` carries aligned side information (e.g. teacher
        logits for the distillation subclass); it is shuffled and batched
        together with the hypervectors.
        """
        hypervectors = np.atleast_2d(hypervectors)
        labels = np.asarray(labels)
        rng = rng or np.random.default_rng()
        if initialize:
            self.initialize(hypervectors, labels)
        extra_per_sample = extra_per_sample or {}

        history: Dict[str, List[float]] = {"train_acc": []}
        indices = np.arange(len(hypervectors))
        for _ in range(epochs):
            rng.shuffle(indices)
            for start in range(0, len(indices), batch_size):
                batch = indices[start:start + batch_size]
                kwargs = {key: value[batch]
                          for key, value in extra_per_sample.items()}
                self.step(hypervectors[batch], labels[batch], **kwargs)
            history["train_acc"].append(self.accuracy(hypervectors, labels))
        return history

    # ------------------------------------------------------------------
    def predict(self, hypervectors: np.ndarray) -> np.ndarray:
        return self.similarities(hypervectors).argmax(axis=1)

    def accuracy(self, hypervectors: np.ndarray,
                 labels: np.ndarray) -> float:
        return float((self.predict(hypervectors) ==
                      np.asarray(labels)).mean())
