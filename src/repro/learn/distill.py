"""Knowledge-distillation retraining — Algorithm 1 of the paper.

The distillation trainer extends MASS by replacing the pure one-hot
update direction with a weighted mixture of the ground truth and the
*teacher's softened predictions* (the uncut CNN's logits):

    soft_pred  = δ(M, H) / t                      (Alg. 1, line 4)
    soft_label = softmax(teacher_logits / t) / t  (Alg. 1, line 5)
    distilled  = soft_label − soft_pred           (line 6)
    U = (1−α)(one_hot − δ(M, H)) + α · distilled  (lines 7–8)
    M ← M + λ Uᵀ H                                (line 9)

``t`` (temperature) softens both sides; ``α`` mixes the distilled and
ground-truth updates.  With ``α = 0`` the rule degenerates to plain MASS,
which is exactly how Fig. 8/9's "no KD" rows are produced.

Interpretation note: as in Hinton et al.'s KD framework [11] — which the
paper adopts — the distilled term is rescaled by ``t²``: "since the
magnitudes of the gradients produced by the soft targets scale as 1/T²,
it is important to multiply them by T²" (Hinton et al., Sec. 2).
Without this correction the ``1/t`` factors of Algorithm 1's lines 4–5
make the distilled update two orders of magnitude smaller than the
ground-truth term at the paper's t ≈ 12–17, and α would have no
observable effect — contradicting Fig. 9's measured sensitivity to α.
The ``t²`` rescaling keeps the two terms commensurate at every
temperature, which is the regime Fig. 9's grid explores.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..data.loader import one_hot
from ..models.extractor import soften_logits
from .mass import MassTrainer

if TYPE_CHECKING:  # avoid an import cycle; the guard is duck-typed
    from ..reliability.guards import NumericsGuard

__all__ = ["DistillationTrainer"]


class DistillationTrainer(MassTrainer):
    """MASS retraining with teacher knowledge distillation (Algorithm 1)."""

    def __init__(self, num_classes: int, dim: int, lr: float = 0.05,
                 temperature: float = 14.0, alpha: float = 0.5,
                 guard: Optional["NumericsGuard"] = None):
        super().__init__(num_classes, dim, lr, guard=guard)
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.temperature = temperature
        self.alpha = alpha

    def compute_update(self, hypervectors: np.ndarray, labels: np.ndarray,
                       teacher_logits: Optional[np.ndarray] = None,
                       **_unused) -> np.ndarray:
        """Algorithm 1 lines 3–8 for a batch; returns ``U`` of shape (n, k)."""
        similarities = self.similarities(hypervectors)
        self._record_margins(similarities, labels)
        mass_update = one_hot(labels, self.num_classes) - similarities
        if self.alpha == 0.0 or teacher_logits is None:
            if self.alpha > 0.0:
                raise ValueError(
                    "alpha > 0 requires teacher_logits for distillation")
            return mass_update
        soft_pred = similarities / self.temperature
        soft_labels = soften_logits(teacher_logits,
                                    self.temperature) / self.temperature
        # Hinton's T^2 gradient correction keeps the distilled update
        # commensurate with the one-hot term (see module docstring).
        distilled = (soft_labels - soft_pred) * self.temperature ** 2
        return (1.0 - self.alpha) * mass_update + self.alpha * distilled

    def fit_distilled(self, hypervectors: np.ndarray, labels: np.ndarray,
                      teacher_logits: np.ndarray, epochs: int = 20,
                      batch_size: int = 64,
                      rng: Optional[np.random.Generator] = None,
                      initialize: bool = True):
        """Convenience wrapper threading teacher logits through ``fit``."""
        teacher_logits = np.asarray(teacher_logits, dtype=np.float64)
        if len(teacher_logits) != len(np.atleast_2d(hypervectors)):
            raise ValueError("teacher_logits must align with hypervectors")
        return self.fit(hypervectors, labels, epochs=epochs,
                        batch_size=batch_size, rng=rng, initialize=initialize,
                        extra_per_sample={"teacher_logits": teacher_logits})
