"""Single-pass centroid training — the original HD learning rule.

Early HD models (paper Sec. V-A) bundle every training hypervector of a
class into one *class hypervector* ``C_k = Σ_{i: y_i = k} H_i`` and infer
with ``argmax_k δ(C_k, H)``.  Retraining methods (MASS, distillation)
start from these centroids.
"""

from __future__ import annotations

import numpy as np

__all__ = ["train_centroids"]


def train_centroids(hypervectors: np.ndarray, labels: np.ndarray,
                    num_classes: int) -> np.ndarray:
    """Bundle per-class hypervectors into a ``(k, D)`` class matrix.

    Classes with no training samples get a zero hypervector (dissimilar to
    everything under dot similarity).
    """
    hypervectors = np.atleast_2d(np.asarray(hypervectors, dtype=np.float64))
    labels = np.asarray(labels)
    if len(hypervectors) != len(labels):
        raise ValueError("hypervectors and labels must align")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    class_matrix = np.zeros((num_classes, hypervectors.shape[1]))
    np.add.at(class_matrix, labels, hypervectors)
    return class_matrix
