"""OnlineHD-style adaptive single-pass training.

An alternative retraining rule from the HD lineage the paper builds on
(Imani et al.): each sample updates only two class hypervectors — the
correct one and the mispredicted one — scaled by how wrong the model was:

    if argmax δ = y:  no update (or a small reinforcement)
    else:             C_y      += λ (1 − δ_y) H
                      C_pred   -= λ (1 − δ_pred) H

Compared to MASS (which updates *every* class through the similarity
vector), the adaptive rule is cheaper per sample but uses less
information — exactly the trade the MASS paper [3] targets.  Provided as
an ablatable baseline for the retraining-rule design choice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from .mass import MassTrainer

if TYPE_CHECKING:  # avoid an import cycle; the guard is duck-typed
    from ..reliability.guards import NumericsGuard

__all__ = ["OnlineHDTrainer"]


class OnlineHDTrainer(MassTrainer):
    """Adaptive two-class update rule (OnlineHD).

    ``reinforce_correct`` additionally nudges the correct class
    hypervector toward every *correctly* classified sample, scaled by
    ``reinforce_rate × (1 − δ_y)`` — a small consolidation term that
    keeps confident classes confident without the full MASS dense
    update.  ``guard`` / ``max_update_norm`` ride through to
    :class:`MassTrainer` (the online serving path sets both).
    """

    def __init__(self, num_classes: int, dim: int, lr: float = 0.05,
                 reinforce_correct: bool = False,
                 reinforce_rate: float = 0.1,
                 guard: Optional["NumericsGuard"] = None,
                 max_update_norm: Optional[float] = None):
        super().__init__(num_classes, dim, lr, guard=guard,
                         max_update_norm=max_update_norm)
        if reinforce_rate < 0:
            raise ValueError("reinforce_rate must be >= 0")
        self.reinforce_correct = reinforce_correct
        self.reinforce_rate = float(reinforce_rate)

    def compute_update(self, hypervectors: np.ndarray, labels: np.ndarray,
                       **_unused) -> np.ndarray:
        """Sparse update matrix: at most two nonzero entries per row."""
        labels = np.asarray(labels)
        similarities = self.similarities(hypervectors)
        predictions = similarities.argmax(axis=1)
        update = np.zeros_like(similarities)
        rows = np.arange(len(labels))

        wrong = predictions != labels
        update[rows[wrong], labels[wrong]] = \
            1.0 - similarities[rows[wrong], labels[wrong]]
        update[rows[wrong], predictions[wrong]] = \
            -(1.0 - similarities[rows[wrong], predictions[wrong]])
        if self.reinforce_correct:
            right = ~wrong
            update[rows[right], labels[right]] = \
                self.reinforce_rate * \
                (1.0 - similarities[rows[right], labels[right]])
        return update
