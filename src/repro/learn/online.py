"""OnlineHD-style adaptive single-pass training.

An alternative retraining rule from the HD lineage the paper builds on
(Imani et al.): each sample updates only two class hypervectors — the
correct one and the mispredicted one — scaled by how wrong the model was:

    if argmax δ = y:  no update (or a small reinforcement)
    else:             C_y      += λ (1 − δ_y) H
                      C_pred   -= λ (1 − δ_pred) H

Compared to MASS (which updates *every* class through the similarity
vector), the adaptive rule is cheaper per sample but uses less
information — exactly the trade the MASS paper [3] targets.  Provided as
an ablatable baseline for the retraining-rule design choice.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .mass import MassTrainer

__all__ = ["OnlineHDTrainer"]


class OnlineHDTrainer(MassTrainer):
    """Adaptive two-class update rule (OnlineHD)."""

    def __init__(self, num_classes: int, dim: int, lr: float = 0.05,
                 reinforce_correct: bool = False):
        super().__init__(num_classes, dim, lr)
        self.reinforce_correct = reinforce_correct

    def compute_update(self, hypervectors: np.ndarray, labels: np.ndarray,
                       **_unused) -> np.ndarray:
        """Sparse update matrix: at most two nonzero entries per row."""
        labels = np.asarray(labels)
        similarities = self.similarities(hypervectors)
        predictions = similarities.argmax(axis=1)
        update = np.zeros_like(similarities)
        rows = np.arange(len(labels))

        wrong = predictions != labels
        update[rows[wrong], labels[wrong]] = \
            1.0 - similarities[rows[wrong], labels[wrong]]
        update[rows[wrong], predictions[wrong]] = \
            -(1.0 - similarities[rows[wrong], predictions[wrong]])
        if self.reinforce_correct:
            right = ~wrong
            update[rows[right], labels[right]] = \
                0.1 * (1.0 - similarities[rows[right], labels[right]])
        return update
