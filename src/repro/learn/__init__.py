"""The paper's learning contribution: MASS, distillation, manifold, NSHD.

Training rules (:mod:`repro.learn.mass`, :mod:`repro.learn.distill`), the
manifold feature compressor (:mod:`repro.learn.manifold`) and the three
end-to-end systems compared in the evaluation
(:mod:`repro.learn.pipeline`).
"""

from .callbacks import (CheckpointCallback, EarlyStopping, TelemetryCallback,
                        TrainerCallback)
from .centroid import train_centroids
from .distill import DistillationTrainer
from .manifold import ManifoldLearner
from .mass import MassTrainer, normalized_similarity
from .online import OnlineHDTrainer
from .pipeline import NSHD, BaselineHD, FeatureScaler, VanillaHD

__all__ = [
    "train_centroids",
    "MassTrainer", "normalized_similarity", "OnlineHDTrainer",
    "DistillationTrainer",
    "ManifoldLearner",
    "NSHD", "BaselineHD", "VanillaHD", "FeatureScaler",
    "TrainerCallback", "TelemetryCallback", "CheckpointCallback",
    "EarlyStopping",
]
