"""End-to-end pipelines: NSHD and the paper's comparison systems.

* :class:`NSHD` — the paper's contribution: truncated-CNN feature
  extraction → manifold learner → binary random projection → class
  hypervectors trained with knowledge-distillation MASS (Algorithm 1),
  with the manifold FC co-trained from decoded HD errors.
* :class:`BaselineHD` — prior work [9]: the same truncated extractor but
  *no manifold layer and no distillation*; the full F features are
  random-projected and the class hypervectors are trained with plain MASS.
* :class:`VanillaHD` — standalone HD learning on raw pixels with the
  state-of-the-art nonlinear encoding [6] (the ~40%/~20% CIFAR baseline
  from the paper's introduction).

All three expose the same ``fit`` / ``predict`` / ``accuracy`` API over
NCHW image arrays so the benchmarks can swap them freely.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..hd.encoders import NonlinearEncoder, RandomProjectionEncoder
from ..models.base import IndexedCNN
from ..models.extractor import FeatureExtractor, TeacherModel
from ..utils.rng import derive_rng, fresh_rng
from .distill import DistillationTrainer
from .manifold import ManifoldLearner
from .mass import MassTrainer

__all__ = ["FeatureScaler", "NSHD", "BaselineHD", "VanillaHD"]


class FeatureScaler:
    """Standardize features with training-set statistics.

    CNN (ReLU) features are non-negative and heavily skewed; centering
    them is what makes the signs of the random projection informative.
    """

    def __init__(self):
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "FeatureScaler":
        self.mean = features.mean(axis=0)
        std = features.std(axis=0)
        self.std = np.where(std < 1e-8, 1.0, std)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("FeatureScaler used before fit()")
        return (features - self.mean) / self.std


class _HDPipeline:
    """Shared evaluation API for the three systems."""

    trainer: MassTrainer

    def encode(self, images: np.ndarray) -> np.ndarray:
        """Query hypervectors for a batch of NCHW images."""
        raise NotImplementedError

    def predict(self, images: np.ndarray) -> np.ndarray:
        return self.trainer.predict(self.encode(images))

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(images) == np.asarray(labels)).mean())


class NSHD(_HDPipeline):
    """The full neuro-symbolic HD model of the paper.

    Parameters
    ----------
    model:
        A *pretrained* :class:`IndexedCNN`; used frozen both as the
        truncated feature extractor and as the uncut distillation teacher.
    layer_index:
        Cut point in the model's layer indexing (paper Sec. IV-A).
    dim:
        Hypervector dimensionality D (paper default 3,000).
    reduced_features:
        F̂, the manifold learner's output size (paper default 100).
    temperature, alpha:
        Algorithm 1's distillation hyperparameters (t, α).  The paper
        tunes both per model via grid search (Fig. 9) and lands at
        α ≈ 0.5–0.7 with its ImageNet-grade teachers; the default here is
        the tuned value for this reproduction's CPU-scale teachers, whose
        soft labels carry less reliable knowledge (see EXPERIMENTS.md).
    use_manifold / use_distillation:
        Ablation switches; disabling both degenerates to BaselineHD's
        training on this extractor.
    """

    def __init__(self, model: IndexedCNN, layer_index: int, dim: int = 3000,
                 reduced_features: int = 100, temperature: float = 14.0,
                 alpha: float = 0.3, hd_lr: float = 0.05,
                 manifold_lr: float = 1e-3, use_manifold: bool = True,
                 use_distillation: bool = True, seed: int = 0):
        root = fresh_rng((seed, "nshd"))
        self.extractor = FeatureExtractor(model, layer_index)
        self.teacher = TeacherModel(model)
        self.num_classes = model.num_classes
        self.dim = dim
        self.use_manifold = use_manifold
        self.use_distillation = use_distillation
        self.scaler = FeatureScaler()
        self._train_rng = derive_rng(root, "train")

        if use_manifold:
            self.manifold: Optional[ManifoldLearner] = ManifoldLearner(
                self.extractor.feature_shape, out_features=reduced_features,
                lr=manifold_lr, rng=derive_rng(root, "manifold"))
            encoder_inputs = reduced_features
        else:
            self.manifold = None
            encoder_inputs = self.extractor.num_features
        self.encoder = RandomProjectionEncoder(
            encoder_inputs, dim, derive_rng(root, "projection"))

        if use_distillation:
            self.trainer: MassTrainer = DistillationTrainer(
                self.num_classes, dim, lr=hd_lr, temperature=temperature,
                alpha=alpha)
        else:
            self.trainer = MassTrainer(self.num_classes, dim, lr=hd_lr)

    # ------------------------------------------------------------------
    def _reduced(self, features: np.ndarray) -> np.ndarray:
        if self.manifold is not None:
            return self.manifold.transform(features)
        return features

    def encode_features(self, features_scaled: np.ndarray) -> np.ndarray:
        return self.encoder.encode(self._reduced(features_scaled))

    def encode(self, images: np.ndarray) -> np.ndarray:
        features = self.scaler.transform(self.extractor.extract(images))
        return self.encode_features(features)

    def predict_features(self, raw_features: np.ndarray) -> np.ndarray:
        """Predict from precomputed extractor features."""
        return self.trainer.predict(
            self.encode_features(self.scaler.transform(raw_features)))

    def accuracy_features(self, raw_features: np.ndarray,
                          labels: np.ndarray) -> float:
        return float((self.predict_features(raw_features) ==
                      np.asarray(labels)).mean())

    # ------------------------------------------------------------------
    def fit(self, images: np.ndarray, labels: np.ndarray, epochs: int = 20,
            batch_size: int = 64, verbose: bool = False
            ) -> Dict[str, List[float]]:
        """Train class hypervectors (and the manifold FC) jointly.

        The frozen CNN runs exactly once per image: features and teacher
        logits are cached up front, which is the efficiency argument of
        Sec. VI-A (no CNN backpropagation anywhere in NSHD training).
        """
        raw_features = self.extractor.extract(images)
        teacher_logits = (self.teacher.logits(images)
                          if self.use_distillation else None)
        return self.fit_features(raw_features, labels, teacher_logits,
                                 epochs=epochs, batch_size=batch_size,
                                 verbose=verbose)

    def fit_features(self, raw_features: np.ndarray, labels: np.ndarray,
                     teacher_logits: Optional[np.ndarray] = None,
                     epochs: int = 20, batch_size: int = 64,
                     initialize: bool = True,
                     verbose: bool = False) -> Dict[str, List[float]]:
        """Like :meth:`fit` but on precomputed extractor features.

        Lets callers (benchmarks, multi-system comparisons) run the frozen
        CNN once and share the features across NSHD variants.  Pass
        ``initialize=False`` to continue training an already-initialized
        model instead of re-bootstrapping the manifold and centroids.
        """
        labels = np.asarray(labels)
        if self.use_distillation and teacher_logits is None:
            raise ValueError("distillation requires teacher_logits")
        features = self.scaler.fit(raw_features).transform(raw_features)

        # Warm-start the manifold FC as an information-preserving (PCA)
        # projection of the pooled training features (Sec. IV-C), then
        # bootstrap M from centroids of the resulting encoding.
        if initialize:
            if self.manifold is not None:
                self.manifold.init_pca(features)
            self.trainer.initialize(self.encode_features(features), labels)

        history: Dict[str, List[float]] = {"train_acc": [],
                                           "manifold_loss": []}
        indices = np.arange(len(features))
        for _ in range(epochs):
            self._train_rng.shuffle(indices)
            epoch_losses = []
            for start in range(0, len(indices), batch_size):
                batch = indices[start:start + batch_size]
                feats_b = features[batch]
                reduced = self._reduced(feats_b)
                encoded = self.encoder.encode(reduced)
                kwargs = {}
                if self.use_distillation:
                    kwargs["teacher_logits"] = teacher_logits[batch]
                # Algorithm 1: update M from this batch ...
                self.trainer.step(encoded, labels[batch], **kwargs)
                # ... then propagate the resulting error direction through
                # the HD encoder into the manifold FC (Sec. V-C).
                if self.manifold is not None:
                    update = self.trainer.compute_update(
                        encoded, labels[batch], **kwargs)
                    loss = self.manifold.train_step(
                        feats_b, update, self.encoder,
                        self.trainer.class_matrix)
                    epoch_losses.append(loss)
            encoded_all = self.encode_features(features)
            history["train_acc"].append(
                self.trainer.accuracy(encoded_all, labels))
            history["manifold_loss"].append(
                float(np.mean(epoch_losses)) if epoch_losses else 0.0)
            if verbose:
                print(f"NSHD epoch {len(history['train_acc'])}: "
                      f"train_acc={history['train_acc'][-1]:.3f}")
        return history


class BaselineHD(_HDPipeline):
    """Prior-work pipeline [9]: extractor + full-width projection + MASS."""

    def __init__(self, model: IndexedCNN, layer_index: int, dim: int = 3000,
                 hd_lr: float = 0.05, seed: int = 0):
        root = fresh_rng((seed, "baselinehd"))
        self.extractor = FeatureExtractor(model, layer_index)
        self.num_classes = model.num_classes
        self.dim = dim
        self.scaler = FeatureScaler()
        self.encoder = RandomProjectionEncoder(
            self.extractor.num_features, dim, derive_rng(root, "projection"))
        self.trainer = MassTrainer(self.num_classes, dim, lr=hd_lr)
        self._train_rng = derive_rng(root, "train")

    def encode(self, images: np.ndarray) -> np.ndarray:
        features = self.scaler.transform(self.extractor.extract(images))
        return self.encoder.encode(features)

    def predict_features(self, raw_features: np.ndarray) -> np.ndarray:
        """Predict from precomputed extractor features."""
        return self.trainer.predict(
            self.encoder.encode(self.scaler.transform(raw_features)))

    def accuracy_features(self, raw_features: np.ndarray,
                          labels: np.ndarray) -> float:
        return float((self.predict_features(raw_features) ==
                      np.asarray(labels)).mean())

    def fit(self, images: np.ndarray, labels: np.ndarray, epochs: int = 20,
            batch_size: int = 64) -> Dict[str, List[float]]:
        return self.fit_features(self.extractor.extract(images), labels,
                                 epochs=epochs, batch_size=batch_size)

    def fit_features(self, raw_features: np.ndarray, labels: np.ndarray,
                     epochs: int = 20, batch_size: int = 64
                     ) -> Dict[str, List[float]]:
        """Like :meth:`fit` but on precomputed extractor features."""
        encoded = self.encoder.encode(
            self.scaler.fit(raw_features).transform(raw_features))
        return self.trainer.fit(encoded, np.asarray(labels), epochs=epochs,
                                batch_size=batch_size, rng=self._train_rng)


class VanillaHD(_HDPipeline):
    """Standalone HD learning on raw pixels (nonlinear encoding [6])."""

    def __init__(self, num_classes: int, image_size: int = 32,
                 dim: int = 3000, hd_lr: float = 0.05,
                 bandwidth: float = 0.01, seed: int = 0):
        root = fresh_rng((seed, "vanillahd"))
        self.num_classes = num_classes
        self.dim = dim
        self.num_features = 3 * image_size * image_size
        self.scaler = FeatureScaler()
        self.encoder = NonlinearEncoder(self.num_features, dim,
                                        derive_rng(root, "basis"),
                                        bandwidth=bandwidth)
        self.trainer = MassTrainer(num_classes, dim, lr=hd_lr)
        self._train_rng = derive_rng(root, "train")

    def encode(self, images: np.ndarray) -> np.ndarray:
        flat = np.asarray(images).reshape(len(images), -1)
        return self.encoder.encode(self.scaler.transform(flat))

    def fit(self, images: np.ndarray, labels: np.ndarray, epochs: int = 20,
            batch_size: int = 64) -> Dict[str, List[float]]:
        flat = np.asarray(images).reshape(len(images), -1)
        features = self.scaler.fit(flat).transform(flat)
        encoded = self.encoder.encode(features)
        return self.trainer.fit(encoded, np.asarray(labels), epochs=epochs,
                                batch_size=batch_size, rng=self._train_rng)
