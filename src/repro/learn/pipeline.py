"""End-to-end pipelines: NSHD and the paper's comparison systems.

* :class:`NSHD` — the paper's contribution: truncated-CNN feature
  extraction → manifold learner → binary random projection → class
  hypervectors trained with knowledge-distillation MASS (Algorithm 1),
  with the manifold FC co-trained from decoded HD errors.
* :class:`BaselineHD` — prior work [9]: the same truncated extractor but
  *no manifold layer and no distillation*; the full F features are
  random-projected and the class hypervectors are trained with plain MASS.
* :class:`VanillaHD` — standalone HD learning on raw pixels with the
  state-of-the-art nonlinear encoding [6] (the ~40%/~20% CIFAR baseline
  from the paper's introduction).

All three expose the same ``fit`` / ``predict`` / ``accuracy`` API over
NCHW image arrays so the benchmarks can swap them freely.

Since the stage-graph refactor, each pipeline **builds a live
:class:`repro.pipeline.StageGraph` in its constructor** — the stages
share weights with the training objects (scaler, manifold learner, MASS
trainer), so the graph always reflects the current training state.  All
inference (``encode`` / ``predict`` / ``predict_features``) executes the
graph; the training loops run individual stages through the graph runner
(which owns the ``stage.*`` telemetry spans); and checkpoints persist
``graph.topology()`` in a manifest section so any consumer can rebuild
the execution plan without knowing the pipeline class.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..hd.encoders import NonlinearEncoder, RandomProjectionEncoder
from ..models.base import IndexedCNN
from ..models.extractor import FeatureExtractor, TeacherModel
from ..nn.serialize import (GRAPH_SECTION, CheckpointError,
                            load_state_with_manifest, save_state)
from ..pipeline import (ClassifyStage, EncodeStage, ExtractStage,
                        FeatureScaler, FlattenStage, ManifoldReduceStage,
                        ScaleStage, StageGraph)
from ..telemetry import clock, get_registry, span
from ..utils.rng import derive_rng, fresh_rng, get_rng_state, set_rng_state
from .callbacks import CheckpointCallback
from .distill import DistillationTrainer
from .manifold import ManifoldLearner
from .mass import MassTrainer

if TYPE_CHECKING:  # avoid an import cycle; the guard is duck-typed
    from ..reliability.guards import NumericsGuard

__all__ = ["FeatureScaler", "NSHD", "BaselineHD", "VanillaHD",
           "CHECKPOINT_VERSION"]

#: Version tag written into pipeline checkpoint manifests.
CHECKPOINT_VERSION = 1


class _HDPipeline:
    """Shared evaluation + checkpoint API for the three systems.

    Subclasses build :attr:`graph` (a live :class:`StageGraph` ending in
    a ``classify`` stage) in their constructors; every inference path
    below executes that graph, so the stage math exists exactly once.
    """

    trainer: MassTrainer
    scaler: FeatureScaler
    graph: StageGraph
    dim: int
    num_classes: int
    _train_rng: np.random.Generator

    #: Optional :class:`repro.pipeline.StageCache` shared across eval /
    #: re-fit calls — outputs of frozen upstream stages (extract,
    #: encode) are memoized under state+input digests, so repeated
    #: A/B-eval sweeps skip the heavy GEMMs.  ``None`` disables.
    stage_cache = None

    def set_stage_cache(self, cache) -> None:
        """Attach (or clear, with ``None``) a shared stage cache."""
        self.stage_cache = cache

    def compiled(self, passes: str = "all", executors=None) -> StageGraph:
        """Frozen, compiled snapshot of the live graph.

        Freezes the current training state via ``topology()`` /
        ``state_arrays()`` (passes must not run on live graphs — they
        fold the weights they see), then applies the compiler; see
        :func:`repro.pipeline.compile_graph`.
        """
        from ..pipeline import compile_graph
        frozen = StageGraph.from_topology(self.graph.topology(),
                                          self.graph.state_arrays())
        return compile_graph(frozen, passes=passes,
                             executors=executors).graph

    def encode(self, images: np.ndarray) -> np.ndarray:
        """Query hypervectors for a batch of NCHW images."""
        return self.graph.run(images, stop="classify",
                              cache=self.stage_cache)

    def predict(self, images: np.ndarray) -> np.ndarray:
        encoded = self.encode(images)
        return np.asarray(self.graph.call("classify", encoded))

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(images) == np.asarray(labels)).mean())

    # ------------------------------------------------------------------
    # Checkpoint/resume.  Checkpoints are atomic (temp file + rename) and
    # CRC-verified (see repro.nn.serialize); they carry every mutable
    # piece of training state — class hypervectors, scaler statistics,
    # manifold FC + Adam moments when present, the shuffle RNG state, and
    # the epoch counter — so a killed run resumes *bit-exactly*.  The
    # graph topology rides along in a ``"graph"`` manifest section
    # (absent from pre-refactor checkpoints, which still load).
    # ------------------------------------------------------------------
    def _checkpoint_arrays(self) -> Dict[str, np.ndarray]:
        arrays = {f"trainer.{name}": value
                  for name, value in self.trainer.state_dict().items()}
        if self.scaler.mean is not None:
            arrays["scaler.mean"] = np.asarray(self.scaler.mean)
            arrays["scaler.std"] = np.asarray(self.scaler.std)
        manifold = getattr(self, "manifold", None)
        if manifold is not None:
            arrays.update({f"manifold.{name}": value
                           for name, value in manifold.state_dict().items()})
        return arrays

    def _restore_arrays(self, state: Dict[str, np.ndarray]) -> None:
        trainer_state = {name[len("trainer."):]: value
                         for name, value in state.items()
                         if name.startswith("trainer.")}
        self.trainer.load_state_dict(trainer_state)
        if "scaler.mean" in state:
            self.scaler.mean = np.asarray(state["scaler.mean"],
                                          dtype=np.float64)
            self.scaler.std = np.asarray(state["scaler.std"],
                                         dtype=np.float64)
        manifold = getattr(self, "manifold", None)
        manifold_state = {name[len("manifold."):]: value
                          for name, value in state.items()
                          if name.startswith("manifold.")}
        if manifold is not None:
            if not manifold_state:
                raise CheckpointError(
                    f"{type(self).__name__} has a manifold learner but the "
                    "checkpoint carries no manifold state")
            manifold.load_state_dict(manifold_state)
        elif manifold_state:
            raise CheckpointError(
                f"checkpoint carries manifold state but this "
                f"{type(self).__name__} has no manifold learner")

    def save_checkpoint(self, path: str, epoch: int,
                        history: Optional[Dict[str, List[float]]] = None
                        ) -> None:
        """Atomically persist all mutable training state after ``epoch``
        completed epochs."""
        meta = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "pipeline": type(self).__name__,
            "epoch": int(epoch),
            "dim": int(self.dim),
            "num_classes": int(self.num_classes),
            "rng": get_rng_state(self._train_rng),
            "history": {key: [float(v) for v in values]
                        for key, values in (history or {}).items()},
        }
        save_state(self._checkpoint_arrays(), path, meta=meta,
                   sections={GRAPH_SECTION:
                             {"topology": self.graph.topology()}})

    def load_checkpoint(self, path: str
                        ) -> Tuple[int, Dict[str, List[float]]]:
        """Restore training state; returns ``(completed_epochs, history)``.

        Raises :class:`repro.nn.serialize.CheckpointError` on truncated or
        corrupted files, CRC mismatches, or checkpoints written by a
        different pipeline class / model shape.
        """
        state, manifest = load_state_with_manifest(path)
        if manifest is None:
            raise CheckpointError(
                f"checkpoint {path!r} has no manifest — not a pipeline "
                "checkpoint (or written by an incompatible version)")
        meta = manifest.get("meta", {})
        version = meta.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r} has pipeline-checkpoint version "
                f"{version!r}; this build supports {CHECKPOINT_VERSION}")
        written_by = meta.get("pipeline")
        if written_by != type(self).__name__:
            raise CheckpointError(
                f"checkpoint {path!r} was written by {written_by!r}, "
                f"cannot restore into {type(self).__name__}")
        if (meta.get("dim") != self.dim
                or meta.get("num_classes") != self.num_classes):
            raise CheckpointError(
                f"checkpoint {path!r} is for dim={meta.get('dim')}, "
                f"num_classes={meta.get('num_classes')}; this pipeline has "
                f"dim={self.dim}, num_classes={self.num_classes}")
        self._restore_arrays(state)
        set_rng_state(self._train_rng, meta["rng"])
        history = {key: list(values)
                   for key, values in meta.get("history", {}).items()}
        return int(meta["epoch"]), history

    def _maybe_resume(self, checkpoint_path: Optional[str], resume: bool
                      ) -> Tuple[int, Optional[Dict[str, List[float]]]]:
        """Resolve resume semantics shared by the three ``fit`` paths.

        Returns ``(start_epoch, saved_history)``; a missing checkpoint
        under ``resume=True`` silently starts fresh (first run of a
        to-be-resumed job), while a *corrupt* one raises so callers (or
        :class:`repro.reliability.ResilientPipeline`) can decide how to
        degrade.
        """
        if not resume:
            return 0, None
        if not checkpoint_path:
            raise ValueError("resume=True requires checkpoint_path")
        if not os.path.exists(checkpoint_path):
            return 0, None
        epoch, history = self.load_checkpoint(checkpoint_path)
        return epoch, history

    def _trainer_fit_checkpointed(
            self, encoded: np.ndarray, labels: np.ndarray, epochs: int,
            batch_size: int, start_epoch: int,
            saved_history: Optional[Dict[str, List[float]]],
            checkpoint_path: Optional[str], checkpoint_every: int,
            extra_per_sample: Optional[Dict[str, np.ndarray]] = None,
            callbacks: Optional[List] = None
    ) -> Dict[str, List[float]]:
        """Run ``trainer.fit`` with per-epoch atomic checkpoint writes.

        Checkpointing rides the :class:`repro.learn.callbacks
        .CheckpointCallback` hook (the ad-hoc ``epoch_callback`` closure
        this used to build is gone); the callback also merges the history
        restored from a previous checkpoint into every write so the
        persisted history stays complete across resumes.  Caller-supplied
        ``callbacks`` (telemetry, HD diagnostics, early stopping) run
        before the checkpoint callback each epoch.
        """
        callbacks = list(callbacks or [])
        checkpoint_cb = None
        if checkpoint_path:
            checkpoint_cb = CheckpointCallback(
                self, checkpoint_path, every=checkpoint_every,
                total_epochs=epochs, history_prefix=saved_history)
            callbacks.append(checkpoint_cb)
        history = self.trainer.fit(
            encoded, labels, epochs=epochs, batch_size=batch_size,
            rng=self._train_rng, initialize=(start_epoch == 0),
            extra_per_sample=extra_per_sample, start_epoch=start_epoch,
            callbacks=callbacks)
        if checkpoint_cb is not None:
            return checkpoint_cb.merged_history(history)
        prefix = {key: list(values)
                  for key, values in (saved_history or {}).items()}
        for key, values in history.items():
            prefix[key] = prefix.get(key, []) + list(values)
        return prefix


class NSHD(_HDPipeline):
    """The full neuro-symbolic HD model of the paper.

    Parameters
    ----------
    model:
        A *pretrained* :class:`IndexedCNN`; used frozen both as the
        truncated feature extractor and as the uncut distillation teacher.
    layer_index:
        Cut point in the model's layer indexing (paper Sec. IV-A).
    dim:
        Hypervector dimensionality D (paper default 3,000).
    reduced_features:
        F̂, the manifold learner's output size (paper default 100).
    temperature, alpha:
        Algorithm 1's distillation hyperparameters (t, α).  The paper
        tunes both per model via grid search (Fig. 9) and lands at
        α ≈ 0.5–0.7 with its ImageNet-grade teachers; the default here is
        the tuned value for this reproduction's CPU-scale teachers, whose
        soft labels carry less reliable knowledge (see EXPERIMENTS.md).
    use_manifold / use_distillation:
        Ablation switches; disabling both degenerates to BaselineHD's
        training on this extractor.
    """

    def __init__(self, model: IndexedCNN, layer_index: int, dim: int = 3000,
                 reduced_features: int = 100, temperature: float = 14.0,
                 alpha: float = 0.3, hd_lr: float = 0.05,
                 manifold_lr: float = 1e-3, use_manifold: bool = True,
                 use_distillation: bool = True, seed: int = 0,
                 guard: Optional["NumericsGuard"] = None):
        root = fresh_rng((seed, "nshd"))
        self.extractor = FeatureExtractor(model, layer_index)
        self.teacher = TeacherModel(model)
        self.num_classes = model.num_classes
        self.dim = dim
        self.use_manifold = use_manifold
        self.use_distillation = use_distillation
        self.scaler = FeatureScaler()
        self.guard = guard
        self._train_rng = derive_rng(root, "train")

        if use_manifold:
            self.manifold: Optional[ManifoldLearner] = ManifoldLearner(
                self.extractor.feature_shape, out_features=reduced_features,
                lr=manifold_lr, rng=derive_rng(root, "manifold"),
                guard=guard)
            encoder_inputs = reduced_features
        else:
            self.manifold = None
            encoder_inputs = self.extractor.num_features
        self.encoder = RandomProjectionEncoder(
            encoder_inputs, dim, derive_rng(root, "projection"))

        if use_distillation:
            self.trainer: MassTrainer = DistillationTrainer(
                self.num_classes, dim, lr=hd_lr, temperature=temperature,
                alpha=alpha, guard=guard)
        else:
            self.trainer = MassTrainer(self.num_classes, dim, lr=hd_lr,
                                       guard=guard)

        stages = [ExtractStage(self.extractor), ScaleStage(self.scaler)]
        if self.manifold is not None:
            stages.append(ManifoldReduceStage.from_learner(self.manifold))
        stages.append(EncodeStage(self.encoder))
        stages.append(ClassifyStage.from_trainer(self.trainer))
        self.graph = StageGraph(stages, name="nshd")

    # ------------------------------------------------------------------
    def _reduce_batch(self, features: np.ndarray) -> np.ndarray:
        """Instrumented manifold reduction for the training loop.

        With no manifold learner this is the identity — still wrapped in
        the historical ``stage.manifold`` span so ablation runs keep the
        same telemetry shape.
        """
        if self.manifold is not None:
            return self.graph.call("reduce", features)
        with span("stage.manifold",
                  nbytes=int(np.asarray(features).nbytes)):
            return features

    @property
    def _encode_start(self) -> str:
        return "reduce" if self.manifold is not None else "encode"

    def encode_features(self, features_scaled: np.ndarray) -> np.ndarray:
        return self.graph.run(features_scaled, start=self._encode_start,
                              stop="classify")

    def predict_features(self, raw_features: np.ndarray) -> np.ndarray:
        """Predict from precomputed extractor features."""
        encoded = self.graph.run(raw_features, start="scale",
                                 stop="classify", cache=self.stage_cache)
        return np.asarray(self.graph.call("classify", encoded))

    def accuracy_features(self, raw_features: np.ndarray,
                          labels: np.ndarray) -> float:
        return float((self.predict_features(raw_features) ==
                      np.asarray(labels)).mean())

    # ------------------------------------------------------------------
    def fit(self, images: np.ndarray, labels: np.ndarray, epochs: int = 20,
            batch_size: int = 64, verbose: bool = False,
            callbacks: Optional[List] = None) -> Dict[str, List[float]]:
        """Train class hypervectors (and the manifold FC) jointly.

        The frozen CNN runs exactly once per image: features and teacher
        logits are cached up front, which is the efficiency argument of
        Sec. VI-A (no CNN backpropagation anywhere in NSHD training).
        """
        raw_features = self.graph.call("extract", images,
                                       cache=self.stage_cache)
        teacher_logits = (self.teacher.logits(images)
                          if self.use_distillation else None)
        return self.fit_features(raw_features, labels, teacher_logits,
                                 epochs=epochs, batch_size=batch_size,
                                 verbose=verbose, callbacks=callbacks)

    def fit_features(self, raw_features: np.ndarray, labels: np.ndarray,
                     teacher_logits: Optional[np.ndarray] = None,
                     epochs: int = 20, batch_size: int = 64,
                     initialize: bool = True,
                     verbose: bool = False,
                     checkpoint_path: Optional[str] = None,
                     checkpoint_every: int = 1,
                     resume: bool = False,
                     callbacks: Optional[List] = None
                     ) -> Dict[str, List[float]]:
        """Like :meth:`fit` but on precomputed extractor features.

        Lets callers (benchmarks, multi-system comparisons) run the frozen
        CNN once and share the features across NSHD variants.  Pass
        ``initialize=False`` to continue training an already-initialized
        model instead of re-bootstrapping the manifold and centroids.

        Checkpoint/resume: with ``checkpoint_path`` set, all mutable state
        (class hypervectors, manifold FC + Adam moments, scaler stats,
        shuffle RNG, epoch counter) is written atomically every
        ``checkpoint_every`` epochs.  With ``resume=True`` an existing
        checkpoint is restored first and training continues from the next
        epoch — a run killed mid-way and resumed this way produces the
        *bit-identical* final model of an uninterrupted run.

        ``callbacks`` follow the :class:`repro.learn.callbacks
        .TrainerCallback` protocol (``on_fit_start`` receives the inner
        HD trainer so e.g. :class:`repro.telemetry.DiagnosticsCallback`
        can watch ``class_matrix``); ``should_stop()`` ends training
        early, mirroring :meth:`MassTrainer.fit`.
        """
        labels = np.asarray(labels)
        if self.use_distillation and teacher_logits is None:
            raise ValueError("distillation requires teacher_logits")
        callbacks = list(callbacks or [])

        start_epoch, saved_history = self._maybe_resume(checkpoint_path,
                                                        resume)
        if start_epoch > 0:
            # Scaler statistics (and everything else) came from the
            # checkpoint; do not re-fit or re-initialize.
            features = self.scaler.transform(raw_features)
            initialize = False
        else:
            features = self.scaler.fit_transform(raw_features)

        # Warm-start the manifold FC as an information-preserving (PCA)
        # projection of the pooled training features (Sec. IV-C), then
        # bootstrap M from centroids of the resulting encoding.
        if initialize:
            if self.manifold is not None:
                self.manifold.init_pca(features)
            self.trainer.initialize(self.encode_features(features), labels)

        history: Dict[str, List[float]] = {
            "train_acc": list((saved_history or {}).get("train_acc", [])),
            "manifold_loss": list((saved_history or {}).get("manifold_loss",
                                                            [])),
            "epoch_time": list((saved_history or {}).get("epoch_time", [])),
        }
        registry = get_registry()
        for callback in callbacks:
            callback.on_fit_start(self.trainer, epochs)
        for epoch in range(start_epoch, epochs):
            epoch_start = clock()
            # Fresh permutation per epoch: the ordering is a pure function
            # of the RNG state, which is what lets a restored checkpoint
            # replay the remaining epochs bit-exactly.
            indices = self._train_rng.permutation(len(features))
            epoch_losses = []
            for start in range(0, len(indices), batch_size):
                batch = indices[start:start + batch_size]
                feats_b = features[batch]
                reduced = self._reduce_batch(feats_b)
                encoded = self.graph.call("encode", reduced)
                kwargs = {}
                if self.use_distillation:
                    kwargs["teacher_logits"] = teacher_logits[batch]
                # Algorithm 1: update M from this batch ...
                applied = self.trainer.step(encoded, labels[batch], **kwargs)
                # ... then propagate the resulting error direction through
                # the HD encoder into the manifold FC (Sec. V-C).  A batch
                # vetoed by the numerics guard skips both halves.
                if applied and self.manifold is not None:
                    update = self.trainer.compute_update(
                        encoded, labels[batch], **kwargs)
                    loss = self.manifold.train_step(
                        feats_b, update, self.encoder,
                        self.trainer.class_matrix)
                    epoch_losses.append(loss)
            with span("pipeline.eval"):
                encoded_all = self.encode_features(features)
                train_acc = self.trainer.accuracy(encoded_all, labels)
            epoch_time = clock() - epoch_start
            history["train_acc"].append(train_acc)
            history["manifold_loss"].append(
                float(np.mean(epoch_losses)) if epoch_losses else 0.0)
            history["epoch_time"].append(epoch_time)
            registry.inc("train.epochs")
            registry.set_gauge("train.epoch", float(epoch))
            registry.set_gauge("train.train_acc", train_acc)
            registry.observe("train.epoch_time_s", epoch_time)
            metrics = {"epoch": epoch, "train_acc": train_acc,
                       "manifold_loss": history["manifold_loss"][-1],
                       "epoch_time_s": epoch_time, "history": history}
            for callback in callbacks:
                callback.on_epoch_end(epoch, metrics)
            if checkpoint_path and ((epoch + 1) % checkpoint_every == 0
                                    or epoch + 1 == epochs):
                self.save_checkpoint(checkpoint_path, epoch + 1, history)
            if verbose:
                print(f"NSHD epoch {len(history['train_acc'])}: "
                      f"train_acc={history['train_acc'][-1]:.3f}")
            if any(callback.should_stop() for callback in callbacks):
                break
        for callback in callbacks:
            callback.on_fit_end(history)
        return history


class BaselineHD(_HDPipeline):
    """Prior-work pipeline [9]: extractor + full-width projection + MASS."""

    def __init__(self, model: IndexedCNN, layer_index: int, dim: int = 3000,
                 hd_lr: float = 0.05, seed: int = 0,
                 guard: Optional["NumericsGuard"] = None):
        root = fresh_rng((seed, "baselinehd"))
        self.extractor = FeatureExtractor(model, layer_index)
        self.num_classes = model.num_classes
        self.dim = dim
        self.scaler = FeatureScaler()
        self.guard = guard
        self.encoder = RandomProjectionEncoder(
            self.extractor.num_features, dim, derive_rng(root, "projection"))
        self.trainer = MassTrainer(self.num_classes, dim, lr=hd_lr,
                                   guard=guard)
        self._train_rng = derive_rng(root, "train")
        self.graph = StageGraph([
            ExtractStage(self.extractor),
            ScaleStage(self.scaler),
            EncodeStage(self.encoder),
            ClassifyStage.from_trainer(self.trainer),
        ], name="baselinehd")

    def predict_features(self, raw_features: np.ndarray) -> np.ndarray:
        """Predict from precomputed extractor features."""
        encoded = self.graph.run(raw_features, start="scale",
                                 stop="classify", cache=self.stage_cache)
        return np.asarray(self.graph.call("classify", encoded))

    def accuracy_features(self, raw_features: np.ndarray,
                          labels: np.ndarray) -> float:
        return float((self.predict_features(raw_features) ==
                      np.asarray(labels)).mean())

    def fit(self, images: np.ndarray, labels: np.ndarray, epochs: int = 20,
            batch_size: int = 64, checkpoint_path: Optional[str] = None,
            checkpoint_every: int = 1, resume: bool = False,
            callbacks: Optional[List] = None) -> Dict[str, List[float]]:
        raw_features = self.graph.call("extract", images,
                                       cache=self.stage_cache)
        return self.fit_features(raw_features, labels,
                                 epochs=epochs, batch_size=batch_size,
                                 checkpoint_path=checkpoint_path,
                                 checkpoint_every=checkpoint_every,
                                 resume=resume, callbacks=callbacks)

    def fit_features(self, raw_features: np.ndarray, labels: np.ndarray,
                     epochs: int = 20, batch_size: int = 64,
                     checkpoint_path: Optional[str] = None,
                     checkpoint_every: int = 1, resume: bool = False,
                     callbacks: Optional[List] = None
                     ) -> Dict[str, List[float]]:
        """Like :meth:`fit` but on precomputed extractor features.

        Checkpoint/resume and callback semantics match
        :meth:`NSHD.fit_features`.
        """
        labels = np.asarray(labels)
        start_epoch, saved_history = self._maybe_resume(checkpoint_path,
                                                        resume)
        if start_epoch > 0:
            scaled = self.scaler.transform(raw_features)
        else:
            scaled = self.scaler.fit_transform(raw_features)
        encoded = self.graph.call("encode", scaled,
                                  cache=self.stage_cache)
        return self._trainer_fit_checkpointed(
            encoded, labels, epochs, batch_size, start_epoch, saved_history,
            checkpoint_path, checkpoint_every, callbacks=callbacks)


class VanillaHD(_HDPipeline):
    """Standalone HD learning on raw pixels (nonlinear encoding [6])."""

    def __init__(self, num_classes: int, image_size: int = 32,
                 dim: int = 3000, hd_lr: float = 0.05,
                 bandwidth: float = 0.01, seed: int = 0,
                 guard: Optional["NumericsGuard"] = None):
        root = fresh_rng((seed, "vanillahd"))
        self.num_classes = num_classes
        self.dim = dim
        self.num_features = 3 * image_size * image_size
        self.scaler = FeatureScaler()
        self.guard = guard
        self.encoder = NonlinearEncoder(self.num_features, dim,
                                        derive_rng(root, "basis"),
                                        bandwidth=bandwidth)
        self.trainer = MassTrainer(num_classes, dim, lr=hd_lr, guard=guard)
        self._train_rng = derive_rng(root, "train")
        self.graph = StageGraph([
            FlattenStage(),
            ScaleStage(self.scaler),
            EncodeStage(self.encoder),
            ClassifyStage.from_trainer(self.trainer),
        ], name="vanillahd")

    def fit(self, images: np.ndarray, labels: np.ndarray, epochs: int = 20,
            batch_size: int = 64, checkpoint_path: Optional[str] = None,
            checkpoint_every: int = 1, resume: bool = False,
            callbacks: Optional[List] = None) -> Dict[str, List[float]]:
        labels = np.asarray(labels)
        flat = np.asarray(images).reshape(len(images), -1)
        start_epoch, saved_history = self._maybe_resume(checkpoint_path,
                                                        resume)
        if start_epoch > 0:
            features = self.scaler.transform(flat)
        else:
            features = self.scaler.fit_transform(flat)
        encoded = self.graph.call("encode", features,
                                  cache=self.stage_cache)
        return self._trainer_fit_checkpointed(
            encoded, labels, epochs, batch_size, start_epoch, saved_history,
            checkpoint_path, checkpoint_every, callbacks=callbacks)
