"""The manifold learner: learning-driven feature compression (Sec. IV-C/V-C).

NSHD inserts a *manifold layer* between the CNN feature extractor and the
HD encoder: a max-pool (window 2) followed by a fully-connected regressor
``Ψ: R^F → R^F̂`` that shrinks the enormous convolutional feature count F
down to F̂ (100 in the paper) before the F̂×D random projection.

Training (Sec. V-C) backpropagates the class-hypervector errors *through
the HD encoder* into the FC layer:

* the class-wise error hypervectors are ``E = λ Uᵀ H`` (the same ``U`` as
  Algorithm 1);
* the non-differentiable ``sign`` in the encoder is bypassed with a
  straight-through estimator (BinaryNet-style);
* HD decoding — binding with the projection hypervectors ``P`` followed by
  a dot product — maps the error back to the manifold output space, which
  is algebraically the adjoint ``E @ Pᵀ``; from there ordinary
  backpropagation updates the FC weights.

The implementation realizes this by building the loss
``L = −⟨U, δ(M, Φ_P(Ψ(V)))⟩`` on the autograd tape with
:meth:`Tensor.sign_ste`; its gradient with respect to the FC output is
exactly the decoded error hypervector described in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from .. import nn
from ..hd.encoders import RandomProjectionEncoder
from ..nn import Tensor
from ..nn import functional as F
from ..telemetry import get_registry, span

if TYPE_CHECKING:  # avoid an import cycle; the guard is duck-typed
    from ..reliability.guards import NumericsGuard

__all__ = ["ManifoldLearner"]


class ManifoldLearner:
    """Max-pool + fully-connected feature compressor Ψ.

    Parameters
    ----------
    feature_shape:
        (C, H, W) of the extractor output at the chosen cut layer.
    out_features:
        F̂, the compressed feature count fed to the HD encoder.
    lr:
        Learning rate of the FC regressor's Adam optimizer.
    guard:
        Optional :class:`repro.reliability.NumericsGuard`; when set,
        losses and FC gradients are vetted before each optimizer step so
        a NaN batch can never corrupt the manifold weights.
    """

    def __init__(self, feature_shape: Tuple[int, int, int],
                 out_features: int = 100, lr: float = 1e-3,
                 rng: Optional[np.random.Generator] = None,
                 guard: Optional["NumericsGuard"] = None):
        if len(feature_shape) != 3:
            raise ValueError("feature_shape must be (C, H, W)")
        if out_features <= 0:
            raise ValueError("out_features must be positive")
        rng = rng or np.random.default_rng()
        self.feature_shape = tuple(int(s) for s in feature_shape)
        self.out_features = out_features
        channels, height, width = self.feature_shape
        self.pooling = height >= 2 and width >= 2
        if self.pooling:
            pooled = channels * (height // 2) * (width // 2)
        else:
            pooled = channels * height * width
        self.pooled_features = pooled
        self.in_features = channels * height * width
        self.guard = guard
        self.fc = nn.Linear(pooled, out_features, rng=rng)
        self.optimizer = nn.Adam(self.fc.parameters(), lr=lr)

    # ------------------------------------------------------------------
    def _pooled_tensor(self, features_flat: np.ndarray) -> Tensor:
        features_flat = np.atleast_2d(features_flat)
        if features_flat.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} features, got "
                f"{features_flat.shape[1]}")
        x = Tensor(features_flat.reshape(-1, *self.feature_shape))
        if self.pooling:
            x = F.max_pool2d(x, kernel=2)
        return x.flatten(1)

    def forward_tensor(self, features_flat: np.ndarray) -> Tensor:
        """Ψ(V) on the autograd tape (gradients flow into the FC layer)."""
        return self.fc(self._pooled_tensor(features_flat))

    def init_pca(self, features_flat: np.ndarray) -> None:
        """Warm-start the FC regressor with a PCA projection.

        The paper motivates the manifold layer as an "effective
        information-preserving projection" learned in the spirit of
        FitNets-style regression [19].  Starting the regressor at the
        top-F̂ principal components of the pooled training features gives
        it exactly that property from step one; the HD error-decoding
        updates (:meth:`train_step`) then specialize it to the
        classification objective.  Whitening (scaling each component to
        unit variance) keeps all F̂ outputs informative to the bipolar
        projection signs.
        """
        with nn.no_grad():
            pooled = self._pooled_tensor(features_flat).data
        mean = pooled.mean(axis=0)
        centered = pooled - mean
        # Economy SVD: components = right singular vectors.
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        count = min(self.out_features, vt.shape[0])
        scales = singular[:count] / np.sqrt(max(1, len(pooled) - 1))
        scales = np.where(scales < 1e-8, 1.0, scales)
        weight = np.zeros((self.out_features, self.pooled_features))
        weight[:count] = vt[:count] / scales[:, None]
        self.fc.weight.data = weight
        if self.fc.bias is not None:
            self.fc.bias.data = -weight @ mean

    def transform(self, features_flat: np.ndarray) -> np.ndarray:
        """Ψ(V) as plain numpy (inference path)."""
        with nn.no_grad():
            return self.forward_tensor(features_flat).data

    # ------------------------------------------------------------------
    def train_step(self, features_flat: np.ndarray, update: np.ndarray,
                   encoder: RandomProjectionEncoder,
                   class_matrix: np.ndarray) -> float:
        """One FC update from decoded class-hypervector errors.

        Parameters
        ----------
        features_flat:
            ``(n, F)`` raw extractor features for the batch.
        update:
            ``(n, k)`` update matrix U from Algorithm 1 (computed by the
            HD trainer for this batch, treated as a constant target).
        encoder:
            The Φ_P random-projection encoder that follows Ψ.
        class_matrix:
            Current class hypervectors M (constant for this step).

        Returns the scalar surrogate loss value.
        """
        if encoder.in_features != self.out_features:
            raise ValueError("encoder input size must match manifold output")
        update = np.atleast_2d(update)
        registry = get_registry()
        with span("stage.manifold",
                  nbytes=int(np.asarray(features_flat).nbytes)):
            reduced = self.forward_tensor(features_flat)
            raw = reduced @ Tensor(encoder.projection)
            encoded = raw.sign_ste()
            # δ scaled by 1/D: constant positive factor, irrelevant to the
            # direction of the gradient, keeps magnitudes O(1).
            sims = (encoded @ Tensor(class_matrix.T)) * (1.0 / encoder.dim)
            loss = -(Tensor(update) * sims).sum() * (1.0 / len(update))
            self.optimizer.zero_grad()
            loss.backward()
            gradients = [p.grad for p in self.fc.parameters()
                         if p.grad is not None]
            if self.guard is not None and not self.guard.ok(
                    "manifold.step", np.asarray(loss.item()), *gradients):
                # Veto: drop the poisoned gradients, leave the FC weights
                # and Adam state untouched, report a neutral loss.
                self.optimizer.zero_grad()
                registry.inc("manifold.vetoed_steps")
                return 0.0
            grad_norm = float(np.sqrt(sum(
                float((g * g).sum()) for g in gradients)))
            registry.observe("manifold.loss", float(loss.item()))
            registry.observe("manifold.grad_norm", grad_norm)
            self.optimizer.step()
            return float(loss.item())

    # ------------------------------------------------------------------
    def decode_error(self, update: np.ndarray, hypervectors: np.ndarray,
                     encoder: RandomProjectionEncoder,
                     lam: float = 1.0) -> np.ndarray:
        """Explicit HD decoding of the class-wise error hypervectors.

        ``E = λ Uᵀ H`` decoded back to the manifold output space via
        binding with P and the dot product (paper Sec. V-C).  Exposed for
        analysis/ablation; :meth:`train_step` realizes the same decoding
        implicitly through the autograd tape.
        """
        error_hvs = lam * np.atleast_2d(update).T @ np.atleast_2d(hypervectors)
        return encoder.decode(error_hvs)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Serializable learner state: FC weights *and* Adam moments.

        Including the optimizer slots (m, v, step) is what makes a resumed
        run bit-identical to an uninterrupted one — Adam's bias correction
        and effective step size depend on them.
        """
        state = {f"fc.{name}": value
                 for name, value in self.fc.state_dict().items()}
        state.update({f"optimizer.{name}": value
                      for name, value in self.optimizer.state_dict().items()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state written by :meth:`state_dict`."""
        fc_state = {name[len("fc."):]: value for name, value in state.items()
                    if name.startswith("fc.")}
        opt_state = {name[len("optimizer."):]: value
                     for name, value in state.items()
                     if name.startswith("optimizer.")}
        unknown = sorted(set(state) - {f"fc.{k}" for k in fc_state}
                         - {f"optimizer.{k}" for k in opt_state})
        if unknown:
            raise ValueError(
                f"ManifoldLearner state dict has unknown keys {unknown}")
        self.fc.load_state_dict(fc_state)
        self.optimizer.load_state_dict(opt_state)

    # ------------------------------------------------------------------
    def parameter_count(self) -> int:
        """FC learning parameters (the pooling has none)."""
        return self.fc.weight.size + (self.fc.bias.size
                                      if self.fc.bias is not None else 0)

    def macs_per_sample(self) -> int:
        """MACs for one Ψ forward: just the FC GEMM (pooling is compares)."""
        return self.pooled_features * self.out_features
