"""Training-time image augmentation (flip / shifted crop / noise)."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["random_horizontal_flip", "random_crop", "add_gaussian_noise",
           "augment_batch"]


def random_horizontal_flip(images: np.ndarray, rng: np.random.Generator,
                           prob: float = 0.5) -> np.ndarray:
    """Flip a random subset of an NCHW batch along the width axis."""
    images = images.copy()
    flips = rng.random(len(images)) < prob
    images[flips] = images[flips, :, :, ::-1]
    return images


def random_crop(images: np.ndarray, rng: np.random.Generator,
                padding: int = 2) -> np.ndarray:
    """Pad reflect then crop back at a random offset (CIFAR-style)."""
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding),
                             (padding, padding)), mode="reflect")
    out = np.empty_like(images)
    offsets_y = rng.integers(0, 2 * padding + 1, size=n)
    offsets_x = rng.integers(0, 2 * padding + 1, size=n)
    for i in range(n):
        out[i] = padded[i, :, offsets_y[i]:offsets_y[i] + h,
                        offsets_x[i]:offsets_x[i] + w]
    return out


def add_gaussian_noise(images: np.ndarray, rng: np.random.Generator,
                       std: float = 0.02) -> np.ndarray:
    """Additive Gaussian pixel noise."""
    return images + rng.normal(0.0, std, size=images.shape)


def augment_batch(images: np.ndarray,
                  rng: Optional[np.random.Generator] = None,
                  flip: bool = True, crop: bool = True,
                  noise_std: float = 0.0) -> np.ndarray:
    """Standard CIFAR-style augmentation pipeline for CNN training."""
    rng = rng or np.random.default_rng()
    out = images
    if flip:
        out = random_horizontal_flip(out, rng)
    if crop:
        out = random_crop(out, rng)
    if noise_std > 0:
        out = add_gaussian_noise(out, rng, noise_std)
    return out
