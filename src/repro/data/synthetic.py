"""Procedural CIFAR-style image benchmark.

The paper evaluates on CIFAR-10/100, which cannot be downloaded in this
offline environment.  ``SyntheticCIFAR`` is the documented substitution
(DESIGN.md §1): a class-conditioned generative model of 32×32×3 images
engineered to have the three properties the evaluation relies on:

1. **raw-pixel HD encoding performs far below CNN features** — class
   identity is carried by a *geometric layout* of shapes that appears at a
   random position, rotation and scale with randomized foreground/
   background colors and nuisance textures, so no fixed pixel statistic
   separates the classes;
2. **a small CNN can learn the classes** — the layout itself (shape kinds,
   relative arrangement, per-class hue bias) is a coherent local-feature
   concept of the kind convolutions excel at;
3. **difficulty scales with class count**, mirroring CIFAR-10 vs -100:
   more classes share the same pool of shape kinds, so prototypes crowd
   together.

Every sample is a deterministic function of ``(seed, class, index)`` so
experiments are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..utils.rng import derive_rng, fresh_rng

__all__ = ["ClassPrototype", "SyntheticCIFAR", "make_dataset"]

_SHAPE_KINDS = ("ellipse", "rectangle", "stripe", "ring", "cross")


@dataclass
class ClassPrototype:
    """Latent visual concept for one class: a shape layout in a canonical
    frame plus a weak hue bias.  Everything else (pose, scale, palette
    brightness, background, texture) is per-sample nuisance."""

    shape_kinds: Tuple[str, ...]    # per-shape geometry family
    shape_offsets: np.ndarray       # (S, 2) canonical offsets from center
    shape_sizes: np.ndarray         # (S, 2) half-extents in [0,1] units
    shape_angles: np.ndarray        # (S,) radians, canonical
    shape_order: np.ndarray         # (S,) brightness rank of each shape
    hue: float                      # class hue bias in [0, 1)


def _hue_to_rgb(hue: float, saturation: float, value: float) -> np.ndarray:
    """Minimal HSV→RGB conversion for palette synthesis."""
    h6 = (hue % 1.0) * 6.0
    sector = int(h6) % 6
    frac = h6 - int(h6)
    p = value * (1 - saturation)
    q = value * (1 - saturation * frac)
    t = value * (1 - saturation * (1 - frac))
    table = [(value, t, p), (q, value, p), (p, value, t),
             (p, q, value), (t, p, value), (value, p, q)]
    return np.array(table[sector])


class SyntheticCIFAR:
    """Generator for the synthetic CIFAR-like benchmark.

    Parameters
    ----------
    num_classes:
        10 for the CIFAR-10 stand-in, 100 for the CIFAR-100 stand-in.
    image_size:
        Spatial resolution (default 32, matching CIFAR).
    seed:
        Root seed; prototypes and all sample-level jitter derive from it.
    noise:
        Per-pixel Gaussian noise std.
    pose_jitter:
        Scales the per-sample global rotation/translation/scale nuisance
        (1.0 = default difficulty; 0.0 = canonical pose only).
    """

    def __init__(self, num_classes: int = 10, image_size: int = 32,
                 seed: int = 0, noise: float = 0.05,
                 shapes_per_class: int = 3, pose_jitter: float = 1.0):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if image_size < 8:
            raise ValueError("image_size must be at least 8")
        self.num_classes = num_classes
        self.image_size = image_size
        self.seed = seed
        self.noise = noise
        self.shapes_per_class = shapes_per_class
        self.pose_jitter = pose_jitter
        root = fresh_rng(seed)
        self.prototypes = [self._make_prototype(derive_rng(root, "proto", c))
                           for c in range(num_classes)]
        # Pixel coordinate grid centered at 0, shared across renders.
        axis = (np.arange(image_size) + 0.5) / image_size - 0.5
        self._grid_y, self._grid_x = np.meshgrid(axis, axis, indexing="ij")

    # ------------------------------------------------------------------
    def _make_prototype(self, rng: np.random.Generator) -> ClassPrototype:
        count = self.shapes_per_class
        kinds = tuple(rng.choice(_SHAPE_KINDS) for _ in range(count))
        offsets = rng.uniform(-0.22, 0.22, size=(count, 2))
        offsets[0] = 0.0  # anchor the first shape at the layout center
        return ClassPrototype(
            shape_kinds=kinds,
            shape_offsets=offsets,
            shape_sizes=rng.uniform(0.07, 0.2, size=(count, 2)),
            shape_angles=rng.uniform(0.0, np.pi, size=count),
            shape_order=rng.permutation(count),
            hue=rng.uniform(0.0, 1.0),
        )

    # ------------------------------------------------------------------
    def render(self, label: int, index: int) -> np.ndarray:
        """Render one sample of ``label`` with per-``index`` nuisance.

        Returns a CHW float64 image in [0, 1].
        """
        if not 0 <= label < self.num_classes:
            raise ValueError(f"label {label} out of range")
        proto = self.prototypes[label]
        rng = fresh_rng((self.seed, "sample", label, index))
        size = self.image_size
        jit = self.pose_jitter

        # --- nuisance: background color + random texture grating -------
        image = np.empty((3, size, size))
        background = rng.uniform(0.05, 0.95, size=3)
        image[:] = background[:, None, None]
        freq = rng.uniform(2.0, 9.0, size=2)
        phase = rng.uniform(0.0, 2 * np.pi)
        amplitude = rng.uniform(0.03, 0.12)
        grating = np.sin(2 * np.pi * (freq[0] * self._grid_y +
                                      freq[1] * self._grid_x) + phase)
        image += amplitude * grating[None, :, :] * \
            rng.uniform(0.3, 1.0, size=3)[:, None, None]

        # --- nuisance: global similarity transform of the layout -------
        theta = rng.uniform(-np.pi / 5, np.pi / 5) * jit
        scale = 1.0 + rng.uniform(-0.25, 0.3) * jit
        shift = rng.uniform(-0.16, 0.16, size=2) * jit
        cos_t, sin_t = np.cos(theta), np.sin(theta)
        flip = 1.0 if rng.random() < 0.5 else -1.0

        # --- class signal: palette anchored to the class hue -----------
        base_value = rng.uniform(0.35, 0.95)
        saturation = rng.uniform(0.55, 1.0)
        hue = (proto.hue + rng.normal(0, 0.03)) % 1.0

        for s in np.argsort(proto.shape_order):
            kind = proto.shape_kinds[s]
            offset = proto.shape_offsets[s] * scale
            center_y = cos_t * offset[0] - sin_t * offset[1] * flip + shift[0]
            center_x = sin_t * offset[0] + cos_t * offset[1] * flip + shift[1]
            half = proto.shape_sizes[s] * scale * \
                (1.0 + rng.normal(0, 0.08, size=2) * jit)
            half = np.maximum(half, 0.02)
            angle = proto.shape_angles[s] * flip + theta + \
                rng.normal(0, 0.08) * jit
            # Brightness rank is part of the concept; exact value is not.
            rank = proto.shape_order[s] / max(1, self.shapes_per_class - 1)
            value = np.clip(base_value * (0.45 + 0.7 * rank), 0.1, 1.0)
            color = np.clip(_hue_to_rgb(hue, saturation, value) +
                            rng.normal(0, 0.04, size=3), 0, 1)

            dy = self._grid_y - center_y
            dx = self._grid_x - center_x
            ry = np.cos(angle) * dy - np.sin(angle) * dx
            rx = np.sin(angle) * dy + np.cos(angle) * dx
            if kind == "ellipse":
                mask = (ry / half[0]) ** 2 + (rx / half[1]) ** 2 <= 1.0
            elif kind == "rectangle":
                mask = (np.abs(ry) <= half[0]) & (np.abs(rx) <= half[1])
            elif kind == "ring":
                radius2 = (ry / half[0]) ** 2 + (rx / half[1]) ** 2
                mask = (radius2 <= 1.0) & (radius2 >= 0.35)
            elif kind == "cross":
                mask = ((np.abs(ry) <= half[0] * 0.35) &
                        (np.abs(rx) <= half[1])) | \
                       ((np.abs(rx) <= half[1] * 0.35) &
                        (np.abs(ry) <= half[0]))
            else:  # stripe: bands clipped to the shape's bounding ellipse
                inside = (ry / half[0]) ** 2 + (rx / half[1]) ** 2 <= 1.3
                mask = inside & (np.sin(rx / max(half[1], 0.02) * 2.2 * np.pi)
                                 > 0.15)
            blend = 0.85
            image[:, mask] = (1 - blend) * image[:, mask] + \
                blend * color[:, None]

        image = image + rng.normal(0, self.noise, size=image.shape)
        return np.clip(image, 0.0, 1.0)

    # ------------------------------------------------------------------
    def generate(self, num_samples: int, split: str = "train"
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Generate a balanced dataset split.

        Train and test indices are disjoint by construction (test sample
        indices are offset by a large constant), so the two splits never
        share a rendered image.
        """
        if split not in ("train", "test"):
            raise ValueError("split must be 'train' or 'test'")
        offset = 0 if split == "train" else 10 ** 6
        labels = np.arange(num_samples) % self.num_classes
        shuffle_rng = fresh_rng((self.seed, split, "order"))
        shuffle_rng.shuffle(labels)
        per_class_counter = np.zeros(self.num_classes, dtype=int)
        images = np.empty((num_samples, 3, self.image_size, self.image_size))
        for i, label in enumerate(labels):
            images[i] = self.render(int(label),
                                    offset + per_class_counter[label])
            per_class_counter[label] += 1
        return images, labels.astype(np.int64)


def make_dataset(num_classes: int = 10, num_train: int = 1000,
                 num_test: int = 200, image_size: int = 32, seed: int = 0,
                 noise: float = 0.05, pose_jitter: float = 1.0):
    """Convenience wrapper returning ``(x_train, y_train, x_test, y_test)``."""
    dataset = SyntheticCIFAR(num_classes=num_classes, image_size=image_size,
                             seed=seed, noise=noise, pose_jitter=pose_jitter)
    x_train, y_train = dataset.generate(num_train, "train")
    x_test, y_test = dataset.generate(num_test, "test")
    return x_train, y_train, x_test, y_test
