"""Synthetic CIFAR-style dataset and loading utilities.

The procedural :class:`SyntheticCIFAR` benchmark stands in for
CIFAR-10/100 (see DESIGN.md §1 for the substitution rationale).
"""

from .augment import (add_gaussian_noise, augment_batch, random_crop,
                      random_horizontal_flip)
from .loader import iterate_batches, normalize_images, one_hot, train_val_split
from .synthetic import ClassPrototype, SyntheticCIFAR, make_dataset

__all__ = [
    "SyntheticCIFAR", "ClassPrototype", "make_dataset",
    "iterate_batches", "normalize_images", "train_val_split", "one_hot",
    "random_horizontal_flip", "random_crop", "add_gaussian_noise",
    "augment_batch",
]
