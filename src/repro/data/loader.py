"""Batch iteration and preprocessing utilities."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["iterate_batches", "normalize_images", "train_val_split",
           "one_hot"]


def normalize_images(images: np.ndarray,
                     mean: Optional[np.ndarray] = None,
                     std: Optional[np.ndarray] = None
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-channel standardization of NCHW images.

    When ``mean``/``std`` are omitted they are computed from ``images``
    (use the training-set statistics for the test set).
    """
    if mean is None:
        mean = images.mean(axis=(0, 2, 3))
    if std is None:
        std = images.std(axis=(0, 2, 3))
    std = np.where(std < 1e-8, 1.0, std)
    normalized = (images - mean.reshape(1, -1, 1, 1)) / std.reshape(1, -1, 1, 1)
    return normalized, mean, std


def iterate_batches(x: np.ndarray, y: np.ndarray, batch_size: int,
                    rng: Optional[np.random.Generator] = None,
                    shuffle: bool = True
                    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x_batch, y_batch)`` minibatches, optionally shuffled."""
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(len(x))
    if shuffle:
        (rng or np.random.default_rng()).shuffle(indices)
    for start in range(0, len(x), batch_size):
        batch = indices[start:start + batch_size]
        yield x[batch], y[batch]


def train_val_split(x: np.ndarray, y: np.ndarray, val_fraction: float,
                    rng: Optional[np.random.Generator] = None):
    """Shuffle and split into train/validation parts."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    indices = np.arange(len(x))
    (rng or np.random.default_rng()).shuffle(indices)
    cut = int(round(len(x) * (1.0 - val_fraction)))
    train_idx, val_idx = indices[:cut], indices[cut:]
    return x[train_idx], y[train_idx], x[val_idx], y[val_idx]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels to one-hot rows (float64)."""
    labels = np.asarray(labels)
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError("labels out of range for num_classes")
    return np.eye(num_classes)[labels]
