"""Batch iteration and preprocessing utilities."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["iterate_batches", "normalize_images", "train_val_split",
           "one_hot"]


def _check_nchw(images: np.ndarray, where: str) -> np.ndarray:
    """Validate an NCHW image batch; returns it as an ndarray.

    Rejecting wrong ranks/dtypes here turns silent broadcasting bugs
    (e.g. a CHW single image, or an ``(n, F)`` feature matrix passed where
    images are expected) into actionable errors.
    """
    images = np.asarray(images)
    if images.ndim != 4:
        raise ValueError(
            f"{where}: images must be a 4-D NCHW array, got "
            f"{images.ndim}-D with shape {images.shape}")
    if images.dtype.kind not in "fiu":
        raise ValueError(
            f"{where}: images must have a numeric dtype, got "
            f"{images.dtype}")
    return images


def _check_labels(labels: np.ndarray, where: str) -> np.ndarray:
    """Validate a 1-D label vector; returns it as an ndarray."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(
            f"{where}: labels must be a 1-D array, got "
            f"{labels.ndim}-D with shape {labels.shape}")
    if labels.dtype.kind not in "fiu":
        raise ValueError(
            f"{where}: labels must have a numeric dtype, got "
            f"{labels.dtype}")
    return labels


def normalize_images(images: np.ndarray,
                     mean: Optional[np.ndarray] = None,
                     std: Optional[np.ndarray] = None
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-channel standardization of NCHW images.

    When ``mean``/``std`` are omitted they are computed from ``images``
    (use the training-set statistics for the test set).  Non-4D inputs
    are rejected with a descriptive ``ValueError`` — a CHW single image
    or a flattened feature matrix would otherwise standardize along the
    wrong axes without any error.
    """
    images = _check_nchw(images, "normalize_images")
    channels = images.shape[1]
    if mean is None:
        mean = images.mean(axis=(0, 2, 3))
    if std is None:
        std = images.std(axis=(0, 2, 3))
    mean = np.asarray(mean, dtype=np.float64)
    std = np.asarray(std, dtype=np.float64)
    if mean.shape != (channels,) or std.shape != (channels,):
        raise ValueError(
            f"normalize_images: mean/std must have shape ({channels},) to "
            f"match the image channels, got {mean.shape} and {std.shape}")
    std = np.where(std < 1e-8, 1.0, std)
    normalized = (images - mean.reshape(1, -1, 1, 1)) / std.reshape(1, -1, 1, 1)
    return normalized, mean, std


def iterate_batches(x: np.ndarray, y: np.ndarray, batch_size: int,
                    rng: Optional[np.random.Generator] = None,
                    shuffle: bool = True
                    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x_batch, y_batch)`` minibatches, optionally shuffled.

    ``x`` may be NCHW images or an ``(n, F)`` feature matrix; a 3-D input
    (a single CHW image with the batch axis missing) and non-1-D labels
    are rejected with descriptive errors rather than silently broadcast.
    """
    x = np.asarray(x)
    y = _check_labels(y, "iterate_batches")
    if x.ndim == 0:
        raise ValueError("iterate_batches: x must be a batched array, "
                         "got a scalar")
    if x.ndim == 3:
        raise ValueError(
            f"iterate_batches: x has shape {x.shape} — a 3-D array is "
            "almost certainly a single CHW image missing its batch axis; "
            "pass a 4-D NCHW batch (use images[None] for one image)")
    if x.ndim == 4:
        _check_nchw(x, "iterate_batches")
    if len(x) != len(y):
        raise ValueError(
            f"x and y must have the same length, got {len(x)} and {len(y)}")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(len(x))
    if shuffle:
        (rng or np.random.default_rng()).shuffle(indices)
    for start in range(0, len(x), batch_size):
        batch = indices[start:start + batch_size]
        yield x[batch], y[batch]


def train_val_split(x: np.ndarray, y: np.ndarray, val_fraction: float,
                    rng: Optional[np.random.Generator] = None):
    """Shuffle and split into train/validation parts."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    indices = np.arange(len(x))
    (rng or np.random.default_rng()).shuffle(indices)
    cut = int(round(len(x) * (1.0 - val_fraction)))
    train_idx, val_idx = indices[:cut], indices[cut:]
    return x[train_idx], y[train_idx], x[val_idx], y[val_idx]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels to one-hot rows (float64)."""
    labels = np.asarray(labels)
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError("labels out of range for num_classes")
    return np.eye(num_classes)[labels]
