"""Bit-packed binary hypervector kernels and a memory-traffic ledger.

The paper's GPGPU implementation (Sec. VI-A) exploits the binary nature of
hypervectors: bipolar vectors are stored one bit per component in CUDA
constant memory and similarity reduces to popcount arithmetic with no
multiplications.  This module is the CPU realization of the same idea —
bipolar {-1,+1} vectors are packed into ``uint64`` words and dot products
are computed as ``D - 2·popcount(xor)`` — plus a ledger that reproduces
the paper's memory-footprint accounting (binary constant-memory storage vs
float global-memory storage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = ["pack_bipolar", "unpack_bipolar", "packed_dot", "popcount",
           "MemoryLedger"]

_WORD_BITS = 64

# 8-bit popcount lookup table; used when numpy lacks ``bitwise_count``.
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)],
                           dtype=np.uint64)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).astype(np.uint64)
    as_bytes = words.view(np.uint8).reshape(*words.shape, 8)
    return _POPCOUNT_TABLE[as_bytes].sum(axis=-1)


def pack_bipolar(hvs: np.ndarray) -> np.ndarray:
    """Pack bipolar hypervectors ``(n, D)`` into ``(n, ceil(D/64))`` words.

    A ``+1`` component becomes a set bit.  Values must be exactly ±1.
    """
    hvs = np.atleast_2d(np.asarray(hvs))
    if not np.all(np.abs(hvs) == 1.0):
        raise ValueError("pack_bipolar requires components in {-1, +1}")
    bits = (hvs > 0).astype(np.uint8)
    n, dim = bits.shape
    pad = (-dim) % _WORD_BITS
    if pad:
        bits = np.concatenate([bits, np.zeros((n, pad), dtype=np.uint8)],
                              axis=1)
    # np.packbits is big-endian per byte; view as uint64 afterwards.
    packed_bytes = np.packbits(bits, axis=1, bitorder="little")
    return packed_bytes.view(np.uint64)


def unpack_bipolar(packed: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_bipolar`, recovering ``(n, dim)`` ±1 floats."""
    packed = np.atleast_2d(np.asarray(packed, dtype=np.uint64))
    as_bytes = packed.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :dim]
    return bits.astype(np.float64) * 2.0 - 1.0


def packed_dot(a: np.ndarray, b: np.ndarray, dim: int) -> np.ndarray:
    """Dot products of packed bipolar hypervectors without multiplication.

    For bipolar vectors with ``d`` differing components out of ``dim``,
    ``dot = dim - 2 d`` and ``d = popcount(a XOR b)``; the zero padding in
    the final word cancels because XOR of equal padding is zero.

    Parameters
    ----------
    a: ``(n, W)`` packed queries.
    b: ``(k, W)`` packed class hypervectors.

    Returns
    -------
    ``(n, k)`` integer dot products.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.uint64))
    b = np.atleast_2d(np.asarray(b, dtype=np.uint64))
    if a.shape[1] != b.shape[1]:
        raise ValueError("packed operands have mismatched word counts")
    diff = popcount(a[:, None, :] ^ b[None, :, :]).sum(axis=-1)
    return dim - 2 * diff.astype(np.int64)


@dataclass
class MemoryLedger:
    """Track bytes stored/moved per GPU memory region.

    Regions mirror the paper's CUDA mapping (Sec. VI-A): binary
    hypervectors live in ``constant`` memory (1 bit/component), activations
    and floats are staged through ``shared`` memory, and bulk tensors live
    in ``global`` (GDDR) memory.
    """

    stored_bytes: Dict[str, int] = field(default_factory=dict)
    traffic_bytes: Dict[str, int] = field(default_factory=dict)

    _REGIONS = ("constant", "shared", "global")

    def _check_region(self, region: str) -> None:
        if region not in self._REGIONS:
            raise ValueError(
                f"unknown region {region!r}; expected one of {self._REGIONS}")

    def store(self, region: str, num_bytes: int) -> None:
        """Record a resident allocation in ``region``."""
        self._check_region(region)
        if num_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        self.stored_bytes[region] = self.stored_bytes.get(region, 0) + num_bytes

    def move(self, region: str, num_bytes: int) -> None:
        """Record data movement through ``region``."""
        self._check_region(region)
        if num_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        self.traffic_bytes[region] = (self.traffic_bytes.get(region, 0)
                                      + num_bytes)

    def store_binary_hypervectors(self, count: int, dim: int) -> None:
        """Store ``count`` binary HVs of dimension ``dim`` in constant memory."""
        self.store("constant", count * ((dim + 7) // 8))

    def store_float_hypervectors(self, count: int, dim: int,
                                 bytes_per_value: int = 4) -> None:
        """Store ``count`` float HVs in global memory (the naive layout)."""
        self.store("global", count * dim * bytes_per_value)

    def total_stored(self) -> int:
        return sum(self.stored_bytes.values())

    def total_traffic(self) -> int:
        return sum(self.traffic_bytes.values())

    def footprint_reduction_vs_float(self, count: int, dim: int,
                                     bytes_per_value: int = 4) -> float:
        """Fractional footprint saving of binary vs float storage."""
        binary = count * ((dim + 7) // 8)
        dense = count * dim * bytes_per_value
        return 1.0 - binary / dense
