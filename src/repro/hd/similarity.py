"""Similarity metrics between hypervectors and class-hypervector matrices.

The paper's δ(·,·) is the dot-product similarity most often used for
bipolar hypervectors (Sec. II).  Cosine and normalized Hamming are provided
for completeness and for the analysis utilities.
"""

from __future__ import annotations

import numpy as np

from ..telemetry import get_registry, span
from .backend import pack_bipolar, packed_dot

__all__ = ["dot_similarity", "cosine_similarity", "hamming_similarity",
           "packed_hamming_similarity", "packed_classify", "classify"]


def _count_queries(class_matrix: np.ndarray, queries: np.ndarray) -> None:
    """Counter bookkeeping shared by the similarity kernels.

    Follows the Fig. 5 accounting: a k-class similarity sweep over
    D-dimensional hypervectors costs k·D MACs per query.
    """
    n = 1 if queries.ndim == 1 else int(queries.shape[0])
    k, dim = class_matrix.shape[-2], class_matrix.shape[-1]
    registry = get_registry()
    registry.inc("hd.similarity.queries", n)
    registry.inc("hd.similarity.macs", n * k * dim)


def dot_similarity(class_matrix: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Dot-product similarity δ(M, H).

    Parameters
    ----------
    class_matrix:
        ``(k, D)`` matrix of class hypervectors.
    queries:
        ``(D,)`` single query or ``(n, D)`` batch.

    Returns
    -------
    ``(k,)`` or ``(n, k)`` similarity values.
    """
    class_matrix = np.asarray(class_matrix, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    _count_queries(class_matrix, queries)
    with span("hd.similarity.dot", nbytes=int(queries.nbytes)):
        if queries.ndim == 1:
            return class_matrix @ queries
        return queries @ class_matrix.T


def cosine_similarity(class_matrix: np.ndarray,
                      queries: np.ndarray) -> np.ndarray:
    """Cosine similarity between queries and each class hypervector."""
    class_matrix = np.asarray(class_matrix, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    _count_queries(class_matrix, queries)
    with span("hd.similarity.cosine", nbytes=int(queries.nbytes)):
        class_norms = np.linalg.norm(class_matrix, axis=-1)
        class_norms = np.where(class_norms == 0, 1.0, class_norms)
        if queries.ndim == 1:
            q_norm = np.linalg.norm(queries)
            q_norm = 1.0 if q_norm == 0 else q_norm
            return (class_matrix @ queries) / (class_norms * q_norm)
        q_norms = np.linalg.norm(queries, axis=-1, keepdims=True)
        q_norms = np.where(q_norms == 0, 1.0, q_norms)
        return (queries @ class_matrix.T) / (q_norms * class_norms[None, :])


def hamming_similarity(class_matrix: np.ndarray,
                       queries: np.ndarray) -> np.ndarray:
    """Fraction of matching components for bipolar hypervectors (in [0,1])."""
    class_matrix = np.asarray(class_matrix)
    queries = np.asarray(queries)
    dim = class_matrix.shape[-1]
    dots = dot_similarity(np.sign(class_matrix), np.sign(queries))
    return (dots / dim + 1.0) / 2.0


def packed_hamming_similarity(packed_classes: np.ndarray,
                              packed_queries: np.ndarray,
                              dim: int) -> np.ndarray:
    """Normalized Hamming similarity from **bit-packed** operands.

    The serving fast path (Schmuck et al., "Hardware Optimizations of
    Dense Binary HD Computing"): bipolar hypervectors packed into uint64
    words via :func:`repro.hd.backend.pack_bipolar`; the similarity sweep
    is XOR + popcount with no multiplications.  For bipolar vectors the
    result equals :func:`hamming_similarity` on the unpacked operands
    *exactly* — ``dot = D − 2·popcount(xor)`` is integer arithmetic, so
    ranking agrees bit-for-bit with :func:`dot_similarity`.

    Parameters
    ----------
    packed_classes:
        ``(k, W)`` packed class hypervectors.
    packed_queries:
        ``(n, W)`` packed queries (or ``(W,)`` for a single query).
    dim:
        Original hypervector dimensionality D (the padding width).

    Returns
    -------
    ``(n, k)`` (or ``(k,)``) similarities in ``[0, 1]``.
    """
    single = np.asarray(packed_queries).ndim == 1
    queries = np.atleast_2d(np.asarray(packed_queries, dtype=np.uint64))
    classes = np.atleast_2d(np.asarray(packed_classes, dtype=np.uint64))
    n, k = queries.shape[0], classes.shape[0]
    registry = get_registry()
    registry.inc("hd.similarity.queries", n)
    registry.inc("hd.similarity.packed_bitops", n * k * classes.shape[1])
    with span("hd.similarity.packed", nbytes=int(queries.nbytes)):
        dots = packed_dot(queries, classes, dim)
    sims = (dots / dim + 1.0) / 2.0
    return sims[0] if single else sims


def packed_classify(packed_classes: np.ndarray, packed_queries: np.ndarray,
                    dim: int) -> np.ndarray:
    """``argmax_k`` over packed XOR-popcount similarities.

    Ranks identically to ``classify(classes, queries, metric="dot")`` on
    the unpacked bipolar operands (ties break to the lowest class index
    in both, since packed dots are exact integers).
    """
    sims = packed_hamming_similarity(packed_classes, packed_queries, dim)
    return np.asarray(sims.argmax(axis=-1))


def _packed_metric(class_matrix: np.ndarray,
                   queries: np.ndarray) -> np.ndarray:
    """``classify(..., metric="packed")``: pack on the fly, then XOR-popcount.

    Requires strictly bipolar operands (``pack_bipolar`` raises
    otherwise).  Returns similarities shaped like the other metrics.
    """
    class_matrix = np.asarray(class_matrix)
    queries = np.asarray(queries)
    dim = class_matrix.shape[-1]
    single = queries.ndim == 1
    packed_classes = pack_bipolar(class_matrix)
    packed_queries = pack_bipolar(np.atleast_2d(queries))
    sims = packed_hamming_similarity(packed_classes, packed_queries, dim)
    return sims[0] if single else sims


def classify(class_matrix: np.ndarray, queries: np.ndarray,
             metric: str = "dot") -> np.ndarray:
    """Inference: ``argmax_k δ(C_k, H)`` for each query.

    This is the paper's inference procedure (Sec. III): compute the query
    hypervector's similarity against all class hypervectors and pick the
    most similar class.  ``metric="packed"`` routes through the bit-packed
    XOR-popcount kernel (bipolar operands only); it ranks identically to
    ``"dot"`` for bipolar hypervectors.
    """
    metrics = {
        "dot": dot_similarity,
        "cosine": cosine_similarity,
        "hamming": hamming_similarity,
        "packed": _packed_metric,
    }
    if metric not in metrics:
        raise ValueError(f"unknown metric {metric!r}; expected one of "
                         f"{sorted(metrics)}")
    sims = metrics[metric](class_matrix, queries)
    return np.asarray(sims.argmax(axis=-1))
