"""Associative item memory with cleanup (classic HD data structure).

HD computing systems store the atomic hypervectors of known symbols in an
*item memory*; noisy query vectors (e.g. the result of unbinding a
composite) are restored by *cleanup* — nearest-neighbour search over the
stored items.  NSHD's class-hypervector matrix is a special case; this
general structure supports the explainability workflows (Sec. VII-E) and
symbolic manipulation of learned classes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .backend import pack_bipolar, packed_dot
from .hypervector import hard_quantize, is_bipolar, random_bipolar
from .similarity import cosine_similarity

__all__ = ["ItemMemory"]


class ItemMemory:
    """Name → hypervector store with nearest-neighbour cleanup.

    Parameters
    ----------
    dim:
        Hypervector dimensionality of every stored item.
    packed:
        When ``True`` (and all items are bipolar), lookups run on the
        bit-packed XOR+popcount backend.
    """

    def __init__(self, dim: int, packed: bool = False):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.packed = packed
        self._names: List[str] = []
        self._vectors: List[np.ndarray] = []
        self._packed_cache: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._names

    # ------------------------------------------------------------------
    def add(self, name: str, vector: np.ndarray) -> None:
        """Store a hypervector under ``name`` (names are unique)."""
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected dimension {self.dim}, got "
                             f"{vector.shape}")
        if name in self._names:
            raise KeyError(f"item {name!r} already stored")
        if self.packed and not is_bipolar(vector):
            raise ValueError("packed item memory requires bipolar vectors")
        self._names.append(name)
        self._vectors.append(vector)
        self._packed_cache = None

    def add_random(self, name: str,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Create, store and return a fresh random bipolar item."""
        vector = random_bipolar(1, self.dim, rng)[0]
        self.add(name, vector)
        return vector

    def get(self, name: str) -> np.ndarray:
        try:
            return self._vectors[self._names.index(name)]
        except ValueError:
            raise KeyError(f"unknown item {name!r}") from None

    # ------------------------------------------------------------------
    def _matrix(self) -> np.ndarray:
        return np.stack(self._vectors)

    def cleanup(self, query: np.ndarray, top_k: int = 1
                ) -> List[Tuple[str, float]]:
        """Restore a noisy query to the ``top_k`` most similar items.

        Returns ``[(name, cosine_similarity)]`` sorted best-first.
        """
        if not self._names:
            raise RuntimeError("item memory is empty")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape != (self.dim,):
            raise ValueError(f"expected dimension {self.dim}")
        if self.packed:
            if self._packed_cache is None:
                self._packed_cache = pack_bipolar(self._matrix())
            q = pack_bipolar(hard_quantize(query)[None, :])
            dots = packed_dot(q, self._packed_cache, self.dim)[0]
            sims = dots / self.dim
        else:
            sims = cosine_similarity(self._matrix(), query)
        order = np.argsort(sims)[::-1][:top_k]
        return [(self._names[i], float(sims[i])) for i in order]

    def recall(self, query: np.ndarray) -> str:
        """Name of the single best cleanup match."""
        return self.cleanup(query, top_k=1)[0][0]
