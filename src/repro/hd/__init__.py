"""Hyperdimensional computing core.

Hypervector algebra (:mod:`repro.hd.hypervector`), similarity metrics
(:mod:`repro.hd.similarity`), the feature encoders used across the paper's
evaluation (:mod:`repro.hd.encoders`), and the bit-packed binary backend
that mirrors the paper's constant-memory CUDA kernels
(:mod:`repro.hd.backend`).
"""

from .backend import (MemoryLedger, pack_bipolar, packed_dot, popcount,
                      unpack_bipolar)
from .encoders import (Encoder, IDLevelEncoder, LSHEncoder, NonlinearEncoder,
                       RandomProjectionEncoder)
from .itemmemory import ItemMemory
from .sequences import SequenceEncoder
from .hypervector import (bind, bundle, expected_overlap_std, hard_quantize,
                          is_bipolar, permute, random_bipolar, random_gaussian)
from .similarity import (classify, cosine_similarity, dot_similarity,
                         hamming_similarity, packed_classify,
                         packed_hamming_similarity)

__all__ = [
    "bind", "bundle", "permute", "hard_quantize", "is_bipolar",
    "random_bipolar", "random_gaussian", "expected_overlap_std",
    "dot_similarity", "cosine_similarity", "hamming_similarity", "classify",
    "packed_hamming_similarity", "packed_classify",
    "Encoder", "RandomProjectionEncoder", "NonlinearEncoder",
    "IDLevelEncoder", "LSHEncoder",
    "pack_bipolar", "unpack_bipolar", "packed_dot", "popcount",
    "MemoryLedger",
    "ItemMemory", "SequenceEncoder",
]
