"""Hypervector algebra: creation, binding, bundling, permutation.

Hypervectors here follow the bipolar convention used by the NSHD paper and
most of the HD-computing literature ([2], [4], [12]): components are drawn
i.i.d. from ``{-1, +1}`` so that two random hypervectors of dimension ``D``
are quasi-orthogonal (expected dot product 0, standard deviation
``sqrt(D)``).

All functions operate on numpy arrays whose *last* axis is the hypervector
dimension, so they apply equally to single hypervectors ``(D,)`` and
batches ``(n, D)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "random_bipolar", "random_gaussian", "bind", "bundle", "permute",
    "hard_quantize", "is_bipolar", "expected_overlap_std",
]


def random_bipolar(count: int, dim: int,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Sample ``count`` i.i.d. bipolar hypervectors of dimension ``dim``.

    Returns an ``(count, dim)`` ``float64`` array with entries in {-1, +1}.
    """
    if count <= 0 or dim <= 0:
        raise ValueError("count and dim must be positive")
    rng = rng or np.random.default_rng()
    return rng.integers(0, 2, size=(count, dim)).astype(np.float64) * 2.0 - 1.0


def random_gaussian(count: int, dim: int,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Sample dense Gaussian base vectors (used by nonlinear encoding)."""
    if count <= 0 or dim <= 0:
        raise ValueError("count and dim must be positive")
    rng = rng or np.random.default_rng()
    return rng.normal(0.0, 1.0, size=(count, dim))


def bind(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bind hypervectors (element-wise multiplication).

    Binding associates two hypervectors into a composite that is
    quasi-orthogonal to both inputs.  For bipolar vectors binding is its
    own inverse: ``bind(bind(a, b), b) == a``.
    """
    return np.multiply(a, b)


def bundle(*hvs: np.ndarray, axis: int = 0) -> np.ndarray:
    """Bundle hypervectors (element-wise addition).

    Bundling superposes hypervectors into a composite that stays similar
    to each input.  With a single array argument the bundling happens over
    ``axis``; with several arguments they are summed together.
    """
    if not hvs:
        raise ValueError("bundle requires at least one hypervector")
    if len(hvs) == 1:
        return np.sum(hvs[0], axis=axis)
    total = hvs[0].astype(np.float64, copy=True)
    for hv in hvs[1:]:
        total = total + hv
    return total


def permute(hv: np.ndarray, shifts: int = 1) -> np.ndarray:
    """Cyclically permute the hypervector dimension (sequence binding)."""
    return np.roll(hv, shifts, axis=-1)


def hard_quantize(hv: np.ndarray) -> np.ndarray:
    """Map a real-valued hypervector to bipolar form: ``x >= 0 -> +1``."""
    return np.where(hv >= 0, 1.0, -1.0)


def is_bipolar(hv: np.ndarray) -> bool:
    """Whether every component is exactly -1 or +1."""
    return bool(np.all(np.abs(hv) == 1.0))


def expected_overlap_std(dim: int) -> float:
    """Std-dev of the bit overlap of two random binary HVs (= sqrt(D/4)).

    The paper (Sec. II) notes two random hypervectors of dimension D overlap
    in D/2 bits with standard deviation sqrt(D/4); this helper exposes that
    constant for the statistical tests.
    """
    return float(np.sqrt(dim / 4.0))
