"""Sequence encoding with permutation n-grams (VoiceHD / language HD).

The paper cites language recognition [13] and speech recognition [12] as
canonical HD successes.  Both encode *sequences* by binding
position-permuted symbol hypervectors into n-grams and bundling the
n-grams — the standard recipe this module implements, so the HD core
generalizes beyond the vision pipeline:

    ngram(s_1..s_n) = ρ^{n-1}(I(s_1)) ⊗ … ⊗ ρ(I(s_{n-1})) ⊗ I(s_n)
    H(sequence)     = sign(Σ over sliding windows)

with ``I`` an item memory of symbol hypervectors and ρ the cyclic
permutation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from .hypervector import bind, hard_quantize, permute, random_bipolar
from .itemmemory import ItemMemory

__all__ = ["SequenceEncoder"]


class SequenceEncoder:
    """Permutation n-gram encoder over an arbitrary symbol alphabet."""

    def __init__(self, dim: int = 2048, ngram: int = 3,
                 rng: Optional[np.random.Generator] = None):
        if ngram < 1:
            raise ValueError("ngram must be at least 1")
        self.dim = dim
        self.ngram = ngram
        self._rng = rng or np.random.default_rng()
        self.items = ItemMemory(dim)

    def _symbol(self, symbol) -> np.ndarray:
        name = repr(symbol)
        if name not in self.items:
            self.items.add_random(name, self._rng)
        return self.items.get(name)

    def encode_ngram(self, window: Sequence) -> np.ndarray:
        """Bind one window of symbols with positional permutation."""
        if len(window) != self.ngram:
            raise ValueError(f"window must have {self.ngram} symbols")
        composite = None
        for offset, symbol in enumerate(window):
            rotated = permute(self._symbol(symbol),
                              self.ngram - 1 - offset)
            composite = rotated if composite is None \
                else bind(composite, rotated)
        return composite

    def encode(self, sequence: Iterable) -> np.ndarray:
        """Encode a whole sequence into one bipolar hypervector."""
        symbols = list(sequence)
        if len(symbols) < self.ngram:
            raise ValueError(
                f"sequence of length {len(symbols)} is shorter than the "
                f"n-gram size {self.ngram}")
        total = np.zeros(self.dim)
        for start in range(len(symbols) - self.ngram + 1):
            total += self.encode_ngram(symbols[start:start + self.ngram])
        return hard_quantize(total)

    def similarity(self, a: Iterable, b: Iterable) -> float:
        """Normalized dot similarity of two encoded sequences in [-1, 1]."""
        ha, hb = self.encode(a), self.encode(b)
        return float(np.dot(ha, hb) / self.dim)
