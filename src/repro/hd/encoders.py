"""Feature-to-hypervector encoders.

Implements every encoding used in the paper's evaluation:

* :class:`RandomProjectionEncoder` — the paper's Φ_P (Sec. IV-B): bind each
  feature value with a bipolar base hypervector, bundle, then ``sign``.
  Algebraically ``H = sign(V @ P)`` with ``P`` an ``F×D`` bipolar matrix.
* :class:`NonlinearEncoder` — the "state-of-the-art non-linear encoding"
  [6] used by the VanillaHD baseline (the one the introduction reports at
  ~40%/~20% accuracy on CIFAR-10/100 raw pixels).
* :class:`IDLevelEncoder` — the classic record-based (ID × level) encoding
  from the early HD literature, included for ablations.
* :class:`LSHEncoder` — random-hyperplane locality-sensitive hashing, the
  feature-reduction strategy of prior work [9] that the manifold learner
  replaces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..telemetry import get_registry, span
from .hypervector import hard_quantize, random_bipolar, random_gaussian

__all__ = ["Encoder", "RandomProjectionEncoder", "NonlinearEncoder",
           "IDLevelEncoder", "LSHEncoder"]


class Encoder:
    """Base class for feature-space → hyperspace encoders."""

    def __init__(self, in_features: int, dim: int):
        if in_features <= 0 or dim <= 0:
            raise ValueError("in_features and dim must be positive")
        self.in_features = in_features
        self.dim = dim

    def _check(self, features: np.ndarray) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape[-1] != self.in_features:
            raise ValueError(
                f"encoder expects {self.in_features} features, got "
                f"{features.shape[-1]}")
        return features

    def _telemetry_span(self, features: np.ndarray) -> span:
        """Span + counters for one :meth:`encode` call.

        Every encoder's ``encode`` wraps its math in this span so the
        tracer can attribute per-encoder wall time and bytes; samples and
        MAC estimates land in the global metrics registry.
        """
        n = 1 if features.ndim == 1 else int(features.shape[0])
        registry = get_registry()
        registry.inc("hd.encode.samples", n)
        registry.inc("hd.encode.macs", n * self.macs_per_sample())
        return span(f"hd.encode.{type(self).__name__}",
                    nbytes=int(np.asarray(features).nbytes))

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Encode ``(n, F)`` features into ``(n, D)`` hypervectors."""
        raise NotImplementedError

    def macs_per_sample(self) -> int:
        """Multiply-accumulate operations to encode one sample.

        Follows the paper's Fig. 5 accounting: binding/bundling are counted
        as element-wise multiply/add pairs, i.e. one MAC per feature per
        hypervector dimension.
        """
        raise NotImplementedError


class RandomProjectionEncoder(Encoder):
    """Binary random projection encoding (the paper's Φ_P).

    ``H = sign(V_1 ⊗ P_1 ⊕ … ⊕ V_F ⊗ P_F) = sign(V @ P)`` where each row
    ``P_f`` is a random bipolar base hypervector.
    """

    def __init__(self, in_features: int, dim: int,
                 rng: Optional[np.random.Generator] = None,
                 quantize: bool = True):
        super().__init__(in_features, dim)
        self.projection = random_bipolar(in_features, dim, rng)
        self.quantize = quantize

    @classmethod
    def from_arrays(cls, projection: np.ndarray,
                    quantize: bool = True) -> "RandomProjectionEncoder":
        """Rebuild an encoder around a stored projection matrix.

        Used by frozen serving/checkpoint stages: no RNG is touched, the
        stored ``(F, D)`` matrix is adopted verbatim so encodings are
        bit-identical to the training-time encoder.
        """
        projection = np.asarray(projection, dtype=np.float64)
        if projection.ndim != 2:
            raise ValueError("projection must be a 2-D (F, D) matrix")
        encoder = cls.__new__(cls)
        Encoder.__init__(encoder, int(projection.shape[0]),
                         int(projection.shape[1]))
        encoder.projection = projection
        encoder.quantize = bool(quantize)
        return encoder

    def encode(self, features: np.ndarray) -> np.ndarray:
        features = self._check(features)
        with self._telemetry_span(features):
            raw = features @ self.projection
            return hard_quantize(raw) if self.quantize else raw

    def encode_raw(self, features: np.ndarray) -> np.ndarray:
        """Pre-``sign`` bundle values (needed by the manifold STE path)."""
        return self._check(features) @ self.projection

    def decode(self, hypervectors: np.ndarray) -> np.ndarray:
        """Approximately invert the projection (paper Sec. V-C).

        HD decoding [2] binds with the base hypervectors and takes the dot
        product per feature: ``V̂_f = <H, P_f> / D``.  Because the rows of
        ``P`` are quasi-orthogonal (``P Pᵀ ≈ D·I``), this recovers feature
        values up to O(1/sqrt(D)) crosstalk.
        """
        hypervectors = np.atleast_2d(np.asarray(hypervectors,
                                                dtype=np.float64))
        return hypervectors @ self.projection.T / self.dim

    def macs_per_sample(self) -> int:
        return self.in_features * self.dim

    def parameter_count(self) -> int:
        """Size of the projection item memory (F × D)."""
        return self.in_features * self.dim


class NonlinearEncoder(Encoder):
    """Non-linear (kernel-trick) encoding from [6] / OnlineHD.

    ``H_d = cos(V·B_d + b_d) · sin(V·B_d)`` with Gaussian base vectors
    ``B`` and uniform phases ``b``; optionally hard-quantized to bipolar.
    This approximates an RBF kernel feature map, which is what makes it the
    strongest *standalone* HD encoder — and still, per the paper's
    introduction, far below CNNs on image data.
    """

    def __init__(self, in_features: int, dim: int,
                 rng: Optional[np.random.Generator] = None,
                 quantize: bool = False, bandwidth: float = 1.0):
        super().__init__(in_features, dim)
        rng = rng or np.random.default_rng()
        self.basis = random_gaussian(in_features, dim, rng) * bandwidth
        self.phase = rng.uniform(0.0, 2.0 * np.pi, size=dim)
        self.quantize = quantize

    @classmethod
    def from_arrays(cls, basis: np.ndarray, phase: np.ndarray,
                    quantize: bool = False) -> "NonlinearEncoder":
        """Rebuild an encoder around stored basis/phase arrays.

        Frozen counterpart of the randomized constructor — adopts the
        stored ``(F, D)`` basis and ``(D,)`` phase verbatim (no RNG) so
        encodings are bit-identical to the training-time encoder.
        """
        basis = np.asarray(basis, dtype=np.float64)
        phase = np.asarray(phase, dtype=np.float64)
        if basis.ndim != 2:
            raise ValueError("basis must be a 2-D (F, D) matrix")
        if phase.shape != (basis.shape[1],):
            raise ValueError("phase must have shape (D,)")
        encoder = cls.__new__(cls)
        Encoder.__init__(encoder, int(basis.shape[0]), int(basis.shape[1]))
        encoder.basis = basis
        encoder.phase = phase
        encoder.quantize = bool(quantize)
        return encoder

    def encode(self, features: np.ndarray) -> np.ndarray:
        features = self._check(features)
        with self._telemetry_span(features):
            proj = features @ self.basis
            raw = np.cos(proj + self.phase) * np.sin(proj)
            return hard_quantize(raw) if self.quantize else raw

    def macs_per_sample(self) -> int:
        return self.in_features * self.dim


class IDLevelEncoder(Encoder):
    """Record-based encoding: bind per-feature ID and quantized level HVs.

    Level hypervectors are correlated: the vector for level ``l+1`` differs
    from level ``l`` in ``D / (2·levels)`` random positions so that nearby
    feature values stay similar in hyperspace.
    """

    def __init__(self, in_features: int, dim: int, levels: int = 16,
                 value_range=(0.0, 1.0),
                 rng: Optional[np.random.Generator] = None):
        super().__init__(in_features, dim)
        if levels < 2:
            raise ValueError("need at least two quantization levels")
        rng = rng or np.random.default_rng()
        self.levels = levels
        self.low, self.high = value_range
        if self.high <= self.low:
            raise ValueError("value_range must be increasing")
        self.id_memory = random_bipolar(in_features, dim, rng)
        level_hvs = np.empty((levels, dim))
        level_hvs[0] = random_bipolar(1, dim, rng)[0]
        flips_per_step = max(1, dim // (2 * levels))
        for level in range(1, levels):
            level_hvs[level] = level_hvs[level - 1]
            positions = rng.choice(dim, size=flips_per_step, replace=False)
            level_hvs[level, positions] *= -1.0
        self.level_memory = level_hvs

    def quantize_values(self, features: np.ndarray) -> np.ndarray:
        span = self.high - self.low
        normalized = (np.clip(features, self.low, self.high) - self.low) / span
        return np.minimum((normalized * self.levels).astype(int),
                          self.levels - 1)

    def encode(self, features: np.ndarray) -> np.ndarray:
        features = self._check(features)
        with self._telemetry_span(features):
            indices = self.quantize_values(features)
            bound = self.id_memory[None, :, :] * self.level_memory[indices]
            return hard_quantize(bound.sum(axis=1))

    def macs_per_sample(self) -> int:
        return self.in_features * self.dim


class LSHEncoder(Encoder):
    """Random-hyperplane LSH feature reduction (prior work [9]).

    Maps ``F`` real features to ``dim`` sign bits via Gaussian hyperplanes.
    Prior work uses this to shrink CNN features before HD encoding; the
    paper's critique (Sec. II) is that LSH cannot use radically small
    bucket sizes without destroying similarity structure, which the
    learned manifold layer avoids.
    """

    def __init__(self, in_features: int, dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(in_features, dim)
        self.hyperplanes = random_gaussian(in_features, dim, rng)

    def encode(self, features: np.ndarray) -> np.ndarray:
        features = self._check(features)
        with self._telemetry_span(features):
            return hard_quantize(features @ self.hyperplanes)

    def macs_per_sample(self) -> int:
        return self.in_features * self.dim
