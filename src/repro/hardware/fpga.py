"""FPGA DPU accelerator model (Xilinx ZCU104, Vitis-AI DPU).

The paper deploys NSHD on a ZCU104 by compiling the whole pipeline — conv
trunk, manifold FC and HD stages — into the Xilinx DPU as quantized tensor
ops (Sec. VI-B).  This module is the analytic stand-in:

* :class:`DPUConfig` carries the resource ledger of Table I (a DPU-B4096
  style core on the ZCU104 programmable logic at 200 MHz / 4.427 W);
* :class:`DPUModel` estimates per-inference cycles from the same MAC
  counts used everywhere else, with per-stage utilization factors that
  encode the DPU's well-known behaviour (dense convs near peak, depthwise
  and GEMM memory-bound, binary HD ops benefiting from 8-bit packing);
* FPS and energy-per-inference follow directly, feeding Figs. 6 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..models.base import IndexedCNN
from .macs import baselinehd_macs, model_macs, nshd_macs

__all__ = ["ResourceUsage", "DPUConfig", "ZCU104_DPU", "DPUModel"]


@dataclass(frozen=True)
class ResourceUsage:
    """One row of the Table I resource ledger."""

    used: float
    available: float

    @property
    def utilization(self) -> float:
        return self.used / self.available


@dataclass(frozen=True)
class DPUConfig:
    """DPU core configuration and PL resource footprint.

    Default numbers reproduce Table I exactly: 84.9K/230.4K LUT,
    146.5K/460.8K FF, 224/312 BRAM, 40/96 URAM, 844/1728 DSP at 200 MHz
    and 4.427 W.
    """

    name: str = "DPU-B4096@ZCU104"
    frequency_hz: float = 200e6
    power_w: float = 4.427
    peak_macs_per_cycle: int = 4096
    #: Fixed per-inference cycles (PS<->PL transfer + scheduling).  On real
    #: hardware this is tens of thousands of cycles; it is scaled down here
    #: in proportion to the reproduction's scaled-down model sizes so the
    #: compute/overhead balance matches the paper's regime.
    overhead_cycles: int = 200
    resources: Dict[str, ResourceUsage] = field(default_factory=lambda: {
        "LUT": ResourceUsage(84_900, 230_400),
        "FF": ResourceUsage(146_500, 460_800),
        "BRAM": ResourceUsage(224, 312),
        "URAM": ResourceUsage(40, 96),
        "DSP": ResourceUsage(844, 1728),
    })

    def utilization_table(self) -> Dict[str, float]:
        return {kind: usage.utilization
                for kind, usage in self.resources.items()}


ZCU104_DPU = DPUConfig()

#: Effective MAC-equivalents of peak throughput per pipeline stage.
#: Dense convolutions stream at ~60% of the array's peak; the manifold FC
#: is a weight-bandwidth-bound GEMV (~25%); the binary HD stages run
#: *above* nominal peak because packed 1-bit operands fit 8 ops into each
#: 8-bit DSP lane (Sec. VI-A/B), i.e. 0.6 utilization x 8 packing.
_STAGE_EFFICIENCY = {
    "trunk": 0.60,
    "cnn": 0.60,
    "manifold": 0.25,
    "encode": 4.8,
    "similarity": 4.8,
}

class DPUModel:
    """Cycle/FPS/energy estimator for models mapped onto the DPU."""

    def __init__(self, config: DPUConfig = ZCU104_DPU):
        self.config = config

    # ------------------------------------------------------------------
    def _stage_cycles(self, macs: int, stage: str) -> float:
        efficiency = _STAGE_EFFICIENCY[stage]
        return macs / (self.config.peak_macs_per_cycle * efficiency)

    def cnn_cycles(self, model: IndexedCNN) -> float:
        """Per-inference cycles of the full CNN on the DPU."""
        return self._stage_cycles(model_macs(model), "cnn") + \
            self.config.overhead_cycles

    def nshd_cycles(self, model: IndexedCNN, layer_index: int, dim: int,
                    reduced_features: int, num_classes: int) -> float:
        """Per-inference cycles of the NSHD pipeline on the DPU."""
        stages = nshd_macs(model, layer_index, dim, reduced_features,
                           num_classes)
        return sum(self._stage_cycles(stages[name], name)
                   for name in ("trunk", "manifold", "encode",
                                "similarity")) + self.config.overhead_cycles

    def baselinehd_cycles(self, model: IndexedCNN, layer_index: int,
                          dim: int, num_classes: int) -> float:
        """Per-inference cycles of BaselineHD (full-F encode) on the DPU."""
        stages = baselinehd_macs(model, layer_index, dim, num_classes)
        return sum(self._stage_cycles(stages[name], name)
                   for name in ("trunk", "encode", "similarity")) + \
            self.config.overhead_cycles

    # ------------------------------------------------------------------
    def fps(self, cycles: float) -> float:
        """Frames per second at the configured clock (Fig. 6's metric)."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        return self.config.frequency_hz / cycles

    def latency_s(self, cycles: float) -> float:
        return cycles / self.config.frequency_hz

    def energy_j(self, cycles: float) -> float:
        """Per-inference energy: board power × latency."""
        return self.config.power_w * self.latency_s(cycles)

    # ------------------------------------------------------------------
    def cnn_fps(self, model: IndexedCNN) -> float:
        return self.fps(self.cnn_cycles(model))

    def nshd_fps(self, model: IndexedCNN, layer_index: int, dim: int,
                 reduced_features: int, num_classes: int) -> float:
        return self.fps(self.nshd_cycles(model, layer_index, dim,
                                         reduced_features, num_classes))
