"""Analytic GPU energy model (NVIDIA Xavier-class edge SoC).

The paper measures inference energy on an NVIDIA Xavier with nvidia-smi
(Sec. VII-A).  Offline we model energy from first principles:

    E = E_compute + E_weight_traffic + E_activation_traffic

with per-operation/per-byte costs taken from the standard accelerator
energy literature (Horowitz ISSCC'14 scaled to a 16 nm edge SoC).  All of
Fig. 4's *relative* improvements depend only on ratios of these terms,
which are driven by the exact MAC/byte counts measured from the model —
the absolute Joule calibration cancels out.

Binary hypervector item memories are costed at the "constant memory"
rate (cached, 1 bit/component), reproducing the Sec. VI-A optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..models.base import IndexedCNN
from .macs import (baselinehd_macs, count_parameters, model_macs, nshd_macs)

__all__ = ["EnergyModel", "XAVIER_ENERGY", "cnn_inference_energy",
           "nshd_inference_energy", "baselinehd_inference_energy",
           "energy_improvement"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy constants (picojoules).

    ``binary_op_pj`` covers the bit-packed HD operations of Sec. VI-A:
    a bipolar bind/accumulate is a 1-bit XNOR-popcount step — roughly an
    eighth of an 8-bit MAC in both switching energy and operand traffic.
    """

    mac_pj: float = 1.0             # int8/fp16 multiply-accumulate
    binary_op_pj: float = 0.125     # packed 1-bit bind/accumulate
    dram_pj_per_byte: float = 20.0  # off-chip weight traffic
    sram_pj_per_byte: float = 1.0   # on-chip activation traffic
    const_pj_per_byte: float = 0.5  # cached constant-memory traffic

    def compute(self, macs: int) -> float:
        return self.mac_pj * macs

    def compute_binary(self, ops: int) -> float:
        return self.binary_op_pj * ops

    def weights(self, num_bytes: int) -> float:
        return self.dram_pj_per_byte * num_bytes

    def activations(self, num_bytes: int) -> float:
        return self.sram_pj_per_byte * num_bytes

    def constants(self, num_bytes: int) -> float:
        return self.const_pj_per_byte * num_bytes


#: Default constants used by the Fig. 4 benchmark.
XAVIER_ENERGY = EnergyModel()

_FLOAT_BYTES = 4


def cnn_inference_energy(model: IndexedCNN,
                         energy: EnergyModel = XAVIER_ENERGY
                         ) -> Dict[str, float]:
    """Per-inference energy (pJ) of the full CNN."""
    macs = model_macs(model)
    weight_bytes = count_parameters(model) * _FLOAT_BYTES
    breakdown = {
        "compute": energy.compute(macs),
        "weights": energy.weights(weight_bytes),
        "activations": energy.activations(macs // 4),  # ~1 byte / 4 MACs
    }
    breakdown["total"] = sum(breakdown.values())
    return breakdown


def _hd_energy(stages: Dict[str, int], trunk_params: int,
               manifold_params: int, projection_bits: int,
               class_hv_values: int, energy: EnergyModel
               ) -> Dict[str, float]:
    float_macs = stages["trunk"] + stages["manifold"]
    binary_ops = stages["encode"] + stages["similarity"]
    # CNN trunk weights stream from DRAM each inference (they are the
    # multi-MB part).  The HD section — manifold FC, class hypervectors,
    # binary projection — is small enough to stay resident on-chip
    # (Sec. VI-A's constant-memory layout), so it is charged at the
    # cached-access rates.
    trunk_weight_bytes = trunk_params * _FLOAT_BYTES
    resident_bytes = manifold_params * _FLOAT_BYTES + \
        class_hv_values * _FLOAT_BYTES
    constant_bytes = (projection_bits + 7) // 8
    breakdown = {
        "compute": energy.compute(float_macs) +
        energy.compute_binary(binary_ops),
        "weights": energy.weights(trunk_weight_bytes),
        "resident": energy.activations(resident_bytes),
        "constants": energy.constants(constant_bytes),
        "activations": energy.activations(float_macs // 4),
    }
    breakdown["total"] = sum(breakdown.values())
    return breakdown


def nshd_inference_energy(model: IndexedCNN, layer_index: int, dim: int,
                          reduced_features: int, num_classes: int,
                          energy: EnergyModel = XAVIER_ENERGY
                          ) -> Dict[str, float]:
    """Per-inference energy (pJ) of NSHD cut at ``layer_index``."""
    stages = nshd_macs(model, layer_index, dim, reduced_features,
                       num_classes)
    manifold_params = stages["manifold"] // max(1, reduced_features) * \
        reduced_features + reduced_features
    return _hd_energy(
        stages,
        trunk_params=count_parameters(model, layer_index),
        manifold_params=manifold_params,
        projection_bits=reduced_features * dim,
        class_hv_values=num_classes * dim,
        energy=energy)


def baselinehd_inference_energy(model: IndexedCNN, layer_index: int,
                                dim: int, num_classes: int,
                                energy: EnergyModel = XAVIER_ENERGY
                                ) -> Dict[str, float]:
    """Per-inference energy (pJ) of BaselineHD (full-F projection)."""
    stages = baselinehd_macs(model, layer_index, dim, num_classes)
    return _hd_energy(
        stages,
        trunk_params=count_parameters(model, layer_index),
        manifold_params=0,
        projection_bits=model.feature_count(layer_index) * dim,
        class_hv_values=num_classes * dim,
        energy=energy)


def energy_improvement(cnn_energy: float, system_energy: float) -> float:
    """Fractional energy saving of a system vs the CNN (Fig. 4's y-axis)."""
    if cnn_energy <= 0:
        raise ValueError("cnn_energy must be positive")
    return 1.0 - system_energy / cnn_energy
