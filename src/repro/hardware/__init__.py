"""Analytic efficiency substrate: MACs, model size, GPU energy, FPGA DPU.

These models replace the paper's physical measurement infrastructure
(Xavier + nvidia-smi, ZCU104 + Vitis AI) with first-principles cost
models fed by exact layer shapes; see DESIGN.md §1 for the substitution
rationale.
"""

from .energy import (XAVIER_ENERGY, EnergyModel, baselinehd_inference_energy,
                     cnn_inference_energy, energy_improvement,
                     nshd_inference_energy)
from .fpga import ZCU104_DPU, DPUConfig, DPUModel, ResourceUsage
from .quantize import QuantizedNSHD, QuantizedTensor, quantize_symmetric
from .macs import (LayerCost, baselinehd_macs, count_parameters,
                   hd_encode_macs, hd_similarity_macs, model_macs,
                   nshd_macs, trace_costs, trunk_macs)
from .size import (SizeBreakdown, baselinehd_size_bytes, cnn_size_bytes,
                   nshd_size_bytes)

__all__ = [
    "LayerCost", "trace_costs", "model_macs", "trunk_macs",
    "hd_encode_macs", "hd_similarity_macs", "nshd_macs", "baselinehd_macs",
    "count_parameters",
    "SizeBreakdown", "cnn_size_bytes", "nshd_size_bytes",
    "baselinehd_size_bytes",
    "EnergyModel", "XAVIER_ENERGY", "cnn_inference_energy",
    "nshd_inference_energy", "baselinehd_inference_energy",
    "energy_improvement",
    "ResourceUsage", "DPUConfig", "ZCU104_DPU", "DPUModel",
    "QuantizedTensor", "quantize_symmetric", "QuantizedNSHD",
]
