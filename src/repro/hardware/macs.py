"""MAC and parameter counting for CNN trunks and HD stages.

All CNN counts are measured from a *traced* forward pass (``nn.trace``),
so they reflect the actual layer shapes rather than hand-maintained
tables.  HD-stage counts follow the paper's Fig. 5 accounting: binding/
bundling are element-wise multiply/accumulate pairs, so encoding F
features into D dimensions costs F·D MACs and a k-class similarity sweep
costs k·D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..models.base import IndexedCNN
from ..nn import Tensor

__all__ = ["LayerCost", "layer_cost", "trace_costs", "model_macs",
           "trunk_macs", "hd_encode_macs", "hd_similarity_macs",
           "nshd_macs", "baselinehd_macs", "count_parameters"]


@dataclass
class LayerCost:
    """MACs and parameter count of one traced leaf-module call."""

    kind: str
    macs: int
    params: int
    output_elems: int


def layer_cost(module: nn.Module,
               output_shape: Optional[tuple]) -> LayerCost:
    """MAC/parameter cost of one leaf-module call with a given output shape.

    Shared by the traced Fig. 5 accounting below and the telemetry
    profiler's per-layer hook (:mod:`repro.telemetry.profiler`), so both
    report identical numbers for identical shapes.
    """
    out_shape = tuple(output_shape or ())
    out_elems = int(np.prod(out_shape[1:])) if len(out_shape) > 1 else 0
    kind = type(module).__name__

    if isinstance(module, nn.Conv2d):
        per_output = (module.in_channels // module.groups) * \
            module.kernel_size ** 2
        macs = out_elems * per_output
        params = module.weight.size + (module.bias.size
                                       if module.bias is not None else 0)
    elif isinstance(module, nn.Linear):
        macs = module.in_features * module.out_features
        params = module.weight.size + (module.bias.size
                                       if module.bias is not None else 0)
    elif isinstance(module, nn.BatchNorm2d):
        # At inference BN folds into the preceding convolution: zero MACs,
        # but its affine parameters still count toward model size.
        macs = 0
        params = module.gamma.size + module.beta.size
    else:
        # Pooling, activations, dropout, flatten: comparisons / element
        # ops, no multiply-accumulates and no parameters.
        macs = 0
        params = 0
    return LayerCost(kind=kind, macs=macs, params=params,
                     output_elems=out_elems)


def _record_cost(record: nn.TraceRecord) -> LayerCost:
    return layer_cost(record.module, record.output_shape)


def trace_costs(run, image_size: int = 32) -> List[LayerCost]:
    """Trace ``run(x)`` on a dummy image and cost every leaf module."""
    with nn.no_grad():
        with nn.trace() as records:
            run(Tensor(np.zeros((1, 3, image_size, image_size))))
    return [_record_cost(record) for record in records]


def model_macs(model: IndexedCNN) -> int:
    """Per-sample MACs of the full CNN (trunk + head + classifier)."""
    was_training = model.training
    model.eval()
    costs = trace_costs(model.forward, model.image_size)
    model.train(was_training)
    return sum(cost.macs for cost in costs)


def trunk_macs(model: IndexedCNN, layer_index: int) -> int:
    """Per-sample MACs of the truncated trunk up to ``layer_index``."""
    was_training = model.training
    model.eval()
    costs = trace_costs(lambda x: model.features_at(x, layer_index),
                        model.image_size)
    model.train(was_training)
    return sum(cost.macs for cost in costs)


def count_parameters(model: IndexedCNN,
                     layer_index: Optional[int] = None) -> int:
    """Scalar parameter count (full model, or trunk up to a cut layer)."""
    if layer_index is None:
        return model.num_parameters()
    total = 0
    for layer in model.features[:layer_index + 1]:
        total += layer.num_parameters()
    return total


def hd_encode_macs(num_features: int, dim: int) -> int:
    """Random-projection encoding cost: F bind+bundle ops per dimension."""
    return num_features * dim


def hd_similarity_macs(num_classes: int, dim: int) -> int:
    """Class-similarity sweep cost: one dot product per class."""
    return num_classes * dim


def nshd_macs(model: IndexedCNN, layer_index: int, dim: int,
              reduced_features: int, num_classes: int) -> Dict[str, int]:
    """Per-sample inference MACs of the full NSHD pipeline, by stage.

    trunk → manifold (pool + FC) → HD encode (F̂·D) → similarity (k·D).
    """
    channels, height, width = model.feature_shape(layer_index)
    pooled = channels * max(1, height // 2) * max(1, width // 2) \
        if height >= 2 and width >= 2 else channels * height * width
    stages = {
        "trunk": trunk_macs(model, layer_index),
        "manifold": pooled * reduced_features,
        "encode": hd_encode_macs(reduced_features, dim),
        "similarity": hd_similarity_macs(num_classes, dim),
    }
    stages["total"] = sum(stages.values())
    return stages


def baselinehd_macs(model: IndexedCNN, layer_index: int, dim: int,
                    num_classes: int) -> Dict[str, int]:
    """Per-sample inference MACs of BaselineHD (no manifold layer).

    The full F extracted features go straight into the F×D encoding —
    the cost the manifold learner exists to remove (Fig. 5).
    """
    num_features = model.feature_count(layer_index)
    stages = {
        "trunk": trunk_macs(model, layer_index),
        "manifold": 0,
        "encode": hd_encode_macs(num_features, dim),
        "similarity": hd_similarity_macs(num_classes, dim),
    }
    stages["total"] = sum(stages.values())
    return stages
