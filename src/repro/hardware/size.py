"""Model-size accounting (Table II: CNN vs NSHD vs BaselineHD).

Sizes follow the paper's storage model:

* CNN weights (and the manifold FC) are 32-bit floats;
* random-projection item memories are *binary* hypervectors — one bit per
  component (the constant-memory layout of Sec. VI-A);
* class hypervectors are 32-bit accumulators (they are retrained
  incrementally and therefore kept at full precision).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.base import IndexedCNN
from .macs import count_parameters

__all__ = ["SizeBreakdown", "cnn_size_bytes", "nshd_size_bytes",
           "baselinehd_size_bytes"]

_FLOAT_BYTES = 4


@dataclass
class SizeBreakdown:
    """Byte-level decomposition of one system's learned parameters."""

    trunk: int = 0
    classifier: int = 0
    manifold: int = 0
    projection: int = 0
    class_hvs: int = 0

    @property
    def total(self) -> int:
        return (self.trunk + self.classifier + self.manifold +
                self.projection + self.class_hvs)

    @property
    def total_mb(self) -> float:
        return self.total / (1024.0 * 1024.0)


def cnn_size_bytes(model: IndexedCNN) -> SizeBreakdown:
    """Full CNN: every trainable parameter at float32."""
    trunk = count_parameters(model, model.num_feature_layers() - 1)
    total = count_parameters(model)
    return SizeBreakdown(trunk=trunk * _FLOAT_BYTES,
                         classifier=(total - trunk) * _FLOAT_BYTES)


def _binary_projection_bytes(in_features: int, dim: int) -> int:
    """F×D bipolar item memory stored one bit per component."""
    return (in_features * dim + 7) // 8


def nshd_size_bytes(model: IndexedCNN, layer_index: int, dim: int,
                    reduced_features: int, num_classes: int
                    ) -> SizeBreakdown:
    """NSHD: truncated trunk + manifold FC + binary F̂×D projection + M."""
    channels, height, width = model.feature_shape(layer_index)
    if height >= 2 and width >= 2:
        pooled = channels * (height // 2) * (width // 2)
    else:
        pooled = channels * height * width
    manifold_params = pooled * reduced_features + reduced_features
    return SizeBreakdown(
        trunk=count_parameters(model, layer_index) * _FLOAT_BYTES,
        manifold=manifold_params * _FLOAT_BYTES,
        projection=_binary_projection_bytes(reduced_features, dim),
        class_hvs=num_classes * dim * _FLOAT_BYTES,
    )


def baselinehd_size_bytes(model: IndexedCNN, layer_index: int, dim: int,
                          num_classes: int) -> SizeBreakdown:
    """BaselineHD: truncated trunk + binary F×D projection + M.

    Without the manifold layer the projection item memory spans the full
    extracted feature count F, which is what makes BaselineHD larger than
    NSHD in Table II.
    """
    num_features = model.feature_count(layer_index)
    return SizeBreakdown(
        trunk=count_parameters(model, layer_index) * _FLOAT_BYTES,
        projection=_binary_projection_bytes(num_features, dim),
        class_hvs=num_classes * dim * _FLOAT_BYTES,
    )
