"""Post-training quantization of the NSHD inference path (Sec. VI-B).

The paper compiles NSHD through Vitis AI, which quantizes the model to
int8, and observes "very minor impacts on the prediction quality".  This
module reproduces that deployment step: symmetric per-tensor int8
quantization of the float stages (manifold FC weights, class
hypervectors, features) — the projection is already 1-bit — plus a
quantized inference routine so the claim is testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["QuantizedTensor", "quantize_symmetric", "QuantizedNSHD"]


@dataclass
class QuantizedTensor:
    """Symmetric int8 tensor: ``values ≈ q * scale``."""

    q: np.ndarray          # int8 payload
    scale: float

    def dequantize(self) -> np.ndarray:
        return self.q.astype(np.float64) * self.scale

    @property
    def nbytes(self) -> int:
        return self.q.nbytes

    # -- serialization (model-bundle payloads) -------------------------
    def to_arrays(self, prefix: str) -> Dict[str, np.ndarray]:
        """Flatten into checkpoint-ready arrays ``{prefix.q, prefix.scale}``.

        This is the payload format :class:`repro.serve.bundle.ModelBundle`
        embeds when exporting a quantized (Vitis-AI-style int8) bundle, so
        the serving engine can ship the exact integer weights the DPU
        deployment path would.
        """
        return {f"{prefix}.q": self.q,
                f"{prefix}.scale": np.float64(self.scale)}

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray],
                    prefix: str) -> "QuantizedTensor":
        """Inverse of :meth:`to_arrays` (KeyError when absent)."""
        return cls(q=np.asarray(arrays[f"{prefix}.q"]),
                   scale=float(np.asarray(arrays[f"{prefix}.scale"])))


def quantize_symmetric(values: np.ndarray, bits: int = 8
                       ) -> QuantizedTensor:
    """Symmetric per-tensor quantization to ``bits`` (default int8)."""
    if not 2 <= bits <= 16:
        raise ValueError("bits must be in [2, 16]")
    values = np.asarray(values, dtype=np.float64)
    qmax = 2 ** (bits - 1) - 1
    peak = np.abs(values).max()
    scale = (peak / qmax) if peak > 0 else 1.0
    q = np.clip(np.round(values / scale), -qmax, qmax)
    dtype = np.int8 if bits <= 8 else np.int16
    return QuantizedTensor(q.astype(dtype), float(scale))


class QuantizedNSHD:
    """Int8 deployment view of a trained :class:`repro.learn.NSHD` model.

    Quantizes the manifold FC (weights + per-batch activations) and the
    class hypervectors; the random projection stays 1-bit.  Inference
    runs entirely on integer payloads with float rescaling at stage
    boundaries, mirroring the DPU execution model.
    """

    def __init__(self, nshd, bits: int = 8):
        self.nshd = nshd
        self.bits = bits
        if nshd.manifold is not None:
            self.fc_weight = quantize_symmetric(
                nshd.manifold.fc.weight.data, bits)
            self.fc_bias = nshd.manifold.fc.bias.data.copy() \
                if nshd.manifold.fc.bias is not None else None
        else:
            self.fc_weight = None
            self.fc_bias = None
        self.class_matrix = quantize_symmetric(nshd.trainer.class_matrix,
                                               bits)

    # ------------------------------------------------------------------
    def _reduced(self, features_scaled: np.ndarray) -> np.ndarray:
        manifold = self.nshd.manifold
        if manifold is None:
            return features_scaled
        x = features_scaled.reshape(-1, *manifold.feature_shape)
        if manifold.pooling:
            n, c, h, w = x.shape
            x = x[:, :, :h // 2 * 2, :w // 2 * 2]
            x = x.reshape(n, c, h // 2, 2, w // 2, 2).max(axis=(3, 5))
        pooled = x.reshape(len(x), -1)
        q_in = quantize_symmetric(pooled, self.bits)
        # Integer GEMM with a single rescale, DPU style.
        acc = q_in.q.astype(np.int32) @ \
            self.fc_weight.q.astype(np.int32).T
        out = acc.astype(np.float64) * (q_in.scale * self.fc_weight.scale)
        if self.fc_bias is not None:
            out = out + self.fc_bias
        return out

    def predict(self, images: np.ndarray) -> np.ndarray:
        return self.predict_features(self.nshd.extractor.extract(images))

    def predict_features(self, raw_features: np.ndarray) -> np.ndarray:
        """Quantized prediction from precomputed (raw) extractor features."""
        features = self.nshd.scaler.transform(raw_features)
        reduced = self._reduced(features)
        encoded = self.nshd.encoder.encode(reduced)  # 1-bit stage
        sims = encoded @ self.class_matrix.q.astype(np.float64).T
        return sims.argmax(axis=1)

    def accuracy_features(self, raw_features: np.ndarray,
                          labels: np.ndarray) -> float:
        return float((self.predict_features(raw_features) ==
                      np.asarray(labels)).mean())

    def payload_arrays(self) -> Dict[str, np.ndarray]:
        """Checkpoint-ready int8 payloads (FC weight/bias + class HVs).

        The serving bundle (:class:`repro.serve.bundle.ModelBundle`)
        embeds exactly these arrays when exported with ``quantize_bits``,
        so the served int8 path and this deployment view share one
        payload format.
        """
        arrays = self.class_matrix.to_arrays("classes")
        if self.fc_weight is not None:
            arrays.update(self.fc_weight.to_arrays("manifold.weight"))
            if self.fc_bias is not None:
                arrays["manifold.bias"] = self.fc_bias
        return arrays

    def model_bytes(self) -> int:
        """Quantized payload size (FC + class HVs + binary projection)."""
        total = self.class_matrix.nbytes
        if self.fc_weight is not None:
            total += self.fc_weight.nbytes
            if self.fc_bias is not None:
                total += self.fc_bias.nbytes
        proj = self.nshd.encoder
        total += (proj.in_features * proj.dim + 7) // 8
        return total
