"""Minimal deep-learning substrate (autograd, layers, optimizers).

This package stands in for PyTorch in the NSHD reproduction: it provides
just enough machinery to (i) train the CNN feature extractors / teachers,
(ii) backpropagate through the manifold learner with a straight-through
estimator, and (iii) serialize trained models.
"""

from . import functional
from .layers import (AdaptiveAvgPool2d, AvgPool2d, BatchNorm2d, Conv2d,
                     DepthwiseConv2d, Dropout, Flatten, Identity, Linear,
                     MaxPool2d, Module, Parameter, ReLU, ReLU6, Sequential,
                     Sigmoid, SiLU, TraceRecord, trace)
from .optim import SGD, Adam, CosineLR, Optimizer, StepLR
from .serialize import (CheckpointError, load_manifest, load_module,
                        load_state, load_state_with_manifest,
                        manifest_section, save_module, save_state)
from .tensor import Tensor, concatenate, is_grad_enabled, no_grad, stack

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "stack", "concatenate",
    "functional",
    "Module", "Parameter", "Sequential", "Conv2d", "DepthwiseConv2d",
    "Linear", "BatchNorm2d", "MaxPool2d", "AvgPool2d", "AdaptiveAvgPool2d",
    "ReLU", "ReLU6", "SiLU", "Sigmoid", "Dropout", "Flatten", "Identity",
    "trace", "TraceRecord",
    "Optimizer", "SGD", "Adam", "StepLR", "CosineLR",
    "save_state", "load_state", "save_module", "load_module",
    "load_manifest", "load_state_with_manifest", "manifest_section",
    "CheckpointError",
]
