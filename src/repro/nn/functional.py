"""Differentiable neural-network operations (conv, pool, losses).

All functions take and return :class:`repro.nn.tensor.Tensor` values and
participate in the autograd tape.  Convolution is implemented with an
im2col lowering so that the heavy lifting is a single GEMM, which is the
same lowering most deep-learning frameworks (and the DPU cost model in
``repro.hardware``) assume.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, _profiled_op

__all__ = [
    "im2col_indices", "conv2d", "max_pool2d", "avg_pool2d",
    "adaptive_avg_pool2d", "linear", "relu", "relu6", "silu", "sigmoid",
    "softmax", "log_softmax", "cross_entropy", "kl_div_with_logits",
    "dropout", "batch_norm2d", "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col_indices(x: np.ndarray, kernel: int, stride: int,
                   padding: int) -> Tuple[np.ndarray, int, int]:
    """Lower an NCHW array into column form for GEMM convolution.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C * kernel * kernel, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    # Gather all kernel-window views with stride tricks, then reorder.
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        n, c * kernel * kernel, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
            kernel: int, stride: int, padding: int) -> np.ndarray:
    """Adjoint of :func:`im2col_indices` (scatter-add back to NCHW)."""
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    x_padded = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    for ki in range(kernel):
        for kj in range(kernel):
            x_padded[:, :, ki:ki + stride * out_h:stride,
                     kj:kj + stride * out_w:stride] += cols6[:, :, ki, kj]
    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    """2-D convolution over an NCHW tensor.

    ``weight`` has shape ``(out_channels, in_channels // groups, k, k)``.
    ``groups == in_channels`` gives a depthwise convolution, used by the
    MobileNetV2/EfficientNet-style extractors.
    """
    n, c, h, w = x.shape
    out_c, group_in, kernel, kernel2 = weight.shape
    if kernel != kernel2:
        raise ValueError("only square kernels are supported")
    if c % groups or out_c % groups:
        raise ValueError(
            f"channels ({c} in / {out_c} out) not divisible by groups={groups}")
    if group_in != c // groups:
        raise ValueError(
            f"weight expects {group_in} input channels per group, input "
            f"provides {c // groups}")

    cols, out_h, out_w = im2col_indices(x.data, kernel, stride, padding)
    group_out = out_c // groups
    ck2 = group_in * kernel * kernel
    w_mat = weight.data.reshape(groups, group_out, ck2)
    cols_g = cols.reshape(n, groups, ck2, out_h * out_w)
    # (g, go, ck2) @ (n, g, ck2, hw) -> (n, g, go, hw)
    out = np.einsum("gok,ngkl->ngol", w_mat, cols_g, optimize=True)
    out = out.reshape(n, out_c, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, out_c, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])
    x_data = x.data  # retained for the backward; cols are recomputed there
    del cols, cols_g  # the k^2-times-larger buffers must not be captured

    def backward(grad: np.ndarray) -> None:
        grad_g = grad.reshape(n, groups, group_out, out_h * out_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            # Recompute the im2col lowering instead of keeping it alive for
            # the whole forward pass: the column buffer is kernel^2 times
            # the activation size, and deep models would otherwise hold
            # one per conv layer simultaneously.
            re_cols, _, _ = im2col_indices(x_data, kernel, stride, padding)
            re_cols = re_cols.reshape(n, groups, ck2, out_h * out_w)
            grad_w = np.einsum("ngol,ngkl->gok", grad_g, re_cols,
                               optimize=True)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = np.einsum("gok,ngol->ngkl", weight.data.reshape(
                groups, group_out, ck2), grad_g, optimize=True)
            grad_cols = grad_cols.reshape(n, groups * ck2, out_h * out_w)
            x._accumulate(_col2im(grad_cols, x.shape, kernel, stride, padding))

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None,
               padding: int = 0) -> Tensor:
    """Max pooling over an NCHW tensor."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    cols, out_h, out_w = im2col_indices(
        x.data.reshape(n * c, 1, h, w), kernel, stride, padding)
    # cols: (n*c, k*k, out_h*out_w)
    arg = cols.argmax(axis=1)
    out = np.take_along_axis(cols, arg[:, None, :], axis=1)[:, 0, :]
    out = out.reshape(n, c, out_h, out_w)
    cols_shape = cols.shape
    del cols  # only the argmax indices are needed for the backward

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n * c, 1, out_h * out_w)
        grad_cols = np.zeros(cols_shape)
        np.put_along_axis(grad_cols, arg[:, None, :], grad_flat, axis=1)
        grad_x = _col2im(grad_cols, (n * c, 1, h, w), kernel, stride, padding)
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None,
               padding: int = 0) -> Tensor:
    """Average pooling over an NCHW tensor."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    cols, out_h, out_w = im2col_indices(
        x.data.reshape(n * c, 1, h, w), kernel, stride, padding)
    out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    cols_shape = cols.shape
    del cols  # the backward only needs the column-buffer shape

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n * c, 1, out_h * out_w)
        grad_cols = np.broadcast_to(grad_flat / (kernel * kernel),
                                    cols_shape).copy()
        grad_x = _col2im(grad_cols, (n * c, 1, h, w), kernel, stride, padding)
        x._accumulate(grad_x.reshape(x.shape))

    return Tensor._make(out, (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Adaptive average pooling (only ``output_size == 1`` is needed)."""
    if output_size != 1:
        raise NotImplementedError("only global average pooling is supported")
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3), keepdims=True)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(np.broadcast_to(grad / (h * w), x.shape))

    return Tensor._make(out, (x,), backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (weight: out_features × in_features)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    return x.relu()


def relu6(x: Tensor) -> Tensor:
    """ReLU capped at 6, as used by MobileNetV2."""
    return x.clamp(0.0, 6.0)


def silu(x: Tensor) -> Tensor:
    """SiLU / swish activation, as used by EfficientNet."""
    return x * x.sigmoid()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits and integer class labels."""
    labels = np.asarray(labels)
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(len(labels)), labels]
    return -picked.mean()


def kl_div_with_logits(student_logits: Tensor, teacher_logits: np.ndarray,
                       temperature: float = 1.0) -> Tensor:
    """Hinton-style distillation loss ``T^2 * KL(teacher || student)``.

    Used as a reference implementation when validating the HD distillation
    update rule against a gradient-based student.
    """
    teacher = np.asarray(teacher_logits, dtype=np.float64) / temperature
    teacher = teacher - teacher.max(axis=-1, keepdims=True)
    teacher_probs = np.exp(teacher)
    teacher_probs /= teacher_probs.sum(axis=-1, keepdims=True)
    student_log_probs = log_softmax(student_logits * (1.0 / temperature),
                                    axis=-1)
    loss = -(Tensor(teacher_probs) * student_log_probs).sum(axis=-1).mean()
    return loss * (temperature ** 2)


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def batch_norm2d(x: Tensor, gamma: Tensor, beta: Tensor,
                 running_mean: np.ndarray, running_var: np.ndarray,
                 training: bool, momentum: float = 0.1,
                 eps: float = 1e-5) -> Tensor:
    """Batch normalization over the channel axis of an NCHW tensor.

    ``running_mean`` / ``running_var`` are updated in place during training,
    mirroring PyTorch semantics.
    """
    if training:
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean
        running_var *= (1.0 - momentum)
        running_var += momentum * var
    else:
        mean = running_mean
        var = running_var

    mean_b = mean.reshape(1, -1, 1, 1)
    inv_std = 1.0 / np.sqrt(var.reshape(1, -1, 1, 1) + eps)
    x_hat = (x.data - mean_b) * inv_std
    out = gamma.data.reshape(1, -1, 1, 1) * x_hat + beta.data.reshape(1, -1, 1, 1)

    n, c, h, w = x.shape
    m = n * h * w

    def backward(grad: np.ndarray) -> None:
        g = gamma.data.reshape(1, -1, 1, 1)
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=(0, 2, 3)))
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if x.requires_grad:
            if training:
                grad_xhat = grad * g
                sum_g = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
                sum_gx = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
                grad_x = (grad_xhat - sum_g / m - x_hat * sum_gx / m) * inv_std
            else:
                grad_x = grad * g * inv_std
            x._accumulate(grad_x)

    return Tensor._make(out, (x, gamma, beta), backward)


# ----------------------------------------------------------------------
# Dormant profiling hooks on the heavy non-composite ops.  Composite ops
# (linear, relu/relu6/silu/sigmoid, softmax, the losses) are built from
# already-profiled Tensor primitives and stay unwrapped so the
# profiler's flat op table never double-counts.
# ----------------------------------------------------------------------
conv2d = _profiled_op("conv2d", conv2d)
max_pool2d = _profiled_op("max_pool2d", max_pool2d)
avg_pool2d = _profiled_op("avg_pool2d", avg_pool2d)
adaptive_avg_pool2d = _profiled_op("adaptive_avg_pool2d", adaptive_avg_pool2d)
batch_norm2d = _profiled_op("batch_norm2d", batch_norm2d)
dropout = _profiled_op("dropout", dropout)
