"""Save/load module state dicts as compressed npz archives.

Checkpoints are written **atomically** — serialized to a temporary file in
the destination directory, fsync'ed, then moved into place with
``os.replace`` — so a process killed mid-save can never leave a
half-written archive under the target name.  Every archive additionally
carries a versioned JSON *manifest* (stored as a uint8 array under
``__manifest__``) with a CRC32 checksum per array, so truncated or
bit-corrupted checkpoints are detected at load time with a
:class:`CheckpointError` instead of silently producing a garbage model.

Archives written by older versions of this module (no manifest) still
load; they simply skip integrity verification.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .layers import Module

__all__ = [
    "save_state", "load_state", "load_state_with_manifest", "load_manifest",
    "manifest_section", "save_module", "load_module", "CheckpointError",
    "MANIFEST_KEY", "FORMAT_VERSION", "GRAPH_SECTION",
]

#: Reserved archive member holding the JSON manifest (uint8 payload).
MANIFEST_KEY = "__manifest__"

#: Manifest section carrying a serialized stage-graph topology
#: (``{"topology": StageGraph.topology()}``).  Written by pipeline
#: checkpoints and model bundles; absent from pre-refactor archives,
#: which remain loadable (consumers fall back to legacy synthesis).
GRAPH_SECTION = "graph"

#: Current checkpoint manifest format version.
FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint is missing, truncated, corrupted, or mismatched."""


def _array_crc(array: np.ndarray) -> int:
    """CRC32 of an array's raw little-endian bytes (shape/dtype-agnostic)."""
    contiguous = np.ascontiguousarray(array)
    return zlib.crc32(contiguous.tobytes()) & 0xFFFFFFFF


def _build_manifest(state: Dict[str, np.ndarray],
                    meta: Optional[Dict[str, Any]],
                    sections: Optional[Dict[str, Dict[str, Any]]] = None
                    ) -> Dict[str, Any]:
    manifest: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "arrays": {
            name: {
                "crc32": _array_crc(array),
                "shape": list(array.shape),
                "dtype": str(array.dtype),
            }
            for name, array in state.items()
        },
        "meta": meta or {},
    }
    if sections:
        manifest["sections"] = dict(sections)
    return manifest


def manifest_section(manifest: Optional[Dict[str, Any]],
                     name: str) -> Optional[Dict[str, Any]]:
    """Return a named manifest section (or None).

    Sections are free-form JSON sub-documents written via the
    ``sections`` argument of :func:`save_state`.  Subsystems use them to
    attach their own schema to a checkpoint without colliding with the
    pipeline ``meta`` — e.g. the serving layer's ``"bundle"`` section
    (see :mod:`repro.serve.bundle`).  Legacy archives (no manifest, or
    manifests written before sections existed) simply return None.
    """
    if manifest is None:
        return None
    sections = manifest.get("sections")
    if not isinstance(sections, dict):
        return None
    section = sections.get(name)
    return section if isinstance(section, dict) else None


def save_state(state: Dict[str, np.ndarray], path: str,
               meta: Optional[Dict[str, Any]] = None,
               sections: Optional[Dict[str, Dict[str, Any]]] = None
               ) -> None:
    """Atomically write a state dict (plus optional JSON ``meta``) to ``path``.

    The archive is first serialized to a temporary sibling file and then
    moved over ``path`` with ``os.replace``; readers never observe a
    partially-written checkpoint.  ``meta`` must be JSON-serializable and
    is embedded in the integrity manifest (see :func:`load_manifest`).
    ``sections`` optionally adds named JSON sub-documents to the manifest
    (see :func:`manifest_section`); adding a section does not bump the
    format version — readers that don't know a section ignore it.
    """
    if MANIFEST_KEY in state:
        raise ValueError(f"state key {MANIFEST_KEY!r} is reserved for the "
                         "checkpoint manifest")
    arrays = {name: np.asarray(value) for name, value in state.items()}
    manifest = _build_manifest(arrays, meta, sections)
    payload = np.frombuffer(
        json.dumps(manifest, sort_keys=True).encode("utf-8"), dtype=np.uint8)

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays, **{MANIFEST_KEY: payload})
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _read_archive(path: str) -> Tuple[Dict[str, np.ndarray],
                                      Optional[Dict[str, Any]]]:
    """Read (state, manifest-or-None), wrapping IO/zip failures."""
    if not os.path.exists(path):
        raise CheckpointError(f"checkpoint not found: {path!r}")
    try:
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
    except CheckpointError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError, ...
        raise CheckpointError(
            f"cannot read checkpoint {path!r} (truncated or corrupted "
            f"archive): {exc}") from exc
    manifest = None
    payload = state.pop(MANIFEST_KEY, None)
    if payload is not None:
        try:
            manifest = json.loads(payload.tobytes().decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {path!r} has an unreadable manifest: {exc}"
            ) from exc
    return state, manifest


def _verify(state: Dict[str, np.ndarray], manifest: Dict[str, Any],
            path: str) -> None:
    version = manifest.get("format_version")
    if not isinstance(version, int) or version < 1:
        raise CheckpointError(
            f"checkpoint {path!r} has an invalid manifest version "
            f"{version!r}")
    if version > FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} was written by a newer format "
            f"(version {version} > supported {FORMAT_VERSION})")
    declared = manifest.get("arrays", {})
    missing = sorted(set(declared) - set(state))
    extra = sorted(set(state) - set(declared))
    if missing or extra:
        raise CheckpointError(
            f"checkpoint {path!r} does not match its manifest: "
            f"missing arrays {missing}, undeclared arrays {extra}")
    corrupt = [name for name, spec in declared.items()
               if _array_crc(state[name]) != spec.get("crc32")]
    if corrupt:
        raise CheckpointError(
            f"checkpoint {path!r} failed CRC32 verification for arrays "
            f"{sorted(corrupt)} — the file is corrupted")


def load_state_with_manifest(path: str, verify: bool = True
                             ) -> Tuple[Dict[str, np.ndarray],
                                        Optional[Dict[str, Any]]]:
    """Read ``(state, manifest)``; ``manifest`` is None for legacy files."""
    state, manifest = _read_archive(path)
    if verify and manifest is not None:
        _verify(state, manifest, path)
    return state, manifest


def load_state(path: str, verify: bool = True) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`.

    With ``verify=True`` (default) the per-array CRC32 checksums of the
    manifest are validated and a :class:`CheckpointError` names the
    corrupted arrays.  Legacy archives without a manifest load unverified.
    """
    return load_state_with_manifest(path, verify=verify)[0]


def load_manifest(path: str) -> Optional[Dict[str, Any]]:
    """Return the JSON manifest of a checkpoint (None for legacy files)."""
    return _read_archive(path)[1]


def save_module(module: Module, path: str,
                meta: Optional[Dict[str, Any]] = None) -> None:
    """Serialize a module's parameters and buffers (atomically)."""
    save_state(module.state_dict(), path, meta=meta)


def load_module(module: Module, path: str) -> Module:
    """Load parameters and buffers into ``module`` in place.

    Raises a descriptive :class:`CheckpointError` — naming the file and
    listing the missing/unexpected keys — when the archive does not match
    the module's ``state_dict`` schema.
    """
    state = load_state(path)
    expected = set(module.state_dict())
    found = set(state)
    missing = sorted(expected - found)
    extra = sorted(found - expected)
    if missing or extra:
        raise CheckpointError(
            f"cannot load {type(module).__name__} from {path!r}: "
            f"state dict mismatch (missing keys {missing}, "
            f"unexpected keys {extra})")
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(
            f"cannot load {type(module).__name__} from {path!r}: {exc}"
        ) from exc
    return module
