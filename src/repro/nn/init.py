"""Weight initializers for the neural-network substrate."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["kaiming_normal", "xavier_uniform", "uniform_fan_in"]


def kaiming_normal(shape: Tuple[int, ...], fan_in: int,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He-normal initialization, appropriate for ReLU-family activations."""
    rng = rng or np.random.default_rng()
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot-uniform initialization."""
    rng = rng or np.random.default_rng()
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def uniform_fan_in(shape: Tuple[int, ...], fan_in: int,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """PyTorch-default linear-layer initialization (U(-1/sqrt(fan_in), ...))."""
    rng = rng or np.random.default_rng()
    limit = 1.0 / np.sqrt(fan_in)
    return rng.uniform(-limit, limit, size=shape)
