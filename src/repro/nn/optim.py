"""Optimizers and learning-rate schedules for the CNN substrate."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineLR"]


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel = self.momentum * vel + grad
                self._velocity[id(param)] = vel
                grad = grad + self.momentum * vel if self.nesterov else vel
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba)."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        decays = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma ** decays)


class CosineLR:
    """Cosine-annealed learning rate over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 0.0):
        self.optimizer = optimizer
        self.total_epochs = max(1, total_epochs)
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        progress = min(1.0, self.epoch / self.total_epochs)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cosine
