"""Optimizers and learning-rate schedules for the CNN substrate."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineLR"]


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing.  Slot state (momenta etc.) is keyed by the *index*
    # of each parameter in ``self.params`` so it survives serialization
    # (the in-memory keying by ``id()`` obviously does not).
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Serializable optimizer state (slot variables, step counters)."""
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state written by :meth:`state_dict`."""
        if state:
            raise ValueError(
                f"{type(self).__name__} carries no state but got keys "
                f"{sorted(state)}")

    def _slot_from_state(self, key: str, value: np.ndarray) -> np.ndarray:
        """Validate an indexed slot entry against its parameter's shape."""
        index = int(key.rsplit(".", 1)[1])
        if not 0 <= index < len(self.params):
            raise ValueError(f"optimizer state key {key!r} indexes "
                             f"parameter {index} but only "
                             f"{len(self.params)} exist")
        value = np.asarray(value, dtype=np.float64)
        if value.shape != self.params[index].shape:
            raise ValueError(
                f"optimizer state {key!r} has shape {value.shape}, "
                f"expected {self.params[index].shape}")
        return value


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel = self.momentum * vel + grad
                self._velocity[id(param)] = vel
                grad = grad + self.momentum * vel if self.nesterov else vel
            param.data -= self.lr * grad

    def state_dict(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for index, param in enumerate(self.params):
            velocity = self._velocity.get(id(param))
            if velocity is not None:
                out[f"velocity.{index}"] = velocity.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        velocity: Dict[int, np.ndarray] = {}
        for key, value in state.items():
            if not key.startswith("velocity."):
                raise ValueError(f"unknown SGD state key {key!r}")
            index = int(key.rsplit(".", 1)[1])
            velocity[id(self.params[index])] = \
                self._slot_from_state(key, value)
        self._velocity = velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba)."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {"step": np.asarray(self._t)}
        for index, param in enumerate(self.params):
            m = self._m.get(id(param))
            if m is not None:
                out[f"m.{index}"] = m.copy()
                out[f"v.{index}"] = self._v[id(param)].copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if "step" not in state:
            raise ValueError("Adam state is missing the 'step' counter")
        moments_m: Dict[int, np.ndarray] = {}
        moments_v: Dict[int, np.ndarray] = {}
        for key, value in state.items():
            if key == "step":
                continue
            if key.startswith("m."):
                target = moments_m
            elif key.startswith("v."):
                target = moments_v
            else:
                raise ValueError(f"unknown Adam state key {key!r}")
            index = int(key.rsplit(".", 1)[1])
            target[id(self.params[index])] = self._slot_from_state(key, value)
        if set(moments_m) != set(moments_v):
            raise ValueError("Adam state has mismatched m/v entries")
        self._t = int(state["step"])
        self._m = moments_m
        self._v = moments_v


class StepLR:
    """Multiply the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        decays = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma ** decays)


class CosineLR:
    """Cosine-annealed learning rate over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 0.0):
        self.optimizer = optimizer
        self.total_epochs = max(1, total_epochs)
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        progress = min(1.0, self.epoch / self.total_epochs)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cosine
