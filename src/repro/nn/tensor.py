"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the deep-learning substrate used by the
NSHD reproduction.  It implements a small but complete autograd engine in
the style of PyTorch: a :class:`Tensor` wraps a ``numpy.ndarray`` and every
differentiable operation records a backward closure on a dynamically built
tape.  Calling :meth:`Tensor.backward` walks the tape in reverse
topological order and accumulates gradients.

Only the operations that the NSHD pipeline actually needs are implemented,
but each is implemented with full broadcasting support and is validated
against finite differences in the test suite.
"""

from __future__ import annotations

import contextlib
import functools
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "stack", "concatenate",
           "set_profiler", "get_profiler"]

_GRAD_ENABLED = True

# ----------------------------------------------------------------------
# Profiling hook.  ``repro.telemetry.Profiler`` installs itself here; the
# op wrappers below reduce to a single ``is None`` check when no profiler
# is active, so the dormant hooks cost nothing measurable (asserted by
# scripts/check_telemetry.sh).
# ----------------------------------------------------------------------
_PROFILER = None
_perf_counter = time.perf_counter


def set_profiler(profiler) -> None:
    """Install (or, with ``None``, remove) the active op profiler.

    Normal code should use :class:`repro.telemetry.Profiler` as a context
    manager instead of calling this directly.
    """
    global _PROFILER
    _PROFILER = profiler


def get_profiler():
    """Return the currently installed profiler (or ``None``)."""
    return _PROFILER


def _profiled_op(op_name: str, fn: Callable) -> Callable:
    """Wrap an op so an installed profiler sees its time/shape/cost.

    The disabled path is a single global load + ``None`` check before
    delegating to the original implementation (kept reachable at
    ``wrapper.__wrapped__`` for the overhead micro-benchmark).
    """

    def wrapper(*args, **kwargs):
        profiler = _PROFILER
        if profiler is None:
            return fn(*args, **kwargs)
        start = _perf_counter()
        out = fn(*args, **kwargs)
        profiler.record_op(op_name, _perf_counter() - start, out, args)
        return out

    functools.update_wrapper(wrapper, fn)
    return wrapper


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tape recording.

    Used for inference passes (e.g. running a frozen feature extractor)
    where building the tape would waste memory.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    Numpy broadcasting implicitly expands operands; the corresponding
    gradient operation is a sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that supports reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of ``float64``.
    requires_grad:
        When ``True`` (and grad mode is enabled) operations involving this
        tensor are recorded so that :meth:`backward` can compute ``grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Tape construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if grad is None:
            if self.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape "
                f"{self.shape}")

        order: List[Tensor] = []
        visited = set()

        def visit(node: Tensor) -> None:
            stack = [(node, iter(node._parents))]
            visited.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and parent.requires_grad:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self)

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(grad)

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(-grad)

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_t.data)
            other_t._accumulate(grad * self.data)

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_t.data)
            other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(grad, other_t.data)
                                     if grad.ndim == 1 else
                                     grad[..., None] * other_t.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other_t.data, -1, -2))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, grad)
                                        if grad.ndim == 1 else
                                        self.data[..., None] @ grad[None, :])
                else:
                    other_t._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def clamp(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data > low) & (self.data < high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(data, (self,), backward)

    def sign_ste(self) -> "Tensor":
        """Sign with a straight-through estimator gradient.

        Forward: ``sign(x)`` (zeros map to +1 so outputs are bipolar).
        Backward: identity gradient clipped to ``|x| <= 1``, the standard
        straight-through estimator used for binary neural networks
        (Courbariaux et al., BinaryNet) and adopted by NSHD's manifold
        training (Sec. V-C of the paper).
        """
        data = np.where(self.data >= 0, 1.0, -1.0)
        mask = np.abs(self.data) <= 1.0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded_val = data
            expanded_grad = grad
            if axis is not None and not keepdims:
                expanded_val = np.expand_dims(data, axis)
                expanded_grad = np.expand_dims(grad, axis)
            mask = (self.data == expanded_val)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            self._accumulate(mask * expanded_grad / counts)

        return Tensor._make(data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def flatten(self, start_axis: int = 1) -> "Tensor":
        """Flatten all axes from ``start_axis`` onward (batch-preserving)."""
        new_shape = self.shape[:start_axis] + (-1,)
        return self.reshape(new_shape)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two axes of an NCHW tensor."""
        if padding == 0:
            return self
        p = padding
        pads = [(0, 0)] * (self.ndim - 2) + [(p, p), (p, p)]
        data = np.pad(self.data, pads)

        def backward(grad: np.ndarray) -> None:
            slices = tuple([slice(None)] * (self.ndim - 2) +
                           [slice(p, -p), slice(p, -p)])
            self._accumulate(grad[slices])

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Comparisons (no gradient; returned as plain arrays)
    # ------------------------------------------------------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __eq__(self, other):  # type: ignore[override]
        return self.data == _as_array(other)

    def __hash__(self):
        return id(self)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, propagating gradients."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tensors, backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis, propagating gradients."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    return Tensor._make(data, tensors, backward)


# ----------------------------------------------------------------------
# Install the dormant profiling wrappers on every *primitive* op.
# Composite ops (mean, var, sqrt, flatten, sign via sign_ste, linear)
# delegate to primitives and are deliberately left unwrapped so the
# profiler's flat op table never double-counts.
# ----------------------------------------------------------------------
_PROFILED_TENSOR_OPS = {
    "__add__": "add", "__neg__": "neg", "__sub__": "sub", "__mul__": "mul",
    "__truediv__": "div", "__pow__": "pow", "__matmul__": "matmul",
    "exp": "exp", "log": "log", "tanh": "tanh", "sigmoid": "sigmoid",
    "relu": "relu", "clamp": "clamp", "abs": "abs", "sign_ste": "sign_ste",
    "sum": "sum", "max": "max", "reshape": "reshape",
    "transpose": "transpose", "__getitem__": "getitem", "pad2d": "pad2d",
}

for _method, _op in _PROFILED_TENSOR_OPS.items():
    setattr(Tensor, _method, _profiled_op(_op, getattr(Tensor, _method)))
del _method, _op

# Reflected aliases were bound to the unwrapped functions in the class
# body; re-point them at the wrapped versions.
Tensor.__radd__ = Tensor.__add__
Tensor.__rmul__ = Tensor.__mul__

stack = _profiled_op("stack", stack)
concatenate = _profiled_op("concatenate", concatenate)
