"""Layer/module abstractions built on the autograd engine.

The :class:`Module` base class mirrors the familiar PyTorch contract:
child modules and parameters are discovered by attribute assignment,
``state_dict`` round-trips through plain numpy arrays, and ``train()`` /
``eval()`` toggle behaviour of dropout and batch norm.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import tensor as _tensor_mod
from .init import kaiming_normal, uniform_fan_in
from .tensor import Tensor, _perf_counter

__all__ = [
    "Parameter", "Module", "Sequential", "Conv2d", "DepthwiseConv2d",
    "Linear", "BatchNorm2d", "MaxPool2d", "AvgPool2d", "AdaptiveAvgPool2d",
    "ReLU", "ReLU6", "SiLU", "Sigmoid", "Dropout", "Flatten", "Identity",
    "trace", "TraceRecord",
]


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network modules."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. batch-norm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: param.data.copy()
                 for name, param in self.named_parameters()}
        state.update({name: buf.copy() for name, buf in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_params) | set(own_buffers)) - set(state)
        if missing:
            raise KeyError(f"state dict is missing keys: {sorted(missing)}")
        for name, param in own_params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.shape}, "
                    f"got {value.shape}")
            param.data = value.copy()
        for name, buf in own_buffers.items():
            value = np.asarray(state[name], dtype=buf.dtype)
            buf[...] = value

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        profiler = _tensor_mod._PROFILER
        if profiler is not None and not self._modules:
            # Per-layer forward timing for leaf modules.  Containers
            # delegate to children, which report themselves.
            start = _perf_counter()
            out = self.forward(*args, **kwargs)
            profiler.record_layer(self, _perf_counter() - start, out)
        else:
            out = self.forward(*args, **kwargs)
        if _TRACE_STACK and not self._modules:
            # Only leaf modules are traced; containers delegate to children.
            in_shapes = tuple(a.shape for a in args if isinstance(a, Tensor))
            out_shape = out.shape if isinstance(out, Tensor) else None
            _TRACE_STACK[-1].append(TraceRecord(self, in_shapes, out_shape))
        return out


class TraceRecord:
    """One leaf-module invocation captured by :func:`trace`."""

    __slots__ = ("module", "input_shapes", "output_shape")

    def __init__(self, module: "Module", input_shapes, output_shape):
        self.module = module
        self.input_shapes = input_shapes
        self.output_shape = output_shape

    def __repr__(self) -> str:
        return (f"TraceRecord({type(self.module).__name__}, "
                f"in={self.input_shapes}, out={self.output_shape})")


_TRACE_STACK: List[List[TraceRecord]] = []


class trace:
    """Context manager capturing every leaf-module call inside the block.

    Used by ``repro.hardware`` to count MACs and memory traffic from real
    layer shapes instead of hand-maintained tables::

        with nn.trace() as records:
            model(x)
        macs = sum(conv_macs(r) for r in records)
    """

    def __enter__(self) -> List[TraceRecord]:
        records: List[TraceRecord] = []
        _TRACE_STACK.append(records)
        return records

    def __exit__(self, exc_type, exc, tb) -> None:
        _TRACE_STACK.pop()


class Sequential(Module):
    """Run child modules in order; supports indexing and slicing."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Sequential(*self.layers[index])
        return self.layers[index]

    def __iter__(self):
        return iter(self.layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Conv2d(Module):
    """2-D convolution layer with optional grouping."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 bias: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(kaiming_normal(shape, fan_in, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding, groups=self.groups)


class DepthwiseConv2d(Conv2d):
    """Depthwise convolution (groups == channels)."""

    def __init__(self, channels: int, kernel_size: int, stride: int = 1,
                 padding: int = 0, bias: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(channels, channels, kernel_size, stride=stride,
                         padding=padding, groups=channels, bias=bias, rng=rng)


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            uniform_fan_in((out_features, in_features), in_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class BatchNorm2d(Module):
    """Batch normalization over NCHW channel axis with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(x, self.gamma, self.beta, self.running_mean,
                              self.running_var, self.training,
                              momentum=self.momentum, eps=self.eps)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None,
                 padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None,
                 padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class ReLU6(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu6(x)


class SiLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.silu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Dropout(Module):
    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)


class Flatten(Module):
    def __init__(self, start_axis: int = 1):
        super().__init__()
        self.start_axis = start_axis

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_axis)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
