"""Exact-gradient t-SNE for hypervector visualization (Fig. 11).

A from-scratch implementation of van der Maaten & Hinton's t-SNE with
perplexity-calibrated Gaussian affinities, early exaggeration and
momentum gradient descent.  Exact O(n²) gradients are fine at the sample
counts Fig. 11 uses (a few hundred hypervectors).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["pairwise_affinities", "tsne"]


def _binary_search_sigma(distances: np.ndarray, target_entropy: float,
                         tol: float = 1e-5, max_iter: int = 50) -> np.ndarray:
    """Per-point conditional distributions with the desired perplexity."""
    n = distances.shape[0]
    probs = np.zeros_like(distances)
    for i in range(n):
        d = np.delete(distances[i], i)
        beta_low, beta_high = 0.0, np.inf
        beta = 1.0
        for _ in range(max_iter):
            p = np.exp(-d * beta)
            total = p.sum()
            if total <= 0:
                entropy = 0.0
                p = np.zeros_like(p)
            else:
                p = p / total
                nonzero = p > 0
                entropy = -np.sum(p[nonzero] * np.log(p[nonzero]))
            if abs(entropy - target_entropy) < tol:
                break
            if entropy > target_entropy:
                beta_low = beta
                beta = beta * 2 if beta_high == np.inf else \
                    (beta + beta_high) / 2
            else:
                beta_high = beta
                beta = (beta + beta_low) / 2
        row = np.insert(p, i, 0.0)
        probs[i] = row
    return probs


def pairwise_affinities(x: np.ndarray, perplexity: float = 30.0
                        ) -> np.ndarray:
    """Symmetrized high-dimensional affinity matrix P."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("expected a 2-D data matrix")
    if not 1.0 < perplexity < len(x):
        raise ValueError("perplexity must be in (1, n_samples)")
    norms = (x ** 2).sum(axis=1)
    distances = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(distances, 0.0)
    distances = np.maximum(distances, 0.0)
    cond = _binary_search_sigma(distances, np.log(perplexity))
    p = (cond + cond.T) / (2.0 * len(x))
    return np.maximum(p, 1e-12)


def tsne(x: np.ndarray, num_iters: int = 400, perplexity: float = 30.0,
         learning_rate: float = 100.0, early_exaggeration: float = 4.0,
         exaggeration_iters: int = 100, momentum: float = 0.8,
         rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Embed ``(n, D)`` data into 2-D with t-SNE.

    Returns an ``(n, 2)`` embedding.  Deterministic given ``rng``.
    """
    rng = rng or np.random.default_rng()
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    p = pairwise_affinities(x, perplexity)

    y = rng.normal(0.0, 1e-2, size=(n, 2))
    velocity = np.zeros_like(y)

    for iteration in range(num_iters):
        scale = early_exaggeration if iteration < exaggeration_iters else 1.0
        norms = (y ** 2).sum(axis=1)
        dist = norms[:, None] + norms[None, :] - 2.0 * (y @ y.T)
        inv = 1.0 / (1.0 + np.maximum(dist, 0.0))
        np.fill_diagonal(inv, 0.0)
        q = inv / inv.sum()
        q = np.maximum(q, 1e-12)

        coeff = (scale * p - q) * inv
        grad = 4.0 * ((np.diag(coeff.sum(axis=1)) - coeff) @ y)

        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y
