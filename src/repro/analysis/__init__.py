"""Analysis utilities: t-SNE, KD hyperparameter search, interpretability."""

from .hyperparam import (PAPER_ALPHAS, PAPER_TEMPERATURES, GridSearchResult,
                         kd_grid_search)
from .interpret import class_alignment, cluster_separation, silhouette_score
from .tsne import pairwise_affinities, tsne

__all__ = [
    "tsne", "pairwise_affinities",
    "GridSearchResult", "kd_grid_search", "PAPER_TEMPERATURES",
    "PAPER_ALPHAS",
    "cluster_separation", "class_alignment", "silhouette_score",
]
