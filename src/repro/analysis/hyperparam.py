"""KD hyperparameter search over (temperature, alpha) — Fig. 9.

The paper grids t ∈ [12, 17] × α ∈ [0, 0.9] for one model/layer and
reports test accuracy per cell; the α = 0 row is plain MASS (no KD), so
the grid simultaneously measures the distillation boost.  Because the
features, manifold output and encoding are fixed during the search, each
cell only needs an HD retraining run, which is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..learn.distill import DistillationTrainer

__all__ = ["GridSearchResult", "kd_grid_search"]

PAPER_TEMPERATURES = (12.0, 13.0, 14.0, 15.0, 16.0, 17.0)
PAPER_ALPHAS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass
class GridSearchResult:
    """Accuracy grid over (alpha, temperature)."""

    temperatures: Tuple[float, ...]
    alphas: Tuple[float, ...]
    accuracies: np.ndarray  # (len(alphas), len(temperatures))

    def best(self) -> Tuple[float, float, float]:
        """(alpha, temperature, accuracy) of the best cell."""
        idx = np.unravel_index(self.accuracies.argmax(),
                               self.accuracies.shape)
        return (self.alphas[idx[0]], self.temperatures[idx[1]],
                float(self.accuracies[idx]))

    def kd_boost(self) -> float:
        """Best accuracy minus the α=0 (no-KD) accuracy — Fig. 9's claim."""
        if 0.0 not in self.alphas:
            raise ValueError("grid must include alpha=0 to measure boost")
        baseline = self.accuracies[self.alphas.index(0.0)].max()
        return float(self.accuracies.max() - baseline)


def kd_grid_search(train_hvs: np.ndarray, train_labels: np.ndarray,
                   teacher_logits: np.ndarray, test_hvs: np.ndarray,
                   test_labels: np.ndarray, num_classes: int, dim: int,
                   temperatures: Sequence[float] = PAPER_TEMPERATURES,
                   alphas: Sequence[float] = PAPER_ALPHAS,
                   epochs: int = 15, lr: float = 0.05,
                   batch_size: int = 64, seed: int = 0) -> GridSearchResult:
    """Retrain the HD model for every (t, α) cell; return test accuracies.

    Hypervectors are precomputed (fixed encoder/manifold), mirroring the
    paper's search, which tunes only the distillation procedure.
    """
    accuracies = np.zeros((len(alphas), len(temperatures)))
    for i, alpha in enumerate(alphas):
        for j, temperature in enumerate(temperatures):
            trainer = DistillationTrainer(num_classes, dim, lr=lr,
                                          temperature=temperature,
                                          alpha=alpha)
            trainer.fit_distilled(train_hvs, train_labels, teacher_logits,
                                  epochs=epochs, batch_size=batch_size,
                                  rng=np.random.default_rng(seed))
            accuracies[i, j] = trainer.accuracy(test_hvs, test_labels)
            if alpha == 0.0:
                # α=0 rows are temperature-independent (plain MASS);
                # one cell fills the whole row.
                accuracies[i, :] = accuracies[i, 0]
                break
    return GridSearchResult(tuple(temperatures), tuple(alphas), accuracies)
