"""Interpretability metrics for HD learning (Fig. 11's quantification).

Fig. 11 argues visually that retraining pulls sample hypervectors into
per-class clusters around their class hypervector.  These metrics put
numbers on the same claim so the benchmark can assert the "after" state
is tighter than the "before" state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cluster_separation", "class_alignment", "silhouette_score"]


def cluster_separation(points: np.ndarray, labels: np.ndarray) -> float:
    """Ratio of mean inter-class to mean intra-class distance (>1 = good).

    Computed on any embedding (hypervectors or a 2-D t-SNE projection).
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    norms = (points ** 2).sum(axis=1)
    distances = np.sqrt(np.maximum(
        norms[:, None] + norms[None, :] - 2.0 * points @ points.T, 0.0))
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    diff = ~ (labels[:, None] == labels[None, :])
    intra = distances[same].mean() if same.any() else 0.0
    inter = distances[diff].mean() if diff.any() else 0.0
    if intra <= 0:
        return np.inf
    return float(inter / intra)


def class_alignment(hypervectors: np.ndarray, labels: np.ndarray,
                    class_matrix: np.ndarray) -> float:
    """Mean margin between own-class and best-other-class similarity.

    Positive values mean sample hypervectors sit closer (in cosine) to
    their own class hypervector than to any other — the property MASS
    retraining optimizes.
    """
    hypervectors = np.asarray(hypervectors, dtype=np.float64)
    labels = np.asarray(labels)
    h_norm = hypervectors / np.maximum(
        np.linalg.norm(hypervectors, axis=1, keepdims=True), 1e-12)
    c_norm = class_matrix / np.maximum(
        np.linalg.norm(class_matrix, axis=1, keepdims=True), 1e-12)
    sims = h_norm @ c_norm.T
    own = sims[np.arange(len(labels)), labels]
    sims_other = sims.copy()
    sims_other[np.arange(len(labels)), labels] = -np.inf
    best_other = sims_other.max(axis=1)
    return float((own - best_other).mean())


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points (in [-1, 1])."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if len(classes) < 2:
        raise ValueError("silhouette needs at least two classes")
    norms = (points ** 2).sum(axis=1)
    distances = np.sqrt(np.maximum(
        norms[:, None] + norms[None, :] - 2.0 * points @ points.T, 0.0))

    scores = np.zeros(len(points))
    for i in range(len(points)):
        own_mask = labels == labels[i]
        own_mask_excl = own_mask.copy()
        own_mask_excl[i] = False
        if not own_mask_excl.any():
            scores[i] = 0.0
            continue
        a = distances[i, own_mask_excl].mean()
        b = min(distances[i, labels == other].mean()
                for other in classes if other != labels[i])
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())
