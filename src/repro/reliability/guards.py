"""Numerics guards: catch NaN/Inf/overflow before they corrupt a model.

Long HD training runs fail in one characteristic way: a single bad batch
(NaN features from a corrupted shard, an exploding distillation update, a
degenerate similarity) silently poisons the class-hypervector matrix and
every later epoch trains on garbage.  :class:`NumericsGuard` is the
checkpoint-free half of the reliability story — it sits at the update
boundaries of every trainer (:class:`repro.learn.MassTrainer`,
:class:`repro.learn.DistillationTrainer`,
:class:`repro.learn.ManifoldLearner`, and the CNN pretraining loop in
:mod:`repro.models.trainer`) and vets batches/gradients *before* they are
applied, so model state is never corrupted regardless of policy.

Policies
--------
``raise``
    Abort immediately with :class:`NumericsError` (default; best for
    debugging and CI).
``warn``
    Emit a :class:`NumericsWarning` and *skip* the offending update.
``skip_batch``
    Silently skip the offending update, counting it in
    :attr:`NumericsGuard.batches_skipped` (best for long unattended runs).

The guard is deliberately dependency-free (numpy + stdlib + the equally
dependency-free :mod:`repro.telemetry`) so every layer of the code base
can hook it without import cycles.  Guard events additionally increment
the process-global telemetry counters ``guard.nan_batches``,
``guard.inf_batches``, ``guard.overflow_batches``, ``guard.violations``
and ``guard.skipped_batches`` so long unattended runs surface guard
activity in the run report and Prometheus exposition.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

import numpy as np

from ..telemetry import get_registry

__all__ = ["NumericsError", "NumericsWarning", "NumericsGuard", "POLICIES"]

POLICIES = ("raise", "warn", "skip_batch")


class NumericsError(RuntimeError):
    """Raised by a ``policy="raise"`` guard on NaN/Inf/overflow."""


class NumericsWarning(UserWarning):
    """Emitted by a ``policy="warn"`` guard (distinct from numpy's
    RuntimeWarning so warnings-as-errors CI jobs can treat them apart)."""


class NumericsGuard:
    """Detect non-finite or overflowing values at trainer update points.

    Parameters
    ----------
    policy:
        One of :data:`POLICIES` — what to do when a check fails.
    max_abs:
        Magnitude threshold above which finite values count as overflow
        (guards against silent float64 blow-up long before ``inf``).
    name:
        Label used in error/warning messages (useful when several guards
        watch different pipelines).
    max_log:
        How many violation messages to retain in :attr:`violations`.
    """

    def __init__(self, policy: str = "raise", max_abs: float = 1e12,
                 name: str = "NumericsGuard", max_log: int = 100):
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, "
                             f"got {policy!r}")
        if max_abs <= 0:
            raise ValueError("max_abs must be positive")
        self.policy = policy
        self.max_abs = float(max_abs)
        self.name = name
        self.max_log = int(max_log)
        self.checks = 0
        self.batches_skipped = 0
        self.counts: Dict[str, int] = {"nan": 0, "inf": 0, "overflow": 0}
        self.violations: List[str] = []

    # ------------------------------------------------------------------
    def _describe(self, array: np.ndarray) -> Optional[str]:
        """Return a human-readable defect description, or None if clean."""
        data = np.asarray(array)
        if data.dtype.kind not in "fc":  # ints/bools cannot be non-finite
            return None
        if data.size == 0:
            return None
        nan = int(np.isnan(data).sum())
        inf = int(np.isinf(data).sum())
        registry = get_registry()
        if nan or inf:
            self.counts["nan"] += nan
            self.counts["inf"] += inf
            if nan:
                registry.inc("guard.nan_batches")
            if inf:
                registry.inc("guard.inf_batches")
            return f"{nan} NaN and {inf} Inf of {data.size} values"
        peak = float(np.abs(data).max())
        if peak > self.max_abs:
            self.counts["overflow"] += 1
            registry.inc("guard.overflow_batches")
            return (f"finite overflow: max |x| = {peak:.3e} exceeds "
                    f"max_abs = {self.max_abs:.1e}")
        return None

    def _handle(self, message: str) -> bool:
        if len(self.violations) < self.max_log:
            self.violations.append(message)
        get_registry().inc("guard.violations")
        if self.policy == "raise":
            raise NumericsError(message)
        if self.policy == "warn":
            warnings.warn(message, NumericsWarning, stacklevel=3)
        self.batches_skipped += 1
        get_registry().inc("guard.skipped_batches")
        return False

    # ------------------------------------------------------------------
    def ok(self, tag: str, *arrays) -> bool:
        """Vet arrays at the update point ``tag``.

        Returns True when everything is finite and bounded.  Otherwise the
        configured policy fires: ``raise`` raises :class:`NumericsError`;
        ``warn`` emits :class:`NumericsWarning` and returns False;
        ``skip_batch`` silently returns False.  Callers must not apply the
        guarded update when this returns False.
        """
        self.checks += 1
        problems = []
        for index, array in enumerate(arrays):
            description = self._describe(array)
            if description is not None:
                problems.append(f"array {index}: {description}")
        if not problems:
            return True
        message = (f"{self.name}: numerics violation at {tag!r} — "
                   + "; ".join(problems))
        return self._handle(message)

    def assert_finite(self, tag: str, *arrays) -> None:
        """Like :meth:`ok` but always raises on violation (any policy)."""
        self.checks += 1
        for index, array in enumerate(arrays):
            description = self._describe(array)
            if description is not None:
                raise NumericsError(
                    f"{self.name}: numerics violation at {tag!r} — "
                    f"array {index}: {description}")

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear all counters and the violation log."""
        self.checks = 0
        self.batches_skipped = 0
        self.counts = {"nan": 0, "inf": 0, "overflow": 0}
        self.violations = []

    def summary(self) -> Dict[str, object]:
        """Counters snapshot for logging/reporting."""
        return {
            "policy": self.policy,
            "checks": self.checks,
            "batches_skipped": self.batches_skipped,
            "nan_values": self.counts["nan"],
            "inf_values": self.counts["inf"],
            "overflows": self.counts["overflow"],
            "last_violation": self.violations[-1] if self.violations
            else None,
        }

    def __repr__(self) -> str:
        return (f"NumericsGuard(policy={self.policy!r}, checks={self.checks}, "
                f"skipped={self.batches_skipped})")
