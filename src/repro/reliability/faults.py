"""Composable fault injectors for robustness experiments.

The paper's deployment argument rests on the fault tolerance of binary
hypervectors: flipping a fraction of a hypervector's components degrades
similarity gracefully instead of catastrophically, which is what makes
HD classifiers attractive on noisy edge accelerators.  These injectors
make that claim *testable* — they corrupt hypervectors, features,
batches, and checkpoint files in controlled, seeded, reproducible ways.

Every injector is deterministic given its ``seed``: applying the same
injector to the same array always produces the same corruption (the
generator is re-derived per call), so sweeps and property tests are
exactly reproducible.  Injectors compose with :class:`ComposeInjector`.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

import numpy as np

from ..utils.rng import fresh_rng

__all__ = [
    "FaultInjector", "BitFlipInjector", "FeatureDropInjector",
    "BatchCorruptionInjector", "ComposeInjector", "flip_bits",
    "truncate_file", "CheckpointTruncator",
]

Seed = Union[int, tuple]


def flip_bits(hypervectors: np.ndarray, rate: float,
              rng: np.random.Generator) -> np.ndarray:
    """Flip the sign of each component independently with probability
    ``rate`` (the HD literature's bit-flip noise model for bipolar HVs)."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"flip rate must be in [0, 1], got {rate}")
    data = np.array(hypervectors, dtype=np.float64, copy=True)
    if rate == 0.0 or data.size == 0:
        return data
    mask = rng.random(data.shape) < rate
    data[mask] = -data[mask]
    return data


class FaultInjector:
    """Base class: a seeded, deterministic array corruption."""

    #: subclass label mixed into the derived RNG stream
    name = "fault"

    def __init__(self, seed: Seed = 0):
        self.seed = seed

    def _rng(self, rng: Optional[np.random.Generator]) -> np.random.Generator:
        if rng is not None:
            return rng
        key = self.seed if isinstance(self.seed, tuple) else (self.seed,)
        return fresh_rng(tuple(key) + (self.name,))

    def apply(self, array: np.ndarray,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Return a corrupted copy of ``array`` (never mutates input)."""
        raise NotImplementedError

    def __call__(self, array: np.ndarray,
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
        return self.apply(array, rng)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed!r})"


class BitFlipInjector(FaultInjector):
    """Hypervector / item-memory bit flips at rate ``p``.

    Properties (enforced by the hypothesis suite): ``rate=0`` is the
    identity, ``rate=1`` is full sign inversion, and the corruption is a
    pure function of ``(seed, array shape)``.
    """

    name = "bitflip"

    def __init__(self, rate: float, seed: Seed = 0):
        super().__init__(seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"flip rate must be in [0, 1], got {rate}")
        self.rate = float(rate)

    def apply(self, array: np.ndarray,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
        return flip_bits(array, self.rate, self._rng(rng))

    def __repr__(self) -> str:
        return f"BitFlipInjector(rate={self.rate}, seed={self.seed!r})"


class FeatureDropInjector(FaultInjector):
    """Drop (zero or fill) a fraction of feature *dimensions*.

    Models dead sensor channels / dropped projection rows: the same
    ``round(rate * F)`` columns are zeroed for every sample in the batch.
    """

    name = "featuredrop"

    def __init__(self, rate: float, seed: Seed = 0, fill: float = 0.0):
        super().__init__(seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"drop rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.fill = float(fill)

    def dropped_columns(self, num_features: int,
                        rng: Optional[np.random.Generator] = None
                        ) -> np.ndarray:
        count = int(round(self.rate * num_features))
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return np.sort(self._rng(rng).choice(num_features, size=count,
                                             replace=False))

    def apply(self, array: np.ndarray,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
        data = np.array(np.atleast_2d(array), dtype=np.float64, copy=True)
        columns = self.dropped_columns(data.shape[-1], rng)
        data[..., columns] = self.fill
        return data


class BatchCorruptionInjector(FaultInjector):
    """Corrupt a fraction of *samples* in a batch with NaN/Inf/garbage.

    ``mode`` selects the corruption: ``"nan"`` / ``"inf"`` overwrite the
    selected rows entirely; ``"huge"`` multiplies them by ``magnitude``
    (a finite overflow that only ``max_abs`` guards catch).
    """

    name = "batchcorrupt"
    MODES = ("nan", "inf", "huge")

    def __init__(self, fraction: float, mode: str = "nan", seed: Seed = 0,
                 magnitude: float = 1e30):
        super().__init__(seed)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.fraction = float(fraction)
        self.mode = mode
        self.magnitude = float(magnitude)

    def corrupted_rows(self, num_rows: int,
                       rng: Optional[np.random.Generator] = None
                       ) -> np.ndarray:
        return np.flatnonzero(self._rng(rng).random(num_rows) < self.fraction)

    def apply(self, array: np.ndarray,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
        data = np.array(np.atleast_2d(array), dtype=np.float64, copy=True)
        rows = self.corrupted_rows(len(data), rng)
        if rows.size == 0:
            return data
        if self.mode == "nan":
            data[rows] = np.nan
        elif self.mode == "inf":
            data[rows] = np.inf
        else:
            data[rows] = data[rows] * self.magnitude + self.magnitude
        return data


class ComposeInjector(FaultInjector):
    """Apply a sequence of injectors left-to-right."""

    name = "compose"

    def __init__(self, injectors: Sequence[FaultInjector]):
        super().__init__(0)
        self.injectors = list(injectors)

    def apply(self, array: np.ndarray,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
        data = np.array(array, dtype=np.float64, copy=True)
        for injector in self.injectors:
            data = injector.apply(data, rng)
        return data

    def __repr__(self) -> str:
        return f"ComposeInjector({self.injectors!r})"


# ----------------------------------------------------------------------
# Checkpoint-level faults
# ----------------------------------------------------------------------

def truncate_file(path: str, keep_fraction: float) -> int:
    """Simulate a mid-write kill by truncating ``path`` in place.

    Keeps the first ``keep_fraction`` of the file's bytes and returns the
    new size.  Against the atomic checkpoints of
    :mod:`repro.nn.serialize`, a *renamed* checkpoint can only be
    corrupted this way after the fact (e.g. a dying disk) — and loading
    it must raise :class:`repro.nn.serialize.CheckpointError`.
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1], "
                         f"got {keep_fraction}")
    size = os.path.getsize(path)
    keep = int(size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


class CheckpointTruncator:
    """Path-level injector: truncates checkpoint files to a fraction."""

    def __init__(self, keep_fraction: float):
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in [0, 1], "
                             f"got {keep_fraction}")
        self.keep_fraction = float(keep_fraction)

    def apply(self, path: str) -> int:
        return truncate_file(path, self.keep_fraction)

    __call__ = apply

    def __repr__(self) -> str:
        return f"CheckpointTruncator(keep_fraction={self.keep_fraction})"
