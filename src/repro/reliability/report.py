"""Noise-robustness sweeps: the HD accuracy-vs-bit-flip-rate curve.

The paper's deployability claim (Sec. II/VII) is that binary hypervector
classifiers *degrade gracefully* under bit-level noise — flipping a
fraction ``p`` of hypervector components shifts cosine similarities
smoothly instead of breaking the classifier, all the way to chance at
``p = 0.5``.  This module reproduces that curve for any trained pipeline
(NSHD / BaselineHD / VanillaHD) or bare :class:`repro.learn.MassTrainer`.

Two corruption targets are supported, matching the two memories a
hardware deployment actually has: ``"query"`` flips bits of the encoded
query hypervectors (transmission/encoder noise) and ``"memory"`` flips
signs of the class-hypervector item memory (storage faults).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..learn.mass import MassTrainer, normalized_similarity
from ..utils.tables import format_table
from .faults import BitFlipInjector

__all__ = ["DEFAULT_RATES", "bit_flip_curve", "bit_flip_sweep",
           "sweep_systems", "format_sweep"]

#: Default sweep grid: the paper-relevant regime plus the chance anchor.
DEFAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5)

_TARGETS = ("query", "memory", "both")


def _corrupted_accuracy(class_matrix: np.ndarray, encoded: np.ndarray,
                        labels: np.ndarray, rate: float, target: str,
                        seed) -> float:
    seed = tuple(seed) if isinstance(seed, tuple) else (seed,)
    queries = encoded
    memory = class_matrix
    if target in ("query", "both"):
        queries = BitFlipInjector(rate, seed=seed + ("query",)
                                  ).apply(encoded)
    if target in ("memory", "both"):
        memory = BitFlipInjector(rate, seed=seed + ("memory",)
                                 ).apply(class_matrix)
    predictions = normalized_similarity(memory, queries).argmax(axis=1)
    return float((predictions == labels).mean())


def bit_flip_curve(trainer: MassTrainer, encoded: np.ndarray,
                   labels: np.ndarray,
                   rates: Sequence[float] = DEFAULT_RATES,
                   target: str = "query", trials: int = 3,
                   seed: int = 0) -> List[Dict[str, float]]:
    """Accuracy vs bit-flip rate for a trained trainer on encoded HVs.

    Each rate is evaluated over ``trials`` independent corruption seeds
    and averaged, which smooths the curve enough for the monotone-shape
    assertions of the test suite.  Returns a list of
    ``{"rate": p, "accuracy": mean, "min": ..., "max": ...}`` rows.
    """
    if target not in _TARGETS:
        raise ValueError(f"target must be one of {_TARGETS}, got {target!r}")
    if trials < 1:
        raise ValueError("trials must be >= 1")
    encoded = np.atleast_2d(np.asarray(encoded, dtype=np.float64))
    labels = np.asarray(labels)
    rows: List[Dict[str, float]] = []
    for rate_index, rate in enumerate(rates):
        accuracies = [
            _corrupted_accuracy(trainer.class_matrix, encoded, labels,
                                float(rate), target,
                                (seed, "sweep", rate_index, trial))
            for trial in range(trials)
        ]
        rows.append({
            "rate": float(rate),
            "accuracy": float(np.mean(accuracies)),
            "min": float(np.min(accuracies)),
            "max": float(np.max(accuracies)),
        })
    return rows


def bit_flip_sweep(pipeline, images: np.ndarray, labels: np.ndarray,
                   rates: Sequence[float] = DEFAULT_RATES,
                   target: str = "query", trials: int = 3,
                   seed: int = 0) -> List[Dict[str, float]]:
    """Like :func:`bit_flip_curve` for a fitted pipeline on raw images.

    The clean encoding runs once; only the cheap corrupt-and-classify
    inner loop repeats per (rate, trial), so sweeping is O(rates·trials)
    similarity products — no CNN re-runs.
    """
    encoded = pipeline.encode(images)
    return bit_flip_curve(pipeline.trainer, encoded, labels, rates=rates,
                          target=target, trials=trials, seed=seed)


def sweep_systems(systems: Dict[str, object], images: np.ndarray,
                  labels: np.ndarray,
                  rates: Sequence[float] = DEFAULT_RATES,
                  target: str = "query", trials: int = 3,
                  seed: int = 0) -> Dict[str, List[Dict[str, float]]]:
    """Run :func:`bit_flip_sweep` for several fitted systems.

    ``systems`` maps display names (e.g. ``"NSHD"``) to fitted pipelines;
    the result maps the same names to their sweep rows, ready for
    :func:`format_sweep`.
    """
    return {name: bit_flip_sweep(system, images, labels, rates=rates,
                                 target=target, trials=trials, seed=seed)
            for name, system in systems.items()}


def format_sweep(results: Dict[str, List[Dict[str, float]]],
                 title: str = "Accuracy vs hypervector bit-flip rate"
                 ) -> str:
    """Render sweep results as the EXPERIMENTS.md-style ASCII table."""
    if not results:
        raise ValueError("no sweep results to format")
    names = list(results)
    rates: Optional[List[float]] = None
    for name in names:
        row_rates = [row["rate"] for row in results[name]]
        if rates is None:
            rates = row_rates
        elif row_rates != rates:
            raise ValueError("all systems must be swept on the same rates")
    assert rates is not None
    headers = ["flip rate p"] + names
    rows = []
    for index, rate in enumerate(rates):
        rows.append([f"{rate:.2f}"] +
                    [f"{results[name][index]['accuracy']:.3f}"
                     for name in names])
    return format_table(headers, rows, title=title)
