"""Reliability subsystem: guards, fault injection, graceful degradation.

Implements the robustness story around the paper's HD pipelines:

* :mod:`~repro.reliability.guards` — numerics guards (NaN/Inf/overflow
  detection with raise/warn/skip policies) hooked into every trainer.
* :mod:`~repro.reliability.faults` — composable, seeded fault injectors
  (hypervector bit flips, dropped feature dims, corrupted batches,
  checkpoint truncation).
* :mod:`~repro.reliability.report` — the accuracy-vs-bit-flip-rate
  robustness sweep for NSHD / BaselineHD / VanillaHD.
* :mod:`~repro.reliability.resilient` — :class:`ResilientPipeline`,
  bounded retry with batch splitting and checkpoint-corruption fallback.
* :mod:`~repro.reliability.degrade` — serving-side overload
  degradation: :class:`LoadShedder` watermark admission control plus the
  shed/deadline error types surfaced by :mod:`repro.serve`.
* :mod:`~repro.reliability.circuit` — :class:`CircuitBreaker`, the
  per-dependency closed → open → half-open state machine the fleet
  router wraps around each worker process.
"""

from .circuit import CircuitBreaker, CircuitOpenError
from .degrade import (DeadlineExceededError, LoadShedder,
                      OverloadShedError, ServingDegradedError)
from .faults import (BatchCorruptionInjector, BitFlipInjector,
                     CheckpointTruncator, ComposeInjector, FaultInjector,
                     FeatureDropInjector, flip_bits, truncate_file)
from .guards import (POLICIES, NumericsError, NumericsGuard,
                     NumericsWarning)
from .report import (DEFAULT_RATES, bit_flip_curve, bit_flip_sweep,
                     format_sweep, sweep_systems)
from .resilient import ResilientPipeline

__all__ = [
    "POLICIES", "NumericsError", "NumericsGuard", "NumericsWarning",
    "BatchCorruptionInjector", "BitFlipInjector", "CheckpointTruncator",
    "ComposeInjector", "FaultInjector", "FeatureDropInjector",
    "flip_bits", "truncate_file",
    "DEFAULT_RATES", "bit_flip_curve", "bit_flip_sweep", "format_sweep",
    "sweep_systems",
    "ResilientPipeline",
    "LoadShedder", "OverloadShedError", "DeadlineExceededError",
    "ServingDegradedError",
    "CircuitBreaker", "CircuitOpenError",
]
