"""Overload degradation: admission control and serving-side errors.

PR 1's :class:`ResilientPipeline` keeps a *single* predict call alive
through transient faults; this module adds the complementary policy for
a *stream* of requests — when the serving queue backs up faster than the
workers drain it, the correct degradation is to shed load early (fail
fast with a retryable error) instead of letting every request time out.

:class:`LoadShedder` implements hysteresis admission control: once queue
depth crosses ``high_watermark`` new requests are rejected until depth
falls back to ``low_watermark``, which prevents the shed/admit decision
from oscillating around a single threshold.  Shed decisions are counted
in the telemetry registry (``degrade.shed`` / ``degrade.admitted``) so a
dashboard sees overload before clients do.

:class:`OverloadShedError` and :class:`DeadlineExceededError` are the
two degradation outcomes the micro-batcher surfaces to callers (mapped
to HTTP 503 / 504 by :mod:`repro.serve.server`).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..telemetry import get_registry

__all__ = ["OverloadShedError", "DeadlineExceededError", "LoadShedder"]


class ServingDegradedError(RuntimeError):
    """Base of the serving degradation outcomes.

    Carries the *request id* (the request's trace id when tracing is
    on) and the model label of the batcher that rejected it, so a
    coalesced batch's shed/deadline error can say **which** request was
    affected — both travel into the HTTP error payload and the
    per-model ``serve.batcher.*.model.<label>`` counters.
    """

    def __init__(self, message: str, request_id: Optional[str] = None,
                 model: Optional[str] = None):
        super().__init__(message)
        self.request_id = request_id
        self.model = model


class OverloadShedError(ServingDegradedError):
    """Request rejected by admission control (retryable: HTTP 503)."""


class DeadlineExceededError(ServingDegradedError):
    """Request expired before a worker reached it (HTTP 504)."""


class LoadShedder:
    """Watermark-based admission control with hysteresis (thread-safe).

    Parameters
    ----------
    high_watermark:
        Queue depth at (or above) which new requests are shed.
    low_watermark:
        Depth at which shedding stops once it started; defaults to
        ``high_watermark // 2``.  Must be ``<= high_watermark``.
    """

    def __init__(self, high_watermark: int,
                 low_watermark: Optional[int] = None):
        if high_watermark < 1:
            raise ValueError("high_watermark must be >= 1")
        if low_watermark is None:
            low_watermark = high_watermark // 2
        if not 0 <= low_watermark <= high_watermark:
            raise ValueError(
                f"low_watermark {low_watermark} must be in "
                f"[0, {high_watermark}]")
        self.high_watermark = int(high_watermark)
        self.low_watermark = int(low_watermark)
        self._shedding = False
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {"admitted": 0, "shed": 0}

    @property
    def shedding(self) -> bool:
        """Whether the shedder is currently in the rejecting regime."""
        return self._shedding

    def admit(self, depth: int) -> bool:
        """Admission decision for a request arriving at queue ``depth``.

        Returns True to admit.  Transitions: depth >= high → start
        shedding; depth <= low → stop shedding; in between the previous
        regime persists (hysteresis).
        """
        registry = get_registry()
        with self._lock:
            if self._shedding:
                if depth <= self.low_watermark:
                    self._shedding = False
            elif depth >= self.high_watermark:
                self._shedding = True
            admitted = not self._shedding
            if admitted:
                self.stats["admitted"] += 1
            else:
                self.stats["shed"] += 1
        registry.inc("degrade.admitted" if admitted else "degrade.shed")
        return admitted

    def reset(self) -> None:
        with self._lock:
            self._shedding = False
            self.stats = {"admitted": 0, "shed": 0}

    def __repr__(self) -> str:
        return (f"LoadShedder(high={self.high_watermark}, "
                f"low={self.low_watermark}, shedding={self._shedding}, "
                f"stats={self.stats})")
