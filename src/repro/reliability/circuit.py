"""Per-dependency circuit breakers for the serving fleet.

PR 1's :class:`ResilientPipeline` retries a *call*; the
:class:`~repro.reliability.degrade.LoadShedder` protects a *queue*; this
module protects a *dependency*.  When one backend of the serving fleet
(a worker process behind the router) starts failing, retrying it for
every request doubles the damage: each attempt burns a client's latency
budget and keeps the sick worker pinned at saturation.  The classic fix
is the circuit breaker (Nygard's "Release It!" pattern, the same state
machine Hystrix/resilience4j ship):

* **closed** — normal operation.  Failures are counted in a rolling
  outcome window; when either ``failure_threshold`` *consecutive*
  failures or an error rate ``>= error_rate_threshold`` over at least
  ``min_requests`` outcomes is reached, the breaker **opens**.
* **open** — every call is refused instantly (:class:`CircuitOpenError`
  from :meth:`call`; ``allow()`` returns False) for
  ``recovery_timeout_s``.  The router uses this to route around the
  worker without spending a connection attempt on it.
* **half-open** — after the timeout, up to ``half_open_probes`` trial
  calls are let through.  If they all succeed the breaker **closes**
  (window reset); any failure re-opens it and restarts the timeout.

Every transition increments ``circuit.<name>.<state>`` and updates the
``circuit.<name>.state`` gauge (0 = closed, 1 = half-open, 2 = open) in
the telemetry registry, so ``/metrics`` exposes breaker history without
extra plumbing.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..telemetry import clock as _default_clock
from ..telemetry import get_registry

__all__ = ["CircuitBreaker", "CircuitOpenError",
           "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of the state (monotone in severity).
_STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitOpenError(RuntimeError):
    """Call refused because the breaker is open (fail fast, retryable
    against a different backend)."""


class CircuitBreaker:
    """Thread-safe three-state circuit breaker.

    Parameters
    ----------
    name:
        Label mixed into the ``circuit.<name>.*`` metric names.
    failure_threshold:
        Consecutive failures that open a closed breaker.
    error_rate_threshold:
        Error rate over the rolling window that opens a closed breaker
        (only once the window holds at least ``min_requests`` outcomes,
        so a single early failure cannot trip a 100% rate).
    window:
        Rolling outcome-window length (successes + failures).
    min_requests:
        Minimum outcomes in the window before the rate rule applies.
    recovery_timeout_s:
        How long an open breaker refuses calls before going half-open.
    half_open_probes:
        Trial calls admitted (and successes required) in half-open
        before the breaker closes again.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, name: str = "default", failure_threshold: int = 5,
                 error_rate_threshold: float = 0.5, window: int = 20,
                 min_requests: int = 10, recovery_timeout_s: float = 5.0,
                 half_open_probes: int = 2,
                 clock: Optional[Callable[[], float]] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if not 0.0 < error_rate_threshold <= 1.0:
            raise ValueError("error_rate_threshold must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        if recovery_timeout_s < 0:
            raise ValueError("recovery_timeout_s must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.name = str(name)
        self.failure_threshold = int(failure_threshold)
        self.error_rate_threshold = float(error_rate_threshold)
        self.window = int(window)
        self.min_requests = int(min_requests)
        self.recovery_timeout_s = float(recovery_timeout_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock if clock is not None else _default_clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=self.window)
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.stats: Dict[str, int] = {
            "successes": 0, "failures": 0, "rejected": 0,
            "opens": 0, "closes": 0,
        }
        get_registry().set_gauge(f"circuit.{self.name}.state",
                                 _STATE_GAUGE[CLOSED])

    # ------------------------------------------------------------------
    def _transition(self, state: str) -> None:
        """Move to ``state`` (caller holds the lock) and emit metrics."""
        if state == self._state:
            return
        self._state = state
        registry = get_registry()
        registry.inc(f"circuit.{self.name}.{state}")
        registry.set_gauge(f"circuit.{self.name}.state",
                           _STATE_GAUGE[state])
        if state == OPEN:
            self._opened_at = self._clock()
            self._probes_in_flight = 0
            self._probe_successes = 0
            self.stats["opens"] += 1
        elif state == HALF_OPEN:
            self._probes_in_flight = 0
            self._probe_successes = 0
        else:  # CLOSED
            self._outcomes.clear()
            self._consecutive_failures = 0
            self._opened_at = None
            self.stats["closes"] += 1

    def _maybe_half_open(self) -> None:
        """Open → half-open once the recovery timeout elapsed (locked)."""
        if self._state == OPEN and self._opened_at is not None and \
                self._clock() - self._opened_at >= self.recovery_timeout_s:
            self._transition(HALF_OPEN)

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state (applies the open → half-open timeout lazily)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def error_rate(self) -> float:
        """Failure fraction of the rolling window (0.0 when empty)."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            return 1.0 - sum(self._outcomes) / len(self._outcomes)

    def time_until_retry(self) -> float:
        """Seconds until an open breaker admits a probe (0 otherwise)."""
        with self._lock:
            if self._state != OPEN or self._opened_at is None:
                return 0.0
            return max(0.0, self.recovery_timeout_s
                       - (self._clock() - self._opened_at))

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Admission decision for one call.

        A half-open breaker admits at most ``half_open_probes``
        concurrent trials; everything else is refused until the probes
        settle.  The caller MUST follow an admitted call with exactly
        one :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
            self.stats["rejected"] += 1
        get_registry().inc(f"circuit.{self.name}.rejected")
        return False

    def record_success(self) -> None:
        with self._lock:
            self.stats["successes"] += 1
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0,
                                             self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._transition(CLOSED)
                return
            self._outcomes.append(True)
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self.stats["failures"] += 1
            if self._state == HALF_OPEN:
                # One sick probe is proof enough: reopen immediately.
                self._probes_in_flight = max(0,
                                             self._probes_in_flight - 1)
                self._transition(OPEN)
                return
            if self._state == OPEN:
                return
            self._outcomes.append(False)
            self._consecutive_failures += 1
            rate = 1.0 - sum(self._outcomes) / len(self._outcomes)
            if (self._consecutive_failures >= self.failure_threshold
                    or (len(self._outcomes) >= self.min_requests
                        and rate >= self.error_rate_threshold)):
                self._transition(OPEN)

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` through the breaker.

        Raises :class:`CircuitOpenError` without calling when the
        breaker refuses; otherwise records the outcome and re-raises any
        exception from ``fn``.
        """
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name!r} is {self._state} "
                f"(retry in {self.time_until_retry():.2f}s)")
        try:
            result = fn(*args, **kwargs)
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Force-close (operator override / tests)."""
        with self._lock:
            if self._state != CLOSED:
                self._transition(CLOSED)
            else:
                self._outcomes.clear()
                self._consecutive_failures = 0

    def describe(self) -> Dict[str, object]:
        """Breaker facts for /healthz."""
        with self._lock:
            self._maybe_half_open()
            outcomes = len(self._outcomes)
            rate = (1.0 - sum(self._outcomes) / outcomes
                    if outcomes else 0.0)
            return {
                "name": self.name,
                "state": self._state,
                "error_rate": rate,
                "window": outcomes,
                "consecutive_failures": self._consecutive_failures,
                "stats": dict(self.stats),
            }

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, state={self.state!r}, "
                f"stats={self.stats})")
