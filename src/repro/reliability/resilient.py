"""Graceful degradation: bounded retries and checkpoint fallback.

:class:`ResilientPipeline` wraps a fitted HD pipeline (NSHD, BaselineHD,
VanillaHD — anything with the ``encode/predict/trainer`` contract of
:mod:`repro.learn.pipeline`) and keeps *serving* when components fail:

* **Bounded retry with batch splitting** — a transient failure while
  predicting a batch (poisoned rows, numerics blow-ups) triggers a
  binary split of the batch and independent retries of each half, down
  to single samples.  Only the samples that individually keep failing
  get the configured ``fallback_label``; everything recoverable is
  recovered.  The recursion depth (``max_splits``) bounds total work.
* **Checkpoint fallback** — :meth:`load_or_degrade` restores the wrapped
  pipeline from an (integrity-checked) checkpoint; when the checkpoint
  turns out to be truncated or corrupted, it *degrades* instead of
  dying: a direct random-projection classifier (no manifold layer, the
  paper's BaselineHD-style encoding) is bootstrapped from the provided
  training features and serves in place of the broken model — lower
  accuracy, but alive.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type, Union

import numpy as np

from ..hd.encoders import RandomProjectionEncoder
from ..learn.mass import MassTrainer
from ..learn.pipeline import FeatureScaler
from ..nn.serialize import CheckpointError
from ..utils.rng import fresh_rng

__all__ = ["ResilientPipeline"]


class ResilientPipeline:
    """Fault-tolerant serving wrapper around a fitted HD pipeline.

    Parameters
    ----------
    pipeline:
        The wrapped system (NSHD / BaselineHD / VanillaHD).
    max_splits:
        Bound on the batch-splitting recursion depth per predict call
        (``max_splits=k`` retries at most ``2^k`` sub-batches).
    fallback_label:
        Label assigned to samples that fail even in isolation.
    retry_on:
        Exception type(s) treated as transient and retried via splitting.
        ``KeyboardInterrupt``/``SystemExit`` always propagate.
    fallback_epochs / seed:
        Hyperparameters of the degraded direct-projection classifier
        built by :meth:`load_or_degrade` on checkpoint corruption.
    """

    def __init__(self, pipeline, max_splits: int = 4,
                 fallback_label: int = 0,
                 retry_on: Union[Type[BaseException],
                                 Tuple[Type[BaseException], ...]] = Exception,
                 fallback_epochs: int = 5, seed: int = 0):
        if max_splits < 0:
            raise ValueError("max_splits must be >= 0")
        self.pipeline = pipeline
        self.max_splits = int(max_splits)
        self.fallback_label = int(fallback_label)
        self.retry_on = retry_on
        self.fallback_epochs = int(fallback_epochs)
        self.seed = seed
        self.degraded = False
        self._fb_scaler: Optional[FeatureScaler] = None
        self._fb_encoder: Optional[RandomProjectionEncoder] = None
        self._fb_trainer: Optional[MassTrainer] = None
        self.stats: Dict[str, int] = {"errors": 0, "splits": 0,
                                      "failed_samples": 0}

    # ------------------------------------------------------------------
    # Serving path
    # ------------------------------------------------------------------
    def _features(self, images: np.ndarray) -> np.ndarray:
        """Raw feature vectors for the degraded direct-projection path."""
        extractor = getattr(self.pipeline, "extractor", None)
        if extractor is not None:
            return extractor.extract(images)
        return np.asarray(images).reshape(len(images), -1)

    def _raw_predict(self, images: np.ndarray) -> np.ndarray:
        if self.degraded:
            assert self._fb_trainer is not None
            features = self._fb_scaler.transform(self._features(images))
            return self._fb_trainer.predict(self._fb_encoder.encode(features))
        return self.pipeline.predict(images)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predict labels with bounded retry-by-splitting on failures.

        Samples that cannot be predicted even alone receive
        :attr:`fallback_label` and are counted in
        ``stats["failed_samples"]`` — the caller always gets an answer
        for every sample.
        """
        images = np.asarray(images)
        out = np.full(len(images), self.fallback_label, dtype=np.int64)
        self._predict_into(images, np.arange(len(images)), out, depth=0)
        return out

    def _predict_into(self, images: np.ndarray, indices: np.ndarray,
                      out: np.ndarray, depth: int) -> None:
        if indices.size == 0:
            return
        try:
            out[indices] = np.asarray(self._raw_predict(images[indices]),
                                      dtype=np.int64)
            return
        except self.retry_on:
            self.stats["errors"] += 1
            if indices.size == 1 or depth >= self.max_splits:
                self.stats["failed_samples"] += int(indices.size)
                return  # keep the fallback labels already in ``out``
            self.stats["splits"] += 1
            mid = indices.size // 2
            self._predict_into(images, indices[:mid], out, depth + 1)
            self._predict_into(images, indices[mid:], out, depth + 1)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(images) == np.asarray(labels)).mean())

    # ------------------------------------------------------------------
    # Checkpoint fallback
    # ------------------------------------------------------------------
    def load_or_degrade(self, checkpoint_path: str,
                        raw_features: Optional[np.ndarray] = None,
                        labels: Optional[np.ndarray] = None) -> str:
        """Restore the wrapped pipeline, degrading on corruption.

        Tries ``pipeline.load_checkpoint``; on
        :class:`~repro.nn.serialize.CheckpointError` (truncated file, CRC
        mismatch, schema mismatch) it falls back to a fresh
        direct-random-projection classifier bootstrapped from
        ``(raw_features, labels)`` — the paper's no-manifold encoding —
        and routes all subsequent predictions through it.

        Returns ``"restored"`` or ``"degraded"``.  Without training data
        to degrade onto, the original :class:`CheckpointError` propagates.
        """
        try:
            self.pipeline.load_checkpoint(checkpoint_path)
            self.degraded = False
            return "restored"
        except CheckpointError:
            if raw_features is None or labels is None:
                raise
            self._activate_fallback(np.asarray(raw_features),
                                    np.asarray(labels))
            return "degraded"

    def _activate_fallback(self, raw_features: np.ndarray,
                           labels: np.ndarray) -> None:
        rng = fresh_rng((self.seed, "resilient-fallback"))
        self._fb_scaler = FeatureScaler().fit(raw_features)
        self._fb_encoder = RandomProjectionEncoder(
            raw_features.shape[1], self.pipeline.dim, rng)
        self._fb_trainer = MassTrainer(self.pipeline.num_classes,
                                       self.pipeline.dim,
                                       guard=getattr(self.pipeline, "guard",
                                                     None))
        encoded = self._fb_encoder.encode(
            self._fb_scaler.transform(raw_features))
        self._fb_trainer.fit(encoded, labels, epochs=self.fallback_epochs,
                             rng=rng)
        self.degraded = True

    def __repr__(self) -> str:
        return (f"ResilientPipeline({type(self.pipeline).__name__}, "
                f"degraded={self.degraded}, stats={self.stats})")
