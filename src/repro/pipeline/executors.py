"""Pluggable per-stage executors for the stage-graph compiler.

An *executor* is an execution strategy for a stage — same math, same
serialization, different kernel.  The compiler binds executors at
freeze/compile time by wrapping stages in :class:`ExecutorStage`
subclasses that delegate everything serialization-related
(``spec`` / ``state_arrays`` / ``load_arrays`` / ``span_name`` /
``cacheable``) to the wrapped stage and only override ``__call__`` —
so a compiled graph's topology is byte-identical to the uncompiled
one, and the wrappers never appear in a persisted artifact.

Shipped executors (registry :data:`EXECUTORS`):

* ``numpy`` — the default interpreted path (identity bind);
* ``threaded`` — row-tiled encode GEMM fanned across a thread pool
  (NumPy releases the GIL inside BLAS).  Per-row results can differ
  from the single-call GEMM at the last ulp (BLAS blocking differs by
  tile height), so the parity gate asserts *labels* bit-exact and raw
  encodings within float tolerance;
* ``packed`` — the uint64 XOR-popcount classify path, promoted from an
  ``InferenceEngine`` special-case into a first-class executor.  Only
  applicable to a frozen classify stage over a bipolar class matrix
  (where it ranks identically to float cosine: integer dots, no
  rounding).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

import numpy as np

from ..hd.hypervector import is_bipolar
from .stages import ClassifyStage, PackedClassifyStage, Stage, StageError

__all__ = ["EXECUTORS", "StageExecutor", "ExecutorStage",
           "register_executor", "NumpyExecutor", "ThreadedEncodeExecutor",
           "PackedClassifyExecutor"]


class StageExecutor:
    """An execution strategy: tests applicability, binds to a stage."""

    #: Registry key (set by subclasses).
    name: str = ""

    def applicable(self, stage: Stage) -> bool:
        raise NotImplementedError

    def why_not(self, stage: Stage) -> str:
        """Human-readable reason :meth:`applicable` returned False."""
        return (f"executor {self.name!r} is not applicable to stage "
                f"{stage.name!r} ({type(stage).__name__})")

    def bind(self, stage: Stage) -> Stage:
        raise NotImplementedError


#: Registered executors: ``name → StageExecutor`` instance.
EXECUTORS: Dict[str, StageExecutor] = {}


def register_executor(cls):
    """Class decorator instantiating + registering an executor."""
    EXECUTORS[cls.name] = cls()
    return cls


class ExecutorStage(Stage):
    """Serialization-transparent wrapper: delegates everything except
    ``__call__`` to the wrapped stage."""

    def __init__(self, inner: Stage, executor: str):
        Stage.__init__(self, inner.name)
        self.inner = inner
        self.executor = str(executor)

    @property
    def span_name(self) -> str:
        return self.inner.span_name

    @property
    def cacheable(self) -> bool:  # type: ignore[override]
        return bool(getattr(self.inner, "cacheable", True))

    def spec(self) -> Dict[str, Any]:
        return self.inner.spec()

    def state_arrays(self) -> Dict[str, np.ndarray]:
        return self.inner.state_arrays()

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        self.inner.load_arrays(arrays)

    def __getattr__(self, attr: str) -> Any:
        # Delegate introspection (encoder_type, quantize, class_matrix,
        # similarities, ...) so wrapped stages duck-type as the inner
        # stage.  Only called for attributes not found normally.
        if attr == "inner":  # guard recursion before __init__ finishes
            raise AttributeError(attr)
        return getattr(self.inner, attr)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}[{self.executor}]"
                f"({self.inner!r})")


@register_executor
class NumpyExecutor(StageExecutor):
    """The default interpreted path — binding is the identity."""

    name = "numpy"

    def applicable(self, stage: Stage) -> bool:
        return True

    def bind(self, stage: Stage) -> Stage:
        return stage


class _ThreadedStage(ExecutorStage):
    """Row-tiled execution of an encode stage across a thread pool."""

    def __init__(self, inner: Stage, workers: int, min_rows: int):
        super().__init__(inner, "threaded")
        self.workers = int(workers)
        self.min_rows = int(min_rows)

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        batch = np.atleast_2d(np.asarray(batch))
        n = len(batch)
        if self.workers < 2 or n < max(2, self.min_rows):
            return self.inner(batch, ctx)
        tile = -(-n // self.workers)  # ceil division
        bounds = [(lo, min(lo + tile, n)) for lo in range(0, n, tile)]
        with ThreadPoolExecutor(max_workers=len(bounds)) as pool:
            parts = list(pool.map(
                lambda b: self.inner(batch[b[0]:b[1]], ctx), bounds))
        return np.concatenate(parts, axis=0)


@register_executor
class ThreadedEncodeExecutor(StageExecutor):
    """Tile-parallel GEMM for encode stages (plain or fused).

    Rows are independent in every encoder, so the batch is split into
    per-worker tiles executed concurrently — NumPy's BLAS releases the
    GIL, so this scales on multi-core hosts for large eval batches.
    Small batches (``< min_rows``) fall through to the single-call path
    to avoid pool overhead on the request path.
    """

    name = "threaded"

    def __init__(self, workers: Optional[int] = None, min_rows: int = 64):
        self.workers = int(workers or min(8, os.cpu_count() or 1))
        self.min_rows = int(min_rows)

    def applicable(self, stage: Stage) -> bool:
        return getattr(stage, "encoder_type", None) is not None

    def why_not(self, stage: Stage) -> str:
        return (f"executor 'threaded' only applies to encode stages; "
                f"stage {stage.name!r} is {type(stage).__name__}")

    def bind(self, stage: Stage) -> Stage:
        if not self.applicable(stage):
            raise StageError(self.why_not(stage))
        return _ThreadedStage(stage, self.workers, self.min_rows)


class _PackedStage(ExecutorStage):
    """Executes a frozen classify stage via uint64 XOR-popcount."""

    def __init__(self, inner: ClassifyStage):
        super().__init__(inner, "packed")
        self.packed = PackedClassifyStage.from_classify(inner)

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        return self.packed(batch, ctx)


@register_executor
class PackedClassifyExecutor(StageExecutor):
    """The bit-packed XOR-popcount classify fast path as an executor."""

    name = "packed"

    def applicable(self, stage: Stage) -> bool:
        return (isinstance(stage, ClassifyStage) and stage.frozen
                and is_bipolar(np.asarray(stage.class_matrix)))

    def why_not(self, stage: Stage) -> str:
        if not isinstance(stage, ClassifyStage):
            return (f"executor 'packed' only applies to classify stages; "
                    f"stage {stage.name!r} is {type(stage).__name__}")
        if not stage.frozen:
            return ("executor 'packed' requires a frozen classify stage "
                    "(live training matrices mutate under the packing)")
        return ("executor 'packed' requires a bipolar class matrix — "
                "export the bundle with binarize=True")

    def bind(self, stage: Stage) -> Stage:
        if not self.applicable(stage):
            raise StageError(self.why_not(stage))
        return _PackedStage(stage)
