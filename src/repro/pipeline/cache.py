"""Digest-keyed stage-output caching for :class:`StageGraph` runs.

Re-fit and A/B-eval workflows (``bench_gate.py``, ``check_quality.py``,
shadow-promotion exports) repeatedly push the *same* batches through the
*same* frozen upstream stages — the truncated-CNN extract and the
projection GEMM dominate, and their outputs are pure functions of
``(stage weights, stage spec, input batch)``.  A :class:`StageCache`
memoizes those outputs under a chained digest key::

    key_0 = sha1(input-batch digest)
    key_i = sha1(key_{i-1} + stage_i digest)

where each stage digest covers the stage's canonical spec JSON *and*
every one of its state arrays.  Any change to an upstream weight, a
hyperparameter, or the input bytes therefore changes every downstream
key — invalidation is automatic and there is no way to read a stale
entry.  The cache is a bounded (entries *and* bytes) thread-safe LRU.

Cached outputs are returned **by reference**: callers must treat stage
outputs as immutable (every stage in this package already does).

This module also owns :func:`canonical_json` — the deterministic
(sorted keys, compact separators, normalized scalars) JSON encoder used
for topology digests and stage digests — so cache keys are stable
across processes and platforms.

Metrics: ``stagecache.hits`` / ``stagecache.misses`` /
``stagecache.evictions``.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

import numpy as np

from ..telemetry import get_registry

__all__ = ["StageCache", "canonical_json", "array_digest", "stage_digest"]


def _canonical(obj: Any) -> Any:
    """Normalize scalars so equal values always serialize identically."""
    if isinstance(obj, dict):
        return {str(key): _canonical(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(value) for value in obj]
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        if math.isnan(value) or math.isinf(value):
            raise ValueError("canonical JSON cannot encode NaN/Inf")
        return value + 0.0  # collapses -0.0 to 0.0
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__} values for JSON")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON emit: sorted keys, compact separators,
    numpy scalars coerced, ``-0.0`` normalized, NaN/Inf rejected."""
    return json.dumps(_canonical(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def array_digest(array: np.ndarray) -> bytes:
    """sha1 over an array's dtype, shape, and raw bytes."""
    arr = np.ascontiguousarray(array)
    digest = hashlib.sha1()
    digest.update(str(arr.dtype).encode("utf-8"))
    digest.update(repr(arr.shape).encode("utf-8"))
    digest.update(arr.tobytes())
    return digest.digest()


def stage_digest(stage) -> bytes:
    """sha1 over a stage's canonical spec plus all its state arrays."""
    digest = hashlib.sha1(b"stage-digest-v1")
    digest.update(canonical_json(stage.spec()).encode("utf-8"))
    arrays = stage.state_arrays()
    for key in sorted(arrays):
        digest.update(key.encode("utf-8"))
        digest.update(array_digest(arrays[key]))
    return digest.digest()


class StageCache:
    """Bounded, thread-safe LRU of stage outputs keyed by digest chains.

    Pass an instance to :meth:`StageGraph.run` / :meth:`StageGraph.call`
    (or set ``pipeline.set_stage_cache``) — stages whose ``cacheable``
    flag is true (everything except the cheap classify stages) are
    skipped on a key hit.
    """

    def __init__(self, max_entries: int = 64,
                 max_bytes: int = 256 << 20):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._data: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- keying --------------------------------------------------------
    def input_key(self, batch: np.ndarray) -> bytes:
        """Chain seed: digest of the raw input batch."""
        return hashlib.sha1(
            b"stagecache-input" + array_digest(np.asarray(batch))).digest()

    def extend_key(self, key: bytes, stage) -> bytes:
        """Chain step: fold one stage's digest into the running key."""
        return hashlib.sha1(key + stage_digest(stage)).digest()

    # -- storage -------------------------------------------------------
    def lookup(self, key: bytes) -> Optional[np.ndarray]:
        registry = get_registry()
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                registry.inc("stagecache.misses")
                return None
            self._data.move_to_end(key)
            self.hits += 1
            registry.inc("stagecache.hits")
            return value

    def store(self, key: bytes, value: np.ndarray) -> None:
        value = np.asarray(value)
        if int(value.nbytes) > self.max_bytes:
            return  # would evict the whole cache for one entry
        registry = get_registry()
        with self._lock:
            old = self._data.pop(key, None)
            if old is not None:
                self._bytes -= int(old.nbytes)
            self._data[key] = value
            self._bytes += int(value.nbytes)
            while self._data and (len(self._data) > self.max_entries
                                  or self._bytes > self.max_bytes):
                _, evicted = self._data.popitem(last=False)
                self._bytes -= int(evicted.nbytes)
                self.evictions += 1
                registry.inc("stagecache.evictions")

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return (self.hits / total) if total else 0.0

    def info(self) -> Dict[str, Any]:
        with self._lock:
            total = self.hits + self.misses
            return {"entries": len(self._data),
                    "bytes": int(self._bytes),
                    "hits": int(self.hits),
                    "misses": int(self.misses),
                    "evictions": int(self.evictions),
                    "hit_rate": (self.hits / total) if total else 0.0,
                    "max_entries": self.max_entries,
                    "max_bytes": self.max_bytes}

    def __repr__(self) -> str:
        return (f"StageCache(entries={len(self)}, hits={self.hits}, "
                f"misses={self.misses})")
