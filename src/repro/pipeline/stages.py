"""Composable inference stages: the single home of the NSHD stage math.

Every NSHD-family model is the same five-step program — *extract*
(truncated CNN) → *scale* (feature standardization) → *reduce* (manifold
max-pool + FC) → *encode* (feature-to-hypervector map) → *classify*
(similarity argmax) — with individual steps omitted or swapped per
pipeline.  Before the stage-graph refactor that program was implemented
four separate times (the three ``repro.learn`` pipelines, the serving
engine, the checkpoint writer, and the bundle exporter each hardcoded a
variant); this module is now the **only** implementation.

A :class:`Stage` is a named, serializable unit of computation:

* ``stage(batch, ctx)`` maps an ``(n, …)`` numpy batch to the next
  representation;
* ``spec()`` returns the JSON-serializable *topology* entry (type +
  hyperparameters, no weights) used to rebuild the stage;
* ``state_arrays()`` / ``load_arrays()`` move the stage's weights in and
  out of flat ``{name: ndarray}`` dicts using the historical checkpoint
  and bundle key names (``scaler.mean``, ``encoder.projection``,
  ``manifold.weight``, ``model.*``, ``classes``), so pre-refactor
  archives remain loadable without translation.

Stages are either **live** (sharing weights with training objects —
:class:`~repro.learn.manifold.ManifoldLearner`, the MASS trainer — so a
graph built by a pipeline always reflects the current training state) or
**frozen** (owning immutable arrays loaded from a bundle; frozen
classifiers cache their clamped class norms, which are constant).

Bit-exactness contract: every stage reproduces the pre-refactor float
semantics operand-for-operand (same dtypes, same BLAS calls, same
clamping expressions) — the golden fixtures in ``tests/fixtures/``
enforce this against predictions recorded before the refactor.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Type

import numpy as np

from ..hd.backend import pack_bipolar
from ..hd.encoders import (Encoder, NonlinearEncoder,
                           RandomProjectionEncoder)
from ..hd.hypervector import hard_quantize
from ..hd.similarity import packed_classify
from ..models.extractor import FeatureExtractor
from ..telemetry import get_registry, span

__all__ = [
    "Stage", "StageError", "FeatureScaler",
    "ExtractStage", "FlattenStage", "ScaleStage", "ManifoldReduceStage",
    "EncodeStage", "FusedEncodeStage", "ScalePoolStage",
    "ClassifyStage", "PackedClassifyStage",
    "cosine_similarities", "clamped_norms", "encoder_spec",
    "register_stage", "stage_from_spec", "STAGE_TYPES",
]

#: Encoder kinds the encode stages can (de)serialize.
ENCODER_TYPES = ("nonlinear", "random_projection")

_DEGENERATE_STD = 1e-8
_NORM_FLOOR = 1e-12


class StageError(RuntimeError):
    """A stage spec is unknown, malformed, or missing its arrays."""


# ----------------------------------------------------------------------
# Shared math helpers (one implementation, used by train *and* serve)
# ----------------------------------------------------------------------
def clamped_norms(matrix: np.ndarray) -> np.ndarray:
    """Row norms with the trainer's degenerate-norm clamp (``< 1e-12 → 1``)."""
    norms = np.linalg.norm(matrix, axis=1)
    return np.where(norms < _NORM_FLOOR, 1.0, norms)


def cosine_similarities(class_matrix: np.ndarray, queries: np.ndarray,
                        class_norms: Optional[np.ndarray] = None
                        ) -> np.ndarray:
    """Cosine similarity δ(M, H), ``(n, k)`` — the paper's normalized δ.

    This is the canonical implementation behind both
    :func:`repro.learn.mass.normalized_similarity` (training) and the
    serving engine's classifier stage; passing precomputed
    ``class_norms`` (constant for a frozen model) skips their
    recomputation without changing a single bit of the result.
    """
    queries = np.atleast_2d(queries)
    if class_norms is None:
        class_norms = clamped_norms(class_matrix)
    query_norms = np.linalg.norm(queries, axis=1, keepdims=True)
    query_norms = np.where(query_norms < _NORM_FLOOR, 1.0, query_norms)
    return (queries @ class_matrix.T) / (query_norms * class_norms[None, :])


# ----------------------------------------------------------------------
# FeatureScaler (canonical home; re-exported by repro.learn)
# ----------------------------------------------------------------------
class FeatureScaler:
    """Standardize features with training-set statistics.

    CNN (ReLU) features are non-negative and heavily skewed; centering
    them is what makes the signs of the random projection informative.
    """

    def __init__(self):
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "FeatureScaler":
        features = np.asarray(features, dtype=np.float64)
        std = features.std(axis=0)
        if np.all(std < _DEGENERATE_STD):
            raise ValueError(
                "FeatureScaler.fit: every feature dimension has "
                "(near-)zero standard deviation — the input is constant "
                "and cannot be standardized.  Check the upstream feature "
                "extractor (dead layer?) or the input batch.")
        self.mean = features.mean(axis=0)
        self.std = np.where(std < _DEGENERATE_STD, 1.0, std)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("FeatureScaler used before fit()")
        return (features - self.mean) / self.std

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on ``features`` and return them standardized (symmetry
        convenience mirroring ``transform``)."""
        return self.fit(features).transform(features)


# ----------------------------------------------------------------------
# Stage registry
# ----------------------------------------------------------------------
#: Registered stage types: ``spec["type"] → Stage subclass``.
STAGE_TYPES: Dict[str, Type["Stage"]] = {}


def register_stage(cls: Type["Stage"]) -> Type["Stage"]:
    """Class decorator adding a stage type to the topology registry."""
    STAGE_TYPES[cls.stage_type] = cls
    return cls


def stage_from_spec(spec: Dict[str, Any],
                    arrays: Dict[str, np.ndarray]) -> "Stage":
    """Rebuild one stage from its topology entry plus its weight arrays.

    ``arrays`` uses the flat historical key names (see module docstring);
    each stage picks out the keys it owns.  Unknown types raise
    :class:`StageError` so a bundle written by a newer build fails
    loudly instead of mis-executing.
    """
    stage_type = spec.get("type")
    cls = STAGE_TYPES.get(stage_type)
    if cls is None:
        raise StageError(
            f"unknown stage type {stage_type!r}; this build supports "
            f"{sorted(STAGE_TYPES)}")
    return cls.from_spec(spec, arrays)


class Stage:
    """Protocol/base for named, serializable pipeline stages."""

    #: Topology discriminator (set by subclasses; used by the registry).
    stage_type: str = ""

    #: Whether a :class:`~repro.pipeline.cache.StageCache` may memoize
    #: this stage's output (the cheap classify stages opt out).
    cacheable: bool = True

    def __init__(self, name: str):
        if not name:
            raise ValueError("stages must be named")
        self.name = str(name)

    # -- execution -----------------------------------------------------
    @property
    def span_name(self) -> str:
        """Telemetry span emitted by the graph runner for this stage."""
        return f"stage.{self.name}"

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        raise NotImplementedError

    # -- serialization -------------------------------------------------
    def spec(self) -> Dict[str, Any]:
        """JSON-serializable topology entry (no weights)."""
        return {"type": self.stage_type, "name": self.name}

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """This stage's weights under their archive key names."""
        return {}

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore weights from a flat archive dict (picks own keys)."""

    @classmethod
    def from_spec(cls, spec: Dict[str, Any],
                  arrays: Dict[str, np.ndarray]) -> "Stage":
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


# ----------------------------------------------------------------------
# Concrete stages
# ----------------------------------------------------------------------
@register_stage
class FlattenStage(Stage):
    """Reshape ``(n, …)`` inputs to ``(n, F)`` (VanillaHD's raw pixels)."""

    stage_type = "flatten"

    def __init__(self, name: str = "flatten"):
        super().__init__(name)

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        batch = np.asarray(batch)
        return batch.reshape(len(batch), -1)

    @classmethod
    def from_spec(cls, spec: Dict[str, Any],
                  arrays: Dict[str, np.ndarray]) -> "FlattenStage":
        return cls(spec.get("name", "flatten"))


@register_stage
class ExtractStage(Stage):
    """Frozen truncated-CNN feature extraction (NCHW images → ``(n, F)``)."""

    stage_type = "extract"

    def __init__(self, extractor: FeatureExtractor, name: str = "extract"):
        super().__init__(name)
        self.extractor = extractor

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        return self.extractor.extract(np.asarray(batch))

    def spec(self) -> Dict[str, Any]:
        model = self.extractor.model
        return {
            "type": self.stage_type, "name": self.name,
            "model": model.name,
            "layer_index": int(self.extractor.layer_index),
            "num_classes": int(model.num_classes),
            "image_size": int(model.image_size),
            "width_mult": float(getattr(model, "width_mult", 1.0)),
            "feature_shape": [int(s) for s in self.extractor.feature_shape],
        }

    def state_arrays(self) -> Dict[str, np.ndarray]:
        return {f"model.{key}": np.asarray(value)
                for key, value in self.extractor.model.state_dict().items()}

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        state = {key[len("model."):]: value
                 for key, value in arrays.items()
                 if key.startswith("model.")}
        if not state:
            raise StageError(
                f"stage {self.name!r} found no model.* arrays to load")
        self.extractor.model.load_state_dict(state)

    @classmethod
    def from_spec(cls, spec: Dict[str, Any],
                  arrays: Dict[str, np.ndarray]) -> "ExtractStage":
        from ..models.registry import create_model
        model = create_model(spec["model"],
                             num_classes=int(spec["num_classes"]),
                             width_mult=float(spec.get("width_mult", 1.0)),
                             image_size=int(spec["image_size"]))
        stage = cls(FeatureExtractor(model, int(spec["layer_index"])),
                    name=spec.get("name", "extract"))
        stage.load_arrays(arrays)
        model.eval()
        return stage


@register_stage
class ScaleStage(Stage):
    """Standardization ``(x − μ) / σ`` with training-set statistics."""

    stage_type = "scale"

    def __init__(self, scaler: Optional[FeatureScaler] = None,
                 name: str = "scale"):
        super().__init__(name)
        self.scaler = scaler if scaler is not None else FeatureScaler()

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        return self.scaler.transform(
            np.asarray(batch, dtype=np.float64))

    def state_arrays(self) -> Dict[str, np.ndarray]:
        if self.scaler.mean is None:
            return {}
        return {"scaler.mean": np.asarray(self.scaler.mean),
                "scaler.std": np.asarray(self.scaler.std)}

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        if "scaler.mean" not in arrays:
            raise StageError(
                f"stage {self.name!r} requires scaler.mean/scaler.std")
        self.scaler.mean = np.asarray(arrays["scaler.mean"],
                                      dtype=np.float64)
        self.scaler.std = np.asarray(arrays["scaler.std"],
                                     dtype=np.float64)

    @classmethod
    def from_spec(cls, spec: Dict[str, Any],
                  arrays: Dict[str, np.ndarray]) -> "ScaleStage":
        stage = cls(name=spec.get("name", "scale"))
        stage.load_arrays(arrays)
        return stage


@register_stage
class ManifoldReduceStage(Stage):
    """Manifold compression Ψ: crop-to-even max-pool (window 2) + FC.

    Numerically identical to ``F.max_pool2d(kernel=2)`` + ``F.linear``
    on the same operands (max over the same four elements, then the same
    ``pooled @ Wᵀ + b`` BLAS call) — proven bit-exact against the
    autograd path by the golden fixtures and the engine-parity tests.

    The weight/bias *providers* are zero-argument callables so a live
    stage built from a :class:`~repro.learn.manifold.ManifoldLearner`
    always sees the current (still-training) FC parameters, while a
    frozen stage returns its loaded arrays.
    """

    stage_type = "reduce"
    span_name = "stage.manifold"  # historical telemetry name

    def __init__(self, feature_shape: Sequence[int], out_features: int,
                 pooling: bool,
                 weight_fn: Callable[[], np.ndarray],
                 bias_fn: Optional[Callable[[], Optional[np.ndarray]]] = None,
                 name: str = "reduce"):
        super().__init__(name)
        if len(feature_shape) != 3:
            raise ValueError("feature_shape must be (C, H, W)")
        self.feature_shape = tuple(int(s) for s in feature_shape)
        self.out_features = int(out_features)
        self.pooling = bool(pooling)
        self._weight_fn = weight_fn
        self._bias_fn = bias_fn

    @property
    def weight(self) -> np.ndarray:
        return self._weight_fn()

    @property
    def bias(self) -> Optional[np.ndarray]:
        return self._bias_fn() if self._bias_fn is not None else None

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        features = np.asarray(batch, dtype=np.float64)
        c, h, w = self.feature_shape
        x = features.reshape(-1, c, h, w)
        if self.pooling:
            n = len(x)
            x = x[:, :, :h // 2 * 2, :w // 2 * 2]
            x = x.reshape(n, c, h // 2, 2, w // 2, 2).max(axis=(3, 5))
        pooled = x.reshape(len(x), -1)
        out = pooled @ self.weight.T
        bias = self.bias
        if bias is not None:
            out = out + bias
        return out

    def spec(self) -> Dict[str, Any]:
        return {
            "type": self.stage_type, "name": self.name,
            "feature_shape": [int(s) for s in self.feature_shape],
            "out_features": int(self.out_features),
            "pooling": bool(self.pooling),
            "has_bias": self.bias is not None,
        }

    def state_arrays(self) -> Dict[str, np.ndarray]:
        arrays = {"manifold.weight": np.asarray(self.weight,
                                                dtype=np.float64)}
        bias = self.bias
        if bias is not None:
            arrays["manifold.bias"] = np.asarray(bias, dtype=np.float64)
        return arrays

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        if "manifold.weight" not in arrays:
            raise StageError(
                f"stage {self.name!r} requires manifold.weight")
        weight = np.asarray(arrays["manifold.weight"], dtype=np.float64)
        bias = arrays.get("manifold.bias")
        bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        self._weight_fn = lambda: weight
        self._bias_fn = (lambda: bias) if bias is not None else None

    @classmethod
    def from_learner(cls, learner, name: str = "reduce"
                     ) -> "ManifoldReduceStage":
        """Live stage sharing weights with a training ManifoldLearner."""
        bias_fn = None
        if learner.fc.bias is not None:
            bias_fn = lambda: np.asarray(learner.fc.bias.data,  # noqa: E731
                                         dtype=np.float64)
        return cls(learner.feature_shape, learner.out_features,
                   learner.pooling,
                   weight_fn=lambda: np.asarray(learner.fc.weight.data,
                                                dtype=np.float64),
                   bias_fn=bias_fn, name=name)

    @classmethod
    def from_spec(cls, spec: Dict[str, Any],
                  arrays: Dict[str, np.ndarray]) -> "ManifoldReduceStage":
        stage = cls(spec["feature_shape"], int(spec["out_features"]),
                    bool(spec.get("pooling")), weight_fn=lambda: None,
                    name=spec.get("name", "reduce"))
        stage.load_arrays(arrays)
        return stage


def encoder_spec(encoder: Encoder) -> Dict[str, Any]:
    """Legacy-shaped encoder description (the bundle ``info["encoder"]``)."""
    if isinstance(encoder, RandomProjectionEncoder):
        kind = "random_projection"
    elif isinstance(encoder, NonlinearEncoder):
        kind = "nonlinear"
    else:
        raise StageError(
            f"cannot serialize encoder of type {type(encoder).__name__}; "
            "supported: RandomProjectionEncoder, NonlinearEncoder")
    return {"type": kind,
            "in_features": int(encoder.in_features),
            "dim": int(encoder.dim),
            "quantize": bool(encoder.quantize)}


@register_stage
class EncodeStage(Stage):
    """Feature → hypervector map Φ (random projection or nonlinear).

    Wraps a live :class:`~repro.hd.encoders.Encoder`, so the encoder
    math (and its ``hd.encode.*`` telemetry) lives in exactly one place;
    frozen stages rebuild the encoder from stored arrays via the
    ``from_arrays`` constructors without re-randomizing.
    """

    stage_type = "encode"

    def __init__(self, encoder: Encoder, name: str = "encode"):
        super().__init__(name)
        encoder_spec(encoder)  # raises early for unsupported encoders
        self.encoder = encoder

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        return self.encoder.encode(batch)

    @property
    def encoder_type(self) -> str:
        return encoder_spec(self.encoder)["type"]

    @property
    def quantize(self) -> bool:
        return bool(self.encoder.quantize)

    def spec(self) -> Dict[str, Any]:
        return {"type": self.stage_type, "name": self.name,
                "encoder": encoder_spec(self.encoder)}

    def state_arrays(self) -> Dict[str, np.ndarray]:
        if isinstance(self.encoder, RandomProjectionEncoder):
            return {"encoder.projection":
                    np.asarray(self.encoder.projection, dtype=np.float64)}
        return {"encoder.basis": np.asarray(self.encoder.basis,
                                            dtype=np.float64),
                "encoder.phase": np.asarray(self.encoder.phase,
                                            dtype=np.float64)}

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        quantize = self.encoder.quantize
        if isinstance(self.encoder, RandomProjectionEncoder):
            if "encoder.projection" not in arrays:
                raise StageError(
                    f"stage {self.name!r} requires encoder.projection")
            self.encoder = RandomProjectionEncoder.from_arrays(
                arrays["encoder.projection"], quantize=quantize)
        else:
            if "encoder.basis" not in arrays:
                raise StageError(
                    f"stage {self.name!r} requires encoder.basis/phase")
            self.encoder = NonlinearEncoder.from_arrays(
                arrays["encoder.basis"], arrays["encoder.phase"],
                quantize=quantize)

    @classmethod
    def from_spec(cls, spec: Dict[str, Any],
                  arrays: Dict[str, np.ndarray]) -> "EncodeStage":
        enc = spec.get("encoder") or {}
        quantize = bool(enc.get("quantize", True))
        if enc.get("type") == "random_projection":
            if "encoder.projection" not in arrays:
                raise StageError("encode stage requires encoder.projection")
            encoder: Encoder = RandomProjectionEncoder.from_arrays(
                arrays["encoder.projection"], quantize=quantize)
        elif enc.get("type") == "nonlinear":
            if "encoder.basis" not in arrays or "encoder.phase" not in arrays:
                raise StageError(
                    "encode stage requires encoder.basis and encoder.phase")
            encoder = NonlinearEncoder.from_arrays(
                arrays["encoder.basis"], arrays["encoder.phase"],
                quantize=quantize)
        else:
            raise StageError(
                f"unknown encoder type {enc.get('type')!r}; this build "
                f"supports {sorted(ENCODER_TYPES)}")
        return cls(encoder, name=spec.get("name", "encode"))


@register_stage
class FusedEncodeStage(Stage):
    """Scale ∘ Encode folded into one affine GEMM (compiler-generated).

    Produced by the ``fuse_scale_encode`` pass: standardization
    ``(x − μ)/σ`` followed by a projection GEMM is itself affine, so
    the projection matrix is pre-scaled per input feature
    (``P̂ = P / σ[:, None]``) and the constant term becomes an additive
    offset (``o = −(μ/σ) @ P``) — one GEMM per batch instead of a
    subtract/divide sweep over the full feature width plus a GEMM.

    Float tolerance (documented + gated): the regrouping changes the
    floating-point evaluation order, so *raw* encodings agree with the
    unfused graph only to ~1e-9 relative; *quantized* (±1) encodings
    and predicted labels are verified exactly by
    ``compile_graph(verify_batch=...)``, the compile test-suite, and
    ``scripts/check_stage_parity.sh``.
    """

    stage_type = "encode_fused"
    span_name = "stage.encode"  # the fused stage is the encode step

    def __init__(self, kind: str, matrix: np.ndarray, offset: np.ndarray,
                 phase: Optional[np.ndarray] = None, quantize: bool = True,
                 name: str = "encode"):
        super().__init__(name)
        if kind not in ENCODER_TYPES:
            raise StageError(
                f"unknown encoder type {kind!r}; this build supports "
                f"{sorted(ENCODER_TYPES)}")
        self.kind = str(kind)
        self.matrix = np.asarray(matrix, dtype=np.float64)
        self.offset = np.asarray(offset, dtype=np.float64)
        if self.matrix.ndim != 2 or self.offset.shape != \
                (self.matrix.shape[1],):
            raise StageError(
                "fused encode needs a (F, D) matrix and a (D,) offset")
        self.phase = (None if phase is None
                      else np.asarray(phase, dtype=np.float64))
        if self.kind == "nonlinear" and self.phase is None:
            raise StageError("fused nonlinear encode requires a phase")
        self.quantize = bool(quantize)
        self.fused_from = ["scale", "encode"]

    @property
    def in_features(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def dim(self) -> int:
        return int(self.matrix.shape[1])

    @property
    def encoder_type(self) -> str:
        return self.kind

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        features = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        if features.shape[-1] != self.in_features:
            raise StageError(
                f"fused encode expects {self.in_features} features, got "
                f"{features.shape[-1]}")
        registry = get_registry()
        registry.inc("hd.encode.samples", len(features))
        registry.inc("hd.encode.macs",
                     len(features) * self.in_features * self.dim)
        with span("hd.encode.FusedEncodeStage",
                  nbytes=int(features.nbytes)):
            proj = features @ self.matrix + self.offset
            if self.kind == "nonlinear":
                raw = np.cos(proj + self.phase) * np.sin(proj)
            else:
                raw = proj
            return hard_quantize(raw) if self.quantize else raw

    def spec(self) -> Dict[str, Any]:
        return {"type": self.stage_type, "name": self.name,
                "encoder": {"type": self.kind,
                            "in_features": self.in_features,
                            "dim": self.dim,
                            "quantize": bool(self.quantize)},
                "fused": list(self.fused_from)}

    def state_arrays(self) -> Dict[str, np.ndarray]:
        if self.kind == "random_projection":
            arrays = {"encoder.projection": self.matrix}
        else:
            arrays = {"encoder.basis": self.matrix,
                      "encoder.phase": self.phase}
        arrays["encoder.offset"] = self.offset
        return arrays

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        matrix_key = ("encoder.projection"
                      if self.kind == "random_projection"
                      else "encoder.basis")
        if matrix_key not in arrays or "encoder.offset" not in arrays:
            raise StageError(
                f"stage {self.name!r} requires {matrix_key} and "
                "encoder.offset")
        self.matrix = np.asarray(arrays[matrix_key], dtype=np.float64)
        self.offset = np.asarray(arrays["encoder.offset"],
                                 dtype=np.float64)
        if self.kind == "nonlinear":
            if "encoder.phase" not in arrays:
                raise StageError(
                    f"stage {self.name!r} requires encoder.phase")
            self.phase = np.asarray(arrays["encoder.phase"],
                                    dtype=np.float64)

    @classmethod
    def from_spec(cls, spec: Dict[str, Any],
                  arrays: Dict[str, np.ndarray]) -> "FusedEncodeStage":
        enc = spec.get("encoder") or {}
        kind = enc.get("type")
        if kind not in ENCODER_TYPES:
            raise StageError(
                f"unknown encoder type {kind!r}; this build supports "
                f"{sorted(ENCODER_TYPES)}")
        matrix_key = ("encoder.projection" if kind == "random_projection"
                      else "encoder.basis")
        if matrix_key not in arrays or "encoder.offset" not in arrays:
            raise StageError(
                f"fused encode stage requires {matrix_key} and "
                "encoder.offset")
        stage = cls(kind, arrays[matrix_key], arrays["encoder.offset"],
                    phase=arrays.get("encoder.phase"),
                    quantize=bool(enc.get("quantize", True)),
                    name=spec.get("name", "encode"))
        stage.fused_from = list(spec.get("fused") or ["scale", "encode"])
        return stage

    @classmethod
    def from_scale_encode(cls, scale: "ScaleStage", encode: "EncodeStage"
                          ) -> "FusedEncodeStage":
        """Fold a fitted scale stage into the downstream encode GEMM."""
        scaler = scale.scaler
        if scaler.mean is None:
            raise StageError("cannot fuse an unfitted scale stage")
        mean = np.asarray(scaler.mean, dtype=np.float64)
        std = np.asarray(scaler.std, dtype=np.float64)
        encoder = encode.encoder
        if isinstance(encoder, RandomProjectionEncoder):
            base = np.asarray(encoder.projection, dtype=np.float64)
            kind, phase = "random_projection", None
        elif isinstance(encoder, NonlinearEncoder):
            base = np.asarray(encoder.basis, dtype=np.float64)
            kind = "nonlinear"
            phase = np.asarray(encoder.phase, dtype=np.float64)
        else:
            raise StageError(
                f"cannot fuse encoder of type {type(encoder).__name__}")
        if mean.shape[0] != base.shape[0]:
            raise StageError(
                f"scale stage is fitted for {mean.shape[0]} features but "
                f"the encoder expects {base.shape[0]}")
        stage = cls(kind, base / std[:, None], -(mean / std) @ base,
                    phase=phase, quantize=bool(encode.quantize),
                    name=encode.name)
        stage.fused_from = [scale.name, encode.name]
        return stage


@register_stage
class ScalePoolStage(Stage):
    """Standardize-then-max-pool fused stage (compiler-generated).

    Produced by the ``fuse_pool`` pass.  The pool cannot legally cross
    the scale stage upward into *extract* — standardization is a
    per-position affine map with distinct ``μ/σ`` per position, and
    ``max`` does not commute with it — so the pass folds the pool
    *down* out of :class:`ManifoldReduceStage` into the scale step
    instead.  That fold is **bit-exact**: the identical crop / reshape
    / ``max`` expressions run on the identical operands in the same
    order; only the stage boundary moves.  The win is that the
    full-width scaled intermediate dies immediately after pooling
    (4× smaller downstream batch rows) and the reduce stage degenerates
    to a plain GEMM.
    """

    stage_type = "scale_pool"
    span_name = "stage.scale"  # the fused stage is the scale step

    def __init__(self, feature_shape: Sequence[int],
                 scaler: Optional[FeatureScaler] = None,
                 name: str = "scale"):
        super().__init__(name)
        if len(feature_shape) != 3:
            raise ValueError("feature_shape must be (C, H, W)")
        self.feature_shape = tuple(int(s) for s in feature_shape)
        self.scaler = scaler if scaler is not None else FeatureScaler()
        self.fused_from = ["scale", "reduce"]

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        scaled = self.scaler.transform(
            np.asarray(batch, dtype=np.float64))
        c, h, w = self.feature_shape
        x = scaled.reshape(-1, c, h, w)
        n = len(x)
        x = x[:, :, :h // 2 * 2, :w // 2 * 2]
        x = x.reshape(n, c, h // 2, 2, w // 2, 2).max(axis=(3, 5))
        return x.reshape(n, -1)

    def spec(self) -> Dict[str, Any]:
        return {"type": self.stage_type, "name": self.name,
                "feature_shape": [int(s) for s in self.feature_shape],
                "fused": list(self.fused_from)}

    def state_arrays(self) -> Dict[str, np.ndarray]:
        if self.scaler.mean is None:
            return {}
        return {"scaler.mean": np.asarray(self.scaler.mean),
                "scaler.std": np.asarray(self.scaler.std)}

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        if "scaler.mean" not in arrays:
            raise StageError(
                f"stage {self.name!r} requires scaler.mean/scaler.std")
        self.scaler.mean = np.asarray(arrays["scaler.mean"],
                                      dtype=np.float64)
        self.scaler.std = np.asarray(arrays["scaler.std"],
                                     dtype=np.float64)

    @classmethod
    def from_spec(cls, spec: Dict[str, Any],
                  arrays: Dict[str, np.ndarray]) -> "ScalePoolStage":
        stage = cls(spec["feature_shape"], name=spec.get("name", "scale"))
        stage.load_arrays(arrays)
        stage.fused_from = list(spec.get("fused") or ["scale", "reduce"])
        return stage

    @classmethod
    def from_scale_reduce(cls, scale: "ScaleStage",
                          reduce: "ManifoldReduceStage"
                          ) -> "ScalePoolStage":
        """Fold a reduce stage's pooling into the upstream scale step."""
        if scale.scaler.mean is None:
            raise StageError("cannot fuse an unfitted scale stage")
        if not reduce.pooling:
            raise StageError(
                f"reduce stage {reduce.name!r} has no pooling to fold")
        frozen = FeatureScaler()
        frozen.mean = np.asarray(scale.scaler.mean, dtype=np.float64)
        frozen.std = np.asarray(scale.scaler.std, dtype=np.float64)
        stage = cls(reduce.feature_shape, scaler=frozen, name=scale.name)
        stage.fused_from = [scale.name, reduce.name]
        return stage


@register_stage
class ClassifyStage(Stage):
    """Cosine-similarity argmax over the class-hypervector matrix.

    Live stages read the (mutating) trainer matrix through a provider
    and recompute the clamped class norms per call — exactly what
    :func:`~repro.learn.mass.normalized_similarity` does during
    training.  Frozen stages own an immutable matrix and cache the norms
    once; the division expression is shared, so both paths agree
    bit-for-bit.
    """

    stage_type = "classify"
    span_name = "stage.similarity"  # historical telemetry name
    cacheable = False  # argmax over cached encodings is already cheap

    def __init__(self, matrix_fn: Callable[[], np.ndarray],
                 frozen: bool = False, name: str = "classify"):
        super().__init__(name)
        self._matrix_fn = matrix_fn
        self.frozen = bool(frozen)
        self._norms: Optional[np.ndarray] = None
        if self.frozen:
            self._norms = clamped_norms(self.class_matrix)

    @property
    def class_matrix(self) -> np.ndarray:
        return self._matrix_fn()

    def similarities(self, encoded: np.ndarray) -> np.ndarray:
        return cosine_similarities(self.class_matrix,
                                   np.atleast_2d(encoded),
                                   class_norms=self._norms)

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        return np.asarray(self.similarities(batch).argmax(axis=1))

    def spec(self) -> Dict[str, Any]:
        return {"type": self.stage_type, "name": self.name,
                "metric": "cosine"}

    def state_arrays(self) -> Dict[str, np.ndarray]:
        return {"classes": np.asarray(self.class_matrix,
                                      dtype=np.float64)}

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        if "classes" not in arrays:
            raise StageError(f"stage {self.name!r} requires classes")
        matrix = np.asarray(arrays["classes"], dtype=np.float64)
        self._matrix_fn = lambda: matrix
        self.frozen = True
        self._norms = clamped_norms(matrix)

    @classmethod
    def from_trainer(cls, trainer, name: str = "classify"
                     ) -> "ClassifyStage":
        """Live stage over a (still-training) MASS trainer's matrix."""
        return cls(lambda: trainer.class_matrix, frozen=False, name=name)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, name: str = "classify"
                    ) -> "ClassifyStage":
        """Frozen stage with cached clamped class norms."""
        matrix = np.asarray(matrix, dtype=np.float64)
        return cls(lambda: matrix, frozen=True, name=name)

    @classmethod
    def from_spec(cls, spec: Dict[str, Any],
                  arrays: Dict[str, np.ndarray]) -> "ClassifyStage":
        if "classes" not in arrays:
            raise StageError("classify stage requires classes")
        return cls.from_matrix(arrays["classes"],
                               name=spec.get("name", "classify"))


class PackedClassifyStage(Stage):
    """Bit-packed XOR-popcount classifier (bipolar operands only).

    The serving fast path: class hypervectors packed to uint64 words,
    queries packed per call, similarity = XOR + popcount.  Ranks
    identically to the float cosine path for bipolar operands (integer
    dots, no rounding).  Derived from a frozen :class:`ClassifyStage` at
    engine-load time — it is an execution *variant*, not a separate
    topology entry, so it is not registered for serialization.
    """

    stage_type = "classify_packed"
    span_name = "stage.similarity"
    cacheable = False

    def __init__(self, packed_classes: np.ndarray, dim: int,
                 name: str = "classify_packed"):
        super().__init__(name)
        self.packed_classes = np.asarray(packed_classes, dtype=np.uint64)
        self.dim = int(dim)

    def __call__(self, batch: np.ndarray, ctx: Optional[dict] = None
                 ) -> np.ndarray:
        packed = pack_bipolar(np.atleast_2d(batch))
        return packed_classify(self.packed_classes, packed, self.dim)

    def spec(self) -> Dict[str, Any]:
        return {"type": self.stage_type, "name": self.name,
                "dim": self.dim}

    @classmethod
    def from_class_matrix(cls, matrix: np.ndarray,
                          name: str = "classify_packed"
                          ) -> "PackedClassifyStage":
        matrix = np.asarray(matrix, dtype=np.float64)
        return cls(pack_bipolar(matrix), matrix.shape[1], name=name)

    @classmethod
    def from_classify(cls, stage: ClassifyStage,
                      name: str = "classify_packed"
                      ) -> "PackedClassifyStage":
        return cls.from_class_matrix(stage.class_matrix, name=name)
