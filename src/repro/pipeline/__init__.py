"""Composable stage graph: the single executable model representation.

``repro.pipeline`` owns the NSHD stage math (extract → scale → reduce →
encode → classify) exactly once.  The ``repro.learn`` pipelines build
live graphs for training, checkpoints and serve bundles persist graph
topology + per-stage arrays, and the serving engine executes frozen
graphs.  See ``docs/STAGE_GRAPH.md`` for the protocol and serialization
layout.
"""

from .graph import StageGraph
from .stages import (STAGE_TYPES, ClassifyStage, EncodeStage, ExtractStage,
                     FeatureScaler, FlattenStage, ManifoldReduceStage,
                     PackedClassifyStage, ScaleStage, Stage, StageError,
                     clamped_norms, cosine_similarities, encoder_spec,
                     register_stage, stage_from_spec)

__all__ = [
    "Stage", "StageGraph", "StageError", "FeatureScaler",
    "ExtractStage", "FlattenStage", "ScaleStage", "ManifoldReduceStage",
    "EncodeStage", "ClassifyStage", "PackedClassifyStage",
    "cosine_similarities", "clamped_norms", "encoder_spec",
    "register_stage", "stage_from_spec", "STAGE_TYPES",
]
