"""Composable stage graph: the single executable model representation.

``repro.pipeline`` owns the NSHD stage math (extract → scale → reduce →
encode → classify) exactly once.  The ``repro.learn`` pipelines build
live graphs for training, checkpoints and serve bundles persist graph
topology + per-stage arrays, and the serving engine executes frozen
graphs.  See ``docs/STAGE_GRAPH.md`` for the protocol and serialization
layout.

The compiler layer (``compile_graph``) rewrites frozen graphs with
fusion passes (:mod:`repro.pipeline.passes`), binds pluggable per-stage
executors (:mod:`repro.pipeline.executors`), and the digest-keyed
:class:`StageCache` (:mod:`repro.pipeline.cache`) memoizes stage
outputs across re-fit / A/B-eval workflows.
"""

from .cache import StageCache, array_digest, canonical_json, stage_digest
from .compile import (CompileError, CompilePlan, CompileResult,
                      compile_graph, resolve_passes)
from .executors import (EXECUTORS, ExecutorStage, StageExecutor,
                        register_executor)
from .graph import StageGraph
from .passes import PASSES, fuse_pool, fuse_scale_encode, register_pass
from .stages import (STAGE_TYPES, ClassifyStage, EncodeStage, ExtractStage,
                     FeatureScaler, FlattenStage, FusedEncodeStage,
                     ManifoldReduceStage, PackedClassifyStage,
                     ScalePoolStage, ScaleStage, Stage, StageError,
                     clamped_norms, cosine_similarities, encoder_spec,
                     register_stage, stage_from_spec)

__all__ = [
    "Stage", "StageGraph", "StageError", "FeatureScaler",
    "ExtractStage", "FlattenStage", "ScaleStage", "ManifoldReduceStage",
    "EncodeStage", "FusedEncodeStage", "ScalePoolStage",
    "ClassifyStage", "PackedClassifyStage",
    "cosine_similarities", "clamped_norms", "encoder_spec",
    "register_stage", "stage_from_spec", "STAGE_TYPES",
    # compiler layer
    "compile_graph", "CompileError", "CompilePlan", "CompileResult",
    "resolve_passes", "PASSES", "register_pass",
    "fuse_scale_encode", "fuse_pool",
    "EXECUTORS", "StageExecutor", "ExecutorStage", "register_executor",
    "StageCache", "canonical_json", "array_digest", "stage_digest",
]
