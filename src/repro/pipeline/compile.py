"""The stage-graph compiler: passes → executor binding → verification.

``compile_graph`` takes a **frozen** :class:`StageGraph` (built from a
persisted ``topology()``; see :mod:`repro.pipeline.passes` for why live
graphs must be frozen first) and returns a :class:`CompileResult` whose
graph has (a) the requested fusion passes applied and (b) the requested
per-stage executors bound.  The compiled graph is still serializable —
fused stages are registered topology types, executor wrappers are
serialization-transparent — and compilation is a fixed point:
re-compiling a compiled topology with the same passes changes nothing.

A :class:`CompilePlan` is the JSON-serializable request (pass names +
``{stage name → executor name}`` map or ``"auto"``) that
``serve.bundle`` persists under ``info["compile"]`` and the serve CLI
accepts as a ``[compile]`` section; pre-compile bundles simply have no
plan and decode to the empty plan (no passes, no executors).

Metrics: ``compile.runs``, ``compile.passes_applied``,
``compile.executors_bound``, ``compile.verify_failures``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..telemetry import get_registry
from .executors import EXECUTORS
from .graph import StageGraph
from .passes import PASSES
from .stages import StageError

__all__ = ["CompileError", "CompilePlan", "CompileResult",
           "compile_graph", "resolve_passes"]

PassSpec = Union[None, str, Sequence[str]]
ExecutorSpec = Union[None, str, Dict[str, str]]


class CompileError(StageError):
    """A compile request references unknown passes/executors or the
    compiled graph failed verification against the interpreted one."""


def resolve_passes(passes: PassSpec) -> List[str]:
    """Normalize a pass request to an ordered list of registered names.

    ``None``/``"none"``/``[]`` → no passes; ``"all"`` → every
    registered pass in canonical order; a list is validated (and
    applied) in the order given.
    """
    if passes is None or passes == "none":
        return []
    if passes == "all":
        return list(PASSES)
    if isinstance(passes, str):
        passes = [passes]
    names = [str(name) for name in passes]
    unknown = [name for name in names if name not in PASSES]
    if unknown:
        raise CompileError(
            f"unknown compile passes {unknown}; registered: "
            f"{list(PASSES)}")
    return names


def _resolve_executors(graph: StageGraph, executors: ExecutorSpec
                       ) -> Dict[str, str]:
    """Normalize an executor request to ``{stage name → executor name}``.

    ``"auto"`` selects the packed classify path where applicable (the
    engine's historical auto-enable rule) and nothing else.  Explicit
    maps are validated: the stage must exist in the *compiled* graph
    and the executor must be registered and applicable.
    """
    if executors is None:
        return {}
    if executors == "auto":
        # Packed classify needs bipolar *queries* too: only auto-enable
        # when every encode stage in the graph hard-quantizes.
        encoders = [stage for stage in graph.stages
                    if getattr(stage, "encoder_type", None) is not None]
        queries_bipolar = bool(encoders) and all(
            getattr(stage, "quantize", False) for stage in encoders)
        if not queries_bipolar:
            return {}
        plan = {}
        packed = EXECUTORS["packed"]
        for stage in graph.stages:
            if packed.applicable(stage):
                plan[stage.name] = "packed"
        return plan
    if not isinstance(executors, dict):
        raise CompileError(
            f"executors must be None, 'auto', or a {{stage: executor}} "
            f"map, got {executors!r}")
    plan = {}
    for stage_name, executor_name in executors.items():
        stage_name, executor_name = str(stage_name), str(executor_name)
        if stage_name not in graph:
            raise CompileError(
                f"executor plan references unknown stage "
                f"{stage_name!r}; compiled graph has {graph.names}")
        executor = EXECUTORS.get(executor_name)
        if executor is None:
            raise CompileError(
                f"unknown executor {executor_name!r}; registered: "
                f"{sorted(EXECUTORS)}")
        stage = graph.stage(stage_name)
        if not executor.applicable(stage):
            raise CompileError(executor.why_not(stage))
        plan[stage_name] = executor_name
    return plan


class CompilePlan:
    """Serializable compile request: pass names + executor assignment."""

    def __init__(self, passes: PassSpec = None,
                 executors: ExecutorSpec = None):
        self.passes = resolve_passes(passes)
        if executors is not None and executors != "auto" \
                and not isinstance(executors, dict):
            raise CompileError(
                f"executors must be None, 'auto', or a {{stage: "
                f"executor}} map, got {executors!r}")
        if isinstance(executors, dict):
            unknown = [name for name in executors.values()
                       if str(name) not in EXECUTORS]
            if unknown:
                raise CompileError(
                    f"unknown executors {unknown}; registered: "
                    f"{sorted(EXECUTORS)}")
            executors = {str(k): str(v) for k, v in executors.items()}
        self.executors: ExecutorSpec = executors

    def is_empty(self) -> bool:
        return not self.passes and not self.executors

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"passes": list(self.passes)}
        if self.executors is not None:
            out["executors"] = (self.executors if isinstance(
                self.executors, str) else dict(self.executors))
        return out

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "CompilePlan":
        data = data or {}
        return cls(passes=data.get("passes"),
                   executors=data.get("executors"))

    def __repr__(self) -> str:
        return (f"CompilePlan(passes={self.passes}, "
                f"executors={self.executors!r})")


class CompileResult:
    """What ``compile_graph`` hands back: the graph + what happened."""

    def __init__(self, graph: StageGraph, passes: List[str],
                 passes_applied: List[str],
                 executor_plan: Dict[str, str]):
        self.graph = graph
        self.passes = list(passes)
        self.passes_applied = list(passes_applied)
        self.executor_plan = dict(executor_plan)

    def describe(self) -> Dict[str, Any]:
        return {"passes": list(self.passes),
                "passes_applied": list(self.passes_applied),
                "executors": dict(self.executor_plan),
                "graph": self.graph.describe()}

    def __repr__(self) -> str:
        return (f"CompileResult({self.graph.describe()}, "
                f"applied={self.passes_applied}, "
                f"executors={self.executor_plan})")


def compile_graph(graph: StageGraph, passes: PassSpec = "all",
                  executors: ExecutorSpec = None,
                  verify_batch: Optional[np.ndarray] = None,
                  tolerance: float = 1e-9) -> CompileResult:
    """Apply fusion passes and bind executors to a frozen graph.

    Parameters
    ----------
    graph:
        A frozen :class:`StageGraph` (passes snapshot weights — do not
        compile live training graphs directly; freeze via
        ``from_topology`` or ``pipeline.compiled()`` first).
    passes:
        ``"all"`` (default), ``"none"``/``None``, or an ordered list of
        registered pass names.
    executors:
        ``None`` (interpreted), ``"auto"`` (packed classify where
        applicable), or an explicit ``{stage name → executor name}``
        map validated against the registry.
    verify_batch:
        Optional input batch for the *full* graph; when given, the
        compiled graph must agree with the interpreted one on it —
        exactly for integer outputs (labels), within ``tolerance`` for
        float outputs — or :class:`CompileError` is raised.
    """
    registry = get_registry()
    registry.inc("compile.runs")
    pass_names = resolve_passes(passes)
    compiled = graph
    applied: List[str] = []
    for name in pass_names:
        rewritten = PASSES[name](compiled)
        if rewritten is not None:
            compiled = rewritten
            applied.append(name)
            registry.inc("compile.passes_applied")

    plan = _resolve_executors(compiled, executors)
    if plan:
        stages = [(EXECUTORS[plan[s.name]].bind(s) if s.name in plan
                   else s) for s in compiled.stages]
        registry.inc("compile.executors_bound", len(plan))
        compiled = StageGraph(stages, name=compiled.name)

    result = CompileResult(compiled, pass_names, applied, plan)
    if verify_batch is not None:
        _verify(graph, compiled, verify_batch, tolerance)
    return result


def _verify(reference: StageGraph, compiled: StageGraph,
            batch: np.ndarray, tolerance: float) -> None:
    """Legalize-then-verify: compiled output must match interpreted."""
    want = np.asarray(reference.run(batch))
    got = np.asarray(compiled.run(batch))
    ok = want.shape == got.shape
    if ok:
        if np.issubdtype(want.dtype, np.integer):
            ok = bool(np.array_equal(got, want))
        else:
            ok = bool(np.allclose(got, want, rtol=tolerance,
                                  atol=tolerance))
    if not ok:
        get_registry().inc("compile.verify_failures")
        raise CompileError(
            f"compiled graph disagrees with the interpreted graph on "
            f"the verify batch (shape {want.shape} vs {got.shape}, "
            f"tolerance {tolerance})")
