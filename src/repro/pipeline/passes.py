"""Graph-rewrite fusion passes for the stage-graph compiler.

A *pass* is a pure function ``pass(graph) -> Optional[StageGraph]``: it
returns a **new** graph with the rewrite applied (sharing the frozen
stage objects it did not touch), or ``None`` when the pattern does not
occur — the compiler uses that to report which passes actually fired.
Passes never mutate their input graph, and every fused stage they
produce is a registered, serializable stage type, so a compiled graph
round-trips through ``topology()`` / ``from_topology`` like any other.

Passes are registered in :data:`PASSES` (an ordered registry — the
registration order is the canonical application order used by
``passes="all"``).  Both shipped passes are *idempotent*: their output
stages do not match their own patterns, so re-compiling a compiled
topology is a fixed point (tested).

Run passes on **frozen** graphs (``StageGraph.from_topology`` output or
``pipeline.compiled()``): fusing folds the *current* weights into the
fused stage, so a live training graph would silently stop tracking its
trainers after fusion.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

import numpy as np

from .graph import StageGraph
from .stages import (EncodeStage, FusedEncodeStage, ManifoldReduceStage,
                     ScalePoolStage, ScaleStage)

__all__ = ["PASSES", "register_pass", "fuse_scale_encode", "fuse_pool"]

#: Registered passes, in canonical application order.
PASSES: "OrderedDict[str, Callable[[StageGraph], Optional[StageGraph]]]" \
    = OrderedDict()


def register_pass(name: str):
    """Decorator adding a pass to the ordered registry under ``name``."""
    def decorate(fn):
        PASSES[name] = fn
        return fn
    return decorate


@register_pass("fuse_scale_encode")
def fuse_scale_encode(graph: StageGraph) -> Optional[StageGraph]:
    """Fold adjacent ``scale → encode`` into one affine GEMM stage.

    ``((x − μ)/σ) @ P  ==  x @ (P/σ[:, None]) + (−(μ/σ) @ P)`` — see
    :class:`~repro.pipeline.stages.FusedEncodeStage` for the documented
    float tolerance of the regrouping.
    """
    stages = list(graph.stages)
    out, i, changed = [], 0, False
    while i < len(stages):
        stage = stages[i]
        nxt = stages[i + 1] if i + 1 < len(stages) else None
        if (type(stage) is ScaleStage and type(nxt) is EncodeStage
                and stage.scaler.mean is not None):
            out.append(FusedEncodeStage.from_scale_encode(stage, nxt))
            i += 2
            changed = True
            continue
        out.append(stage)
        i += 1
    if not changed:
        return None
    return StageGraph(out, name=graph.name)


@register_pass("fuse_pool")
def fuse_pool(graph: StageGraph) -> Optional[StageGraph]:
    """Fold the reduce stage's max-pool into the upstream scale stage.

    Rewrites ``scale → reduce(pooling=True)`` into ``scale_pool →
    reduce(pooling=False)`` with the reduce stage re-shaped to the
    pooled ``(C, H//2, W//2)`` input.  Bit-exact: the identical pooling
    expressions run on the identical operands — only the stage boundary
    moves (the ISSUE's extract-side fold is unsound because max does
    not commute with the per-position affine scale in between; see
    :class:`~repro.pipeline.stages.ScalePoolStage`).
    """
    stages = list(graph.stages)
    out, i, changed = [], 0, False
    while i < len(stages):
        stage = stages[i]
        nxt = stages[i + 1] if i + 1 < len(stages) else None
        if (type(stage) is ScaleStage
                and type(nxt) is ManifoldReduceStage and nxt.pooling
                and stage.scaler.mean is not None):
            out.append(ScalePoolStage.from_scale_reduce(stage, nxt))
            weight = np.asarray(nxt.weight, dtype=np.float64)
            bias = nxt.bias
            bias = (None if bias is None
                    else np.asarray(bias, dtype=np.float64))
            c, h, w = nxt.feature_shape
            out.append(ManifoldReduceStage(
                (c, h // 2, w // 2), nxt.out_features, pooling=False,
                weight_fn=lambda w_=weight: w_,
                bias_fn=(None if bias is None
                         else (lambda b_=bias: b_)),
                name=nxt.name))
            i += 2
            changed = True
            continue
        out.append(stage)
        i += 1
    if not changed:
        return None
    return StageGraph(out, name=graph.name)
