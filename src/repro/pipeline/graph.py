"""The StageGraph: one executable representation for train *and* serve.

A :class:`StageGraph` is an ordered list of named
:class:`~repro.pipeline.stages.Stage` objects.  It is the single
executable description of an NSHD-family model:

* the ``repro.learn`` pipelines build **live** graphs whose stages share
  weights with the training objects (ManifoldLearner, MASS trainer), so
  ``graph.run`` always reflects the current training state;
* checkpoints and serve bundles persist ``graph.topology()`` (a list of
  JSON stage specs) next to ``graph.state_arrays()`` (the flat weight
  archive with the historical key names), and ``StageGraph.from_topology``
  rebuilds a **frozen** graph from the two;
* the serving engine is a thin executor around a frozen graph — it calls
  ``run``/``call`` and adds caching/batching, never math.

Telemetry: the graph runner is the single place that emits ``stage.*``
spans.  Training loops run stages with ``instrument=True`` (preserving
the historical ``stage.extract`` / ``stage.manifold`` / ``stage.encode``
/ ``stage.similarity`` span stream the run ledger and regression gate
key on); inference/eval paths pass ``instrument=False``, matching the
pre-refactor behaviour where predict did not emit per-stage spans.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..telemetry import request_span, span
from ..telemetry.reqtrace import HUB as _HUB
from .cache import StageCache, canonical_json
from .stages import Stage, StageError, stage_from_spec

__all__ = ["StageGraph"]

#: Version of the serialized topology layout (bump on breaking change).
TOPOLOGY_VERSION = 1


class StageGraph:
    """An ordered, named, serializable composition of stages."""

    def __init__(self, stages: Sequence[Stage], name: str = "graph"):
        stages = list(stages)
        if not stages:
            raise StageError("a StageGraph needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise StageError(f"duplicate stage names: {dupes}")
        self.name = str(name)
        self.stages: List[Stage] = stages
        self._index: Dict[str, int] = {s.name: i
                                       for i, s in enumerate(stages)}

    # -- introspection -------------------------------------------------
    @property
    def names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def stage(self, name: str) -> Stage:
        try:
            return self.stages[self._index[name]]
        except KeyError:
            raise StageError(
                f"graph {self.name!r} has no stage {name!r}; "
                f"stages: {self.names}") from None

    def describe(self) -> str:
        """One-line ``a -> b -> c`` summary (used by engine/CLI)."""
        return " -> ".join(self.names)

    def __repr__(self) -> str:
        return f"StageGraph({self.describe()})"

    # -- execution -----------------------------------------------------
    def _slice(self, start: Optional[str], stop: Optional[str]
               ) -> List[Stage]:
        lo = 0 if start is None else self._index_of(start)
        hi = len(self.stages) if stop is None else self._index_of(stop)
        if hi < lo:
            raise StageError(
                f"stage slice start={start!r} comes after stop={stop!r}")
        return self.stages[lo:hi]

    def _index_of(self, name: str) -> int:
        if name not in self._index:
            raise StageError(
                f"graph {self.name!r} has no stage {name!r}; "
                f"stages: {self.names}")
        return self._index[name]

    def call(self, name: str, batch: np.ndarray,
             ctx: Optional[dict] = None,
             cache: Optional[StageCache] = None) -> np.ndarray:
        """Run a single stage *with* its telemetry span.

        This is what training loops use for per-batch stage execution —
        the span stream is identical to the hand-instrumented
        pre-refactor loops.  With a :class:`StageCache` the stage's
        output is memoized under ``sha1(input digest + stage digest)``;
        a hit still emits the span (with near-zero duration — that is
        the truthful accounting for skipped work).
        """
        stage = self.stage(name)
        with span(stage.span_name,
                  nbytes=int(np.asarray(batch).nbytes)):
            if cache is not None and getattr(stage, "cacheable", True):
                key = cache.extend_key(cache.input_key(batch), stage)
                hit = cache.lookup(key)
                if hit is not None:
                    return hit
                out = stage(batch, ctx)
                cache.store(key, out)
                return out
            return stage(batch, ctx)

    def run(self, batch: np.ndarray, start: Optional[str] = None,
            stop: Optional[str] = None, ctx: Optional[dict] = None,
            instrument: bool = False,
            cache: Optional[StageCache] = None) -> np.ndarray:
        """Execute stages ``[start, stop)`` (``stop`` exclusive) in order.

        ``instrument=True`` wraps each stage in its ``stage.*`` telemetry
        span; the default ``False`` matches the historical inference
        paths, which did not emit per-stage spans (keeping ledger stage
        accounting comparable across the refactor).

        Independently of ``instrument``, when a *request trace* is
        active on the calling thread each stage is recorded as a
        hub-only span — per-request stage latency shows up in the flight
        recorder / trace files without touching the aggregate ledger's
        stage accounting.

        With a :class:`StageCache` each cacheable stage's output is
        memoized under the running digest chain ``sha1(... + stage
        digest)`` seeded from the input batch digest; hits skip the
        stage (and its spans) entirely — no work, no accounting.
        """
        out = batch
        traced = _HUB.enabled and _HUB.current() is not None
        key = cache.input_key(batch) if cache is not None else b""
        for stage in self._slice(start, stop):
            if cache is not None:
                key = cache.extend_key(key, stage)
                if getattr(stage, "cacheable", True):
                    hit = cache.lookup(key)
                    if hit is not None:
                        out = hit
                        continue
            if instrument:
                with span(stage.span_name,
                          nbytes=int(np.asarray(out).nbytes)):
                    if traced:
                        with request_span(stage.span_name):
                            out = stage(out, ctx)
                    else:
                        out = stage(out, ctx)
            elif traced:
                with request_span(stage.span_name):
                    out = stage(out, ctx)
            else:
                out = stage(out, ctx)
            if cache is not None and getattr(stage, "cacheable", True):
                cache.store(key, out)
        return out

    # -- serialization -------------------------------------------------
    def topology(self) -> Dict[str, Any]:
        """JSON-serializable graph description (specs only, no weights)."""
        return {"version": TOPOLOGY_VERSION, "name": self.name,
                "stages": [stage.spec() for stage in self.stages]}

    def topology_json(self) -> str:
        """Canonical topology emit — byte-stable across processes.

        Sorted keys, compact separators, numpy scalars coerced to
        Python, ``-0.0`` normalized, NaN/Inf rejected: two processes
        holding the same graph always emit identical bytes, so
        :meth:`topology_digest` is a stable cross-process cache /
        fingerprint key.
        """
        return canonical_json(self.topology())

    def topology_digest(self) -> str:
        """sha1 hex digest of :meth:`topology_json` (stable identity)."""
        return hashlib.sha1(
            self.topology_json().encode("utf-8")).hexdigest()

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Merged per-stage weight arrays (historical flat key names)."""
        merged: Dict[str, np.ndarray] = {}
        for stage in self.stages:
            for key, value in stage.state_arrays().items():
                if key in merged:
                    raise StageError(
                        f"stage {stage.name!r} re-defines array {key!r}")
                merged[key] = value
        return merged

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        for stage in self.stages:
            stage.load_arrays(arrays)

    @classmethod
    def from_topology(cls, topology: Dict[str, Any],
                      arrays: Dict[str, np.ndarray]) -> "StageGraph":
        """Rebuild a frozen graph from a persisted topology + archive."""
        if isinstance(topology, str):
            topology = json.loads(topology)
        version = int(topology.get("version", 1))
        if version > TOPOLOGY_VERSION:
            raise StageError(
                f"graph topology version {version} is newer than this "
                f"build supports ({TOPOLOGY_VERSION})")
        specs = topology.get("stages") or []
        if not specs:
            raise StageError("graph topology has no stages")
        stages = [stage_from_spec(spec, arrays) for spec in specs]
        return cls(stages, name=topology.get("name", "graph"))
