"""Shared experiment configuration for benchmarks and examples.

The paper's evaluation (Sec. VII) fixes one setup — four pretrained CNNs,
CIFAR-10/100, D=3,000, F̂=100 — and varies one axis per table/figure.
This module pins the reproduction's equivalent setup in one place so every
benchmark regenerates its table from the *same* teachers and datasets, and
so the expensive CNN pretraining is cached and shared.

Scale notes (see DESIGN.md §1): CIFAR-10 maps to the 10-class synthetic
benchmark ``S10``; CIFAR-100 maps to the 25-class ``S25`` (same generator,
more classes ⇒ harder, preserving the 10-vs-100 difficulty axis at CPU
scale).  Hypervector dimension keeps the paper's D=3,000 default.  F̂
scales from the paper's 100 (for 25k-feature extractors) to 64 for our
scaled extractors — still ≥ the class count, which is the paper's stated
requirement for F̂.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .data import make_dataset, normalize_images
from .models import cached_model
from .models.base import IndexedCNN

__all__ = [
    "DatasetConfig", "DATASETS", "TEACHER_EPOCHS", "MODEL_WIDTHS",
    "MODEL_NAMES", "HD_DIM", "REDUCED_FEATURES", "load_dataset",
    "get_teacher", "teacher_suite",
]

MODEL_NAMES = ("vgg16", "mobilenetv2", "efficientnet_b0", "efficientnet_b7")

#: Hypervector dimension used throughout (paper Sec. VII-A).
HD_DIM = 3000

#: Manifold output size F̂ (paper uses 100; scaled with our extractors).
REDUCED_FEATURES = 64

#: Width multiplier per model; VGG affords more width because its plain
#: conv stacks run far faster in this numpy substrate.
MODEL_WIDTHS: Dict[str, float] = {
    "vgg16": 0.25,
    "mobilenetv2": 0.2,
    "efficientnet_b0": 0.25,
    "efficientnet_b7": 0.125,
}

#: Pretraining epochs per model (deeper models get fewer epochs to keep
#: the one-time cached pretraining inside the CPU budget).
TEACHER_EPOCHS: Dict[str, int] = {
    "vgg16": 20,
    "mobilenetv2": 8,
    "efficientnet_b0": 10,
    "efficientnet_b7": 6,
}

#: Per-(model, dataset) overrides; the many-class dataset has 1.5x the
#: training samples per epoch, so fewer epochs reach a comparable budget.
TEACHER_EPOCH_OVERRIDES: Dict[Tuple[str, str], int] = {
    ("vgg16", "s25"): 22,
}


@dataclass(frozen=True)
class DatasetConfig:
    """One evaluation dataset (a CIFAR stand-in)."""

    tag: str
    num_classes: int
    num_train: int
    num_test: int
    seed: int = 7


#: ``s10`` stands in for CIFAR-10, ``s25`` for CIFAR-100 (see module doc).
DATASETS: Dict[str, DatasetConfig] = {
    "s10": DatasetConfig(tag="s10", num_classes=10, num_train=1000,
                         num_test=300),
    "s25": DatasetConfig(tag="s25", num_classes=25, num_train=1500,
                         num_test=375),
}

_dataset_cache: Dict[str, tuple] = {}


def load_dataset(key: str) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                    np.ndarray]:
    """Normalized ``(x_train, y_train, x_test, y_test)`` for a config key.

    Images are standardized with the training-set channel statistics; the
    result is cached in memory for the process lifetime.
    """
    if key not in DATASETS:
        raise ValueError(f"unknown dataset {key!r}; options: "
                         f"{sorted(DATASETS)}")
    if key not in _dataset_cache:
        cfg = DATASETS[key]
        x_tr, y_tr, x_te, y_te = make_dataset(
            num_classes=cfg.num_classes, num_train=cfg.num_train,
            num_test=cfg.num_test, seed=cfg.seed)
        x_tr, mean, std = normalize_images(x_tr)
        x_te, _, _ = normalize_images(x_te, mean, std)
        _dataset_cache[key] = (x_tr, y_tr, x_te, y_te)
    return _dataset_cache[key]


def get_teacher(model_name: str, dataset_key: str = "s10",
                verbose: bool = False) -> IndexedCNN:
    """Pretrained (cached) CNN for ``model_name`` on a dataset config."""
    x_tr, y_tr, _, _ = load_dataset(dataset_key)
    cfg = DATASETS[dataset_key]
    epochs = TEACHER_EPOCH_OVERRIDES.get(
        (model_name, dataset_key), TEACHER_EPOCHS[model_name])
    return cached_model(
        model_name, x_tr, y_tr, num_classes=cfg.num_classes,
        width_mult=MODEL_WIDTHS[model_name],
        epochs=epochs, batch_size=64, lr=2e-3,
        seed=cfg.seed, dataset_tag=cfg.tag, verbose=verbose)


def teacher_suite(dataset_key: str = "s10", verbose: bool = False
                  ) -> Dict[str, IndexedCNN]:
    """All four pretrained teachers for a dataset config."""
    return {name: get_teacher(name, dataset_key, verbose)
            for name in MODEL_NAMES}


def _feature_cache_path(model_name: str, dataset_key: str) -> str:
    from .models import default_cache_dir
    return os.path.join(default_cache_dir(),
                        f"features-{model_name}-{dataset_key}.npz")


def cached_features(model_name: str, dataset_key: str,
                    layers: Tuple[int, ...]) -> Dict:
    """Extractor features (per cut layer) + teacher logits, disk-cached.

    One frozen forward pass per split covers every requested layer
    (:meth:`IndexedCNN.features_at_multi`), and the result is stored under
    ``.cache/`` so the many benchmarks sharing a (model, dataset) pair pay
    the CNN cost exactly once.

    Returns ``{"train": {layer: (n,F)}, "test": {layer: (n,F)},
    "train_logits": (n,k), "test_logits": (n,k)}``.
    """
    from . import nn as _nn
    from .nn import Tensor

    layers = tuple(sorted(set(int(layer) for layer in layers)))
    path = _feature_cache_path(model_name, dataset_key)
    x_tr, y_tr, x_te, y_te = load_dataset(dataset_key)

    stored: Dict[str, np.ndarray] = {}
    if os.path.exists(path):
        with np.load(path) as archive:
            stored = {name: archive[name] for name in archive.files}

    needed = [layer for layer in layers
              if f"train_{layer}" not in stored]
    if needed or "train_logits" not in stored:
        model = get_teacher(model_name, dataset_key)
        model.eval()
        last = model.num_feature_layers() - 1
        for split, images in (("train", x_tr), ("test", x_te)):
            feats = {layer: [] for layer in layers}
            logits = []
            with _nn.no_grad():
                for start in range(0, len(images), 64):
                    x = Tensor(images[start:start + 64])
                    # One trunk pass serves every cut layer AND the
                    # teacher logits (continue through head+classifier).
                    outs = model.features_at_multi(x, layers + (last,))
                    for layer in layers:
                        out = outs[layer]
                        feats[layer].append(
                            out.data.reshape(out.shape[0], -1))
                    logits.append(
                        model.classifier(model.head(outs[last])).data)
            for layer in layers:
                stored[f"{split}_{layer}"] = np.concatenate(feats[layer])
            stored[f"{split}_logits"] = np.concatenate(logits)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        np.savez_compressed(path, **stored)

    return {
        "train": {layer: stored[f"train_{layer}"] for layer in layers},
        "test": {layer: stored[f"test_{layer}"] for layer in layers},
        "train_logits": stored["train_logits"],
        "test_logits": stored["test_logits"],
        "labels": (y_tr, y_te),
    }
