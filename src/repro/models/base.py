"""Base class for layer-indexed CNNs.

The paper labels each CNN's layers by index (Sec. VII-A): EfficientNet by
block, MobileNetV2 by operator, VGG16 by each convolution / pooling /
activation layer.  :class:`IndexedCNN` exposes that indexing so a feature
extractor can be cut at any index, exactly as NSHD does.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = ["IndexedCNN", "scale_channels"]


def scale_channels(channels: int, width_mult: float, minimum: int = 4,
                   divisor: int = 4) -> int:
    """Scale a channel count by ``width_mult``, rounded to ``divisor``.

    Mirrors the channel-rounding rule of the MobileNet/EfficientNet papers
    so scaled-down variants keep hardware-friendly channel counts.
    """
    scaled = max(minimum, int(channels * width_mult + divisor / 2)
                 // divisor * divisor)
    return scaled


class IndexedCNN(nn.Module):
    """A CNN whose feature trunk is an indexed sequence of stages.

    Subclasses populate ``self.features`` (an ``nn.Sequential`` whose i-th
    entry is "layer i" in the paper's labeling) and ``self.classifier``
    (everything after the trunk, ending in class logits).  ``self.head``
    optionally holds pooling/flatten glue between trunk and classifier.
    """

    name = "indexed-cnn"

    def __init__(self, num_classes: int, image_size: int = 32):
        super().__init__()
        self.num_classes = num_classes
        self.image_size = image_size
        self.features = nn.Sequential()
        self.head = nn.Sequential(nn.AdaptiveAvgPool2d(1), nn.Flatten())
        self.classifier = nn.Sequential()

    # ------------------------------------------------------------------
    def num_feature_layers(self) -> int:
        """Number of indexable feature layers (valid cut points)."""
        return len(self.features)

    def layer_indices(self) -> List[int]:
        return list(range(self.num_feature_layers()))

    def features_at(self, x: Tensor, layer_index: int) -> Tensor:
        """Run the trunk up to and including ``layer_index``.

        This is the paper's truncation: "we take an intermediate layer …
        and remove all subsequent layers" (Sec. IV-A).
        """
        last = self.num_feature_layers() - 1
        if not 0 <= layer_index <= last:
            raise ValueError(
                f"layer_index {layer_index} out of range [0, {last}]")
        for layer in self.features[:layer_index + 1]:
            x = layer(x)
        return x

    def features_at_multi(self, x: Tensor, layer_indices) -> dict:
        """Trunk outputs at several cut points from a single forward pass.

        Returns ``{layer_index: Tensor}``; far cheaper than repeated
        :meth:`features_at` calls when extracting features for several
        candidate layers of the same model.
        """
        wanted = set(layer_indices)
        last = self.num_feature_layers() - 1
        for layer in wanted:
            if not 0 <= layer <= last:
                raise ValueError(
                    f"layer_index {layer} out of range [0, {last}]")
        outputs = {}
        for index, layer in enumerate(self.features[:max(wanted) + 1]):
            x = layer(x)
            if index in wanted:
                outputs[index] = x
        return outputs

    @functools.lru_cache(maxsize=None)
    def feature_shape(self, layer_index: int) -> Tuple[int, int, int]:
        """(C, H, W) of the trunk output at ``layer_index`` (dry run)."""
        was_training = self.training
        self.eval()
        with nn.no_grad():
            dummy = Tensor(np.zeros((1, 3, self.image_size, self.image_size)))
            out = self.features_at(dummy, layer_index)
        self.train(was_training)
        return tuple(out.shape[1:])

    def feature_count(self, layer_index: int) -> int:
        """Flattened feature count F at ``layer_index`` (paper Sec. IV-B)."""
        return int(np.prod(self.feature_shape(layer_index)))

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        x = self.features(x)
        x = self.head(x)
        return self.classifier(x)

    def logits(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Inference logits for an NCHW numpy batch (no tape)."""
        was_training = self.training
        self.eval()
        outputs = []
        with nn.no_grad():
            for start in range(0, len(x), batch_size):
                out = self.forward(Tensor(x[start:start + batch_size]))
                outputs.append(out.data)
        self.train(was_training)
        return np.concatenate(outputs, axis=0)

    def predict(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Class predictions for an NCHW numpy batch."""
        return self.logits(x, batch_size).argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 64) -> float:
        """Top-1 accuracy on numpy data."""
        return float((self.predict(x, batch_size) == np.asarray(y)).mean())
