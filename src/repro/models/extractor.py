"""Feature extractor (truncated CNN) and teacher (uncut CNN) wrappers.

NSHD's symbolization uses the *frozen* pretrained CNN twice (Sec. III–V):

* the truncated trunk up to a chosen layer index extracts features that
  feed the manifold learner and the HD encoder;
* the *uncut* model acts as the knowledge-distillation teacher whose
  softened logits drive Algorithm 1.

Both views share the same weights; neither is ever updated by NSHD
training ("NSHD uses the weights pretrained in the original CNN model
without any modification", Sec. VI-A).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import Tensor
from .base import IndexedCNN

__all__ = ["FeatureExtractor", "TeacherModel"]


class FeatureExtractor:
    """Frozen truncated CNN producing flattened feature vectors."""

    def __init__(self, model: IndexedCNN, layer_index: int):
        last = model.num_feature_layers() - 1
        if not 0 <= layer_index <= last:
            raise ValueError(
                f"layer_index {layer_index} out of range [0, {last}] for "
                f"{model.name}")
        self.model = model
        self.layer_index = layer_index
        self.feature_shape = model.feature_shape(layer_index)
        self.num_features = model.feature_count(layer_index)

    def extract(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Extract flattened ``(n, F)`` features for an NCHW numpy batch.

        Runs in eval mode under ``no_grad``: the extractor is frozen, so
        the autograd tape is never built through it.
        """
        was_training = self.model.training
        self.model.eval()
        chunks = []
        with nn.no_grad():
            for start in range(0, len(images), batch_size):
                x = Tensor(images[start:start + batch_size])
                out = self.model.features_at(x, self.layer_index)
                chunks.append(out.data.reshape(out.shape[0], -1))
        self.model.train(was_training)
        return np.concatenate(chunks, axis=0)

    def __repr__(self) -> str:
        return (f"FeatureExtractor({self.model.name}@layer{self.layer_index}, "
                f"F={self.num_features})")


class TeacherModel:
    """Frozen uncut CNN providing distillation targets."""

    def __init__(self, model: IndexedCNN):
        self.model = model
        self.num_classes = model.num_classes

    def logits(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        return self.model.logits(images, batch_size)

    def soft_labels(self, images: np.ndarray, temperature: float = 1.0,
                    batch_size: int = 64) -> np.ndarray:
        """Temperature-softened softmax of the teacher logits (Alg. 1 l.5)."""
        return soften_logits(self.logits(images, batch_size), temperature)

    def accuracy(self, images: np.ndarray, labels: np.ndarray,
                 batch_size: int = 64) -> float:
        return self.model.accuracy(images, labels, batch_size)


def soften_logits(logits: np.ndarray, temperature: float) -> np.ndarray:
    """Numerically stable ``softmax(logits / temperature)``."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    scaled = np.asarray(logits, dtype=np.float64) / temperature
    scaled = scaled - scaled.max(axis=-1, keepdims=True)
    probs = np.exp(scaled)
    return probs / probs.sum(axis=-1, keepdims=True)
