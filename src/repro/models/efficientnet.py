"""EfficientNet-style models indexed by block, as in the paper.

The trunk exposes 9 indexed blocks, matching torchvision's
``efficientnet_b0().features``: index 0 is the stem, indices 1–7 are the
seven MBConv stages, index 8 is the final 1×1 conv.  The paper cuts
EfficientNet-B0 at blocks 5–8 and EfficientNet-B7 at blocks 6–8.

B7 is derived from B0 with compound scaling (wider and deeper).  The
reproduction keeps the *relative* scaling — B7 variants are strictly
wider/deeper than B0 at the same ``width_mult`` — while staying CPU
trainable.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from .base import IndexedCNN, scale_channels
from .blocks import ConvBNAct, InvertedResidual

__all__ = ["EfficientNet", "EfficientNetB0", "EfficientNetB7"]

# (expand_ratio, channels, repeats, stride, kernel) for the seven B0 stages,
# with the usual CIFAR stride adaptation (stem and stage 2 at stride 1 for
# 32x32 inputs).
_EFFICIENTNET_B0_STAGES = (
    (1, 16, 1, 1, 3),
    (6, 24, 2, 1, 3),   # stride 2 -> 1 for 32x32 inputs
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
)


class EfficientNet(IndexedCNN):
    """Scaled EfficientNet with block-level indexing.

    ``width_coeff`` / ``depth_coeff`` implement compound scaling on top of
    the base stage table (1.0/1.0 ≈ B0; B7 uses 2.0/3.1 in the original
    paper — the reproduction uses milder 1.4/1.4 so CPU training stays
    tractable while preserving "B7 is bigger and stronger than B0").
    """

    name = "efficientnet"

    def __init__(self, num_classes: int = 10, width_mult: float = 1.0,
                 image_size: int = 32, width_coeff: float = 1.0,
                 depth_coeff: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(num_classes, image_size)
        rng = rng or np.random.default_rng()
        self.width_mult = width_mult
        self.width_coeff = width_coeff
        self.depth_coeff = depth_coeff

        def width(channels: int) -> int:
            # Minimum of 8 channels: SE-gated depthwise blocks collapse
            # below that when the width multiplier is small.
            return scale_channels(channels, width_mult * width_coeff,
                                  minimum=8)

        def depth(repeats: int) -> int:
            return int(math.ceil(repeats * depth_coeff))

        stem_channels = width(32)
        blocks: List[nn.Module] = [
            ConvBNAct(3, stem_channels, kernel=3, stride=1,
                      activation="silu", rng=rng),
        ]
        in_channels = stem_channels
        for expand, channels, repeats, stride, kernel in \
                _EFFICIENTNET_B0_STAGES:
            out_channels = width(channels)
            stage: List[nn.Module] = []
            for i in range(depth(repeats)):
                stage.append(InvertedResidual(
                    in_channels, out_channels,
                    stride=stride if i == 0 else 1,
                    expand_ratio=expand, kernel=kernel, use_se=True,
                    activation="silu", rng=rng))
                in_channels = out_channels
            blocks.append(nn.Sequential(*stage))
        head_channels = width(1280)
        blocks.append(ConvBNAct(in_channels, head_channels, kernel=1,
                                activation="silu", rng=rng))
        self.features = nn.Sequential(*blocks)
        self.trunk_channels = head_channels

        self.head = nn.Sequential(nn.AdaptiveAvgPool2d(1), nn.Flatten())
        self.classifier = nn.Sequential(
            nn.Dropout(0.2, rng=rng),
            nn.Linear(head_channels, num_classes, rng=rng),
        )


class EfficientNetB0(EfficientNet):
    """EfficientNet-B0-style model (base compound scaling)."""

    name = "efficientnet_b0"

    # Cut layers evaluated in the paper (Figs. 4, 7, 8; Table II).
    paper_layers = (5, 6, 7, 8)

    def __init__(self, num_classes: int = 10, width_mult: float = 1.0,
                 image_size: int = 32,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(num_classes, width_mult, image_size,
                         width_coeff=1.0, depth_coeff=1.0, rng=rng)


class EfficientNetB7(EfficientNet):
    """EfficientNet-B7-style model (wider and deeper than B0)."""

    name = "efficientnet_b7"

    # Cut layers evaluated in the paper (Fig. 4, Table II).
    paper_layers = (6, 7, 8)

    def __init__(self, num_classes: int = 10, width_mult: float = 1.0,
                 image_size: int = 32,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(num_classes, width_mult, image_size,
                         width_coeff=1.4, depth_coeff=1.4, rng=rng)
