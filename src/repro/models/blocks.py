"""Building blocks shared by the MobileNetV2/EfficientNet-style models."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = ["ConvBNAct", "SqueezeExcite", "InvertedResidual"]


def _activation(kind: str) -> nn.Module:
    table = {"relu": nn.ReLU, "relu6": nn.ReLU6, "silu": nn.SiLU,
             "none": nn.Identity}
    if kind not in table:
        raise ValueError(f"unknown activation {kind!r}")
    return table[kind]()


class ConvBNAct(nn.Module):
    """Convolution + batch norm + activation, the mobile-CNN workhorse."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 3,
                 stride: int = 1, groups: int = 1, activation: str = "relu6",
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv = nn.Conv2d(in_channels, out_channels, kernel,
                              stride=stride, padding=kernel // 2,
                              groups=groups, bias=False, rng=rng)
        self.bn = nn.BatchNorm2d(out_channels)
        self.act = _activation(activation)

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))


class SqueezeExcite(nn.Module):
    """Squeeze-and-excitation channel attention (EfficientNet MBConv)."""

    def __init__(self, channels: int, reduction: int = 4,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        reduced = max(2, channels // reduction)
        self.squeeze = nn.AdaptiveAvgPool2d(1)
        self.reduce = nn.Conv2d(channels, reduced, 1, rng=rng)
        self.act = nn.SiLU()
        self.expand = nn.Conv2d(reduced, channels, 1, rng=rng)
        self.gate = nn.Sigmoid()

    def forward(self, x: Tensor) -> Tensor:
        scale = self.gate(self.expand(self.act(self.reduce(self.squeeze(x)))))
        return x * scale


class InvertedResidual(nn.Module):
    """MobileNetV2 inverted residual / EfficientNet MBConv block.

    expand 1×1 → depthwise k×k (stride s) → [SE] → project 1×1, with a
    skip connection when the spatial size and channel count are preserved.
    ``use_se=False, activation='relu6'`` gives the MobileNetV2 operator;
    ``use_se=True, activation='silu'`` gives the EfficientNet MBConv.
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 expand_ratio: int = 6, kernel: int = 3, use_se: bool = False,
                 activation: str = "relu6",
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if stride not in (1, 2):
            raise ValueError("stride must be 1 or 2")
        hidden = in_channels * expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels

        self.expand = (ConvBNAct(in_channels, hidden, kernel=1,
                                 activation=activation, rng=rng)
                       if expand_ratio != 1 else nn.Identity())
        self.depthwise = ConvBNAct(hidden, hidden, kernel=kernel,
                                   stride=stride, groups=hidden,
                                   activation=activation, rng=rng)
        self.se = (SqueezeExcite(hidden, rng=rng) if use_se
                   else nn.Identity())
        self.project = ConvBNAct(hidden, out_channels, kernel=1,
                                 activation="none", rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.project(self.se(self.depthwise(self.expand(x))))
        if self.use_residual:
            out = out + x
        return out
