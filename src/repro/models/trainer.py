"""Supervised CNN training — the in-repo "pretraining" stage.

The paper takes its feature extractors "off-the-shelf and pretrained"
(Sec. IV-A).  In this offline reproduction the pretraining happens here:
a plain supervised loop (cross-entropy, Adam/SGD, CIFAR-style
augmentation) over the synthetic dataset.  ``cached_model`` memoizes
trained weights on disk keyed by the full configuration so that the many
benchmarks sharing a teacher never retrain it.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from .. import nn
from ..data import augment_batch, iterate_batches
from ..nn import Tensor
from ..nn import functional as F
from ..telemetry import clock, get_registry, span
from .base import IndexedCNN
from .registry import create_model

if TYPE_CHECKING:  # avoid an import cycle; the guard is duck-typed
    from ..reliability.guards import NumericsGuard

__all__ = ["train_cnn", "cached_model", "default_cache_dir"]


def default_cache_dir() -> str:
    """Directory for trained-weight caches (override with REPRO_CACHE)."""
    return os.environ.get(
        "REPRO_CACHE",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), ".cache"))


def train_cnn(model: IndexedCNN, x_train: np.ndarray, y_train: np.ndarray,
              epochs: int = 10, batch_size: int = 32, lr: float = 1e-3,
              optimizer: str = "adam", weight_decay: float = 0.0,
              augment: bool = True, x_val: Optional[np.ndarray] = None,
              y_val: Optional[np.ndarray] = None, seed: int = 0,
              eval_every: int = 0, verbose: bool = False,
              guard: Optional["NumericsGuard"] = None
              ) -> Dict[str, List[float]]:
    """Train ``model`` in place; returns per-epoch loss/accuracy history.

    ``eval_every`` controls how often train/val accuracy are measured
    (0 = only after the final epoch; full-dataset inference per epoch is
    a significant fraction of CPU training time).

    ``guard`` (a :class:`repro.reliability.NumericsGuard`) vets each
    batch *before* the forward pass — keeping NaN inputs away from the
    batch-norm running statistics — and the loss/gradients *after* the
    backward pass, skipping the optimizer step for poisoned batches.
    """
    rng = np.random.default_rng(seed)
    if optimizer == "adam":
        opt = nn.Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    elif optimizer == "sgd":
        opt = nn.SGD(model.parameters(), lr=lr, momentum=0.9,
                     weight_decay=weight_decay)
    else:
        raise ValueError(f"unknown optimizer {optimizer!r}")
    schedule = nn.CosineLR(opt, total_epochs=epochs)

    registry = get_registry()
    history: Dict[str, List[float]] = {"loss": [], "train_acc": [],
                                       "val_acc": [], "epoch_time": []}
    for epoch in range(epochs):
        epoch_start = clock()
        model.train()
        losses = []
        with span("cnn.train_epoch", nbytes=int(x_train.nbytes)):
            for x_batch, y_batch in iterate_batches(x_train, y_train,
                                                    batch_size, rng=rng):
                if augment:
                    x_batch = augment_batch(x_batch, rng)
                if guard is not None and not guard.ok("cnn.batch", x_batch):
                    continue  # never let NaN inputs touch BN running stats
                opt.zero_grad()
                logits = model(Tensor(x_batch))
                loss = F.cross_entropy(logits, y_batch)
                loss.backward()
                if guard is not None:
                    gradients = [p.grad for p in model.parameters()
                                 if p.grad is not None]
                    if not guard.ok("cnn.step", np.asarray(loss.item()),
                                    *gradients):
                        continue  # skip the poisoned optimizer step
                opt.step()
                losses.append(loss.item())
        schedule.step()

        history["loss"].append(float(np.mean(losses)) if losses else 0.0)
        history["epoch_time"].append(clock() - epoch_start)
        registry.inc("cnn.epochs")
        registry.observe("cnn.loss", history["loss"][-1])
        registry.observe("cnn.epoch_time_s", history["epoch_time"][-1])
        is_last = epoch == epochs - 1
        if is_last or (eval_every and (epoch + 1) % eval_every == 0):
            history["train_acc"].append(model.accuracy(x_train, y_train))
            if x_val is not None:
                history["val_acc"].append(model.accuracy(x_val, y_val))
            if verbose:
                val = (f" val_acc={history['val_acc'][-1]:.3f}"
                       if x_val is not None else "")
                print(f"epoch {epoch + 1}/{epochs}: "
                      f"loss={history['loss'][-1]:.4f} "
                      f"train_acc={history['train_acc'][-1]:.3f}{val}")
        elif verbose:
            print(f"epoch {epoch + 1}/{epochs}: "
                  f"loss={history['loss'][-1]:.4f}")
    return history


def _config_key(config: dict) -> str:
    canonical = json.dumps(config, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def cached_model(name: str, x_train: np.ndarray, y_train: np.ndarray,
                 num_classes: int, width_mult: float = 0.25,
                 image_size: int = 32, epochs: int = 10,
                 batch_size: int = 32, lr: float = 1e-3, seed: int = 0,
                 dataset_tag: str = "", cache_dir: Optional[str] = None,
                 verbose: bool = False) -> IndexedCNN:
    """Train-or-load a model, caching weights on disk.

    The cache key covers architecture, width, class count, training
    hyperparameters, seed and a caller-supplied ``dataset_tag`` that must
    change whenever the training data changes.
    """
    cache_dir = cache_dir or default_cache_dir()
    config = {"name": name, "classes": num_classes, "width": width_mult,
              "image": image_size, "epochs": epochs, "batch": batch_size,
              "lr": lr, "seed": seed, "data": dataset_tag,
              "n_train": int(len(x_train))}
    path = os.path.join(cache_dir, f"{name}-{_config_key(config)}.npz")

    model = create_model(name, num_classes=num_classes,
                         width_mult=width_mult, image_size=image_size,
                         seed=seed)
    if os.path.exists(path):
        nn.load_module(model, path)
        model.eval()
        return model

    train_cnn(model, x_train, y_train, epochs=epochs, batch_size=batch_size,
              lr=lr, seed=seed, verbose=verbose)
    model.eval()
    nn.save_module(model, path)
    return model
