"""VGG16-style model with torchvision-compatible layer indexing.

The trunk is the classic conv/ReLU/maxpool sequence of VGG16; each entry
gets its own index exactly as in the paper ("VGG16 by each convolution,
pooling, and activation layers").  With the full-width configuration the
indices match torchvision's ``vgg16().features``:

* index 27 = ReLU after conv5-2 (the cut used in Fig. 4 / Table II),
* index 29 = ReLU after conv5-3,
* index 30 = the final max pool (trunk end).

Channel widths scale with ``width_mult`` so the model remains trainable
on CPU; the layer indexing is width-independent.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..nn import Tensor
from .base import IndexedCNN, scale_channels

__all__ = ["VGG16", "ConvBN"]

# Classic VGG16 configuration: channel counts with 'M' for max pooling.
_VGG16_CONFIG = (64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
                 512, 512, 512, "M", 512, 512, 512, "M")


class ConvBN(nn.Module):
    """Convolution with batch norm folded into the same layer index.

    The paper indexes VGG16 "by each convolution, pooling, and activation
    layers"; treating conv+BN as one indexed unit keeps the 31-entry index
    table (and the meaning of cut points 27/29) identical to torchvision's
    ``vgg16().features`` while making the scaled-down model trainable from
    scratch.  At inference BN folds into the convolution weights, so the
    MAC/energy models count it as a single conv.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv = nn.Conv2d(in_channels, out_channels, 3, padding=1,
                              bias=False, rng=rng)
        self.bn = nn.BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        return self.bn(self.conv(x))


class VGG16(IndexedCNN):
    """Scaled VGG16 for 32×32 inputs with per-layer indices."""

    name = "vgg16"

    # Cut layers evaluated in the paper (Fig. 4, Table II).
    paper_layers = (27, 29)

    def __init__(self, num_classes: int = 10, width_mult: float = 1.0,
                 image_size: int = 32, hidden: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(num_classes, image_size)
        rng = rng or np.random.default_rng()
        self.width_mult = width_mult

        layers: List[nn.Module] = []
        in_channels = 3
        for item in _VGG16_CONFIG:
            if item == "M":
                layers.append(nn.MaxPool2d(2, 2))
            else:
                out_channels = scale_channels(int(item), width_mult)
                layers.append(ConvBN(in_channels, out_channels, rng=rng))
                layers.append(nn.ReLU())
                in_channels = out_channels
        self.features = nn.Sequential(*layers)
        self.trunk_channels = in_channels

        # 32x32 input shrinks to 1x1 after the five pools, so the head only
        # needs a flatten.  The classifier mirrors VGG16's characteristic
        # three-FC stack (4096-4096-classes, width-scaled): in the original
        # network these layers hold ~89% of all parameters, which is what
        # makes truncation so profitable for NSHD (Fig. 4 / Table II).
        self.head = nn.Sequential(nn.Flatten())
        hidden = hidden or max(num_classes,
                               scale_channels(4096, width_mult, minimum=64))
        flat = in_channels * max(1, image_size // 32) ** 2
        self.classifier = nn.Sequential(
            nn.Linear(flat, hidden, rng=rng),
            nn.ReLU(),
            nn.Dropout(0.3, rng=rng),
            nn.Linear(hidden, hidden, rng=rng),
            nn.ReLU(),
            nn.Dropout(0.3, rng=rng),
            nn.Linear(hidden, num_classes, rng=rng),
        )
