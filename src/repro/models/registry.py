"""Model factory mirroring the paper's four feature-extractor CNNs."""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np

from .base import IndexedCNN
from .efficientnet import EfficientNetB0, EfficientNetB7
from .mobilenet import MobileNetV2
from .vgg import VGG16

__all__ = ["MODEL_REGISTRY", "create_model", "paper_cut_layers"]

MODEL_REGISTRY: Dict[str, Type[IndexedCNN]] = {
    "vgg16": VGG16,
    "mobilenetv2": MobileNetV2,
    "efficientnet_b0": EfficientNetB0,
    "efficientnet_b7": EfficientNetB7,
}


def create_model(name: str, num_classes: int = 10, width_mult: float = 1.0,
                 image_size: int = 32, seed: Optional[int] = None
                 ) -> IndexedCNN:
    """Instantiate a model by registry name with a deterministic seed."""
    if name not in MODEL_REGISTRY:
        raise ValueError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    rng = np.random.default_rng(seed)
    return MODEL_REGISTRY[name](num_classes=num_classes,
                                width_mult=width_mult,
                                image_size=image_size, rng=rng)


def paper_cut_layers(name: str) -> tuple:
    """The feature-extraction layer indices the paper evaluates per model."""
    if name not in MODEL_REGISTRY:
        raise ValueError(f"unknown model {name!r}")
    return MODEL_REGISTRY[name].paper_layers
