"""MobileNetV2-style model indexed by operator, as in the paper.

With the standard configuration the trunk has 19 indexed operators,
matching torchvision's ``mobilenet_v2().features``: index 0 is the stem
ConvBNReLU, indices 1–17 are the inverted-residual operators, and index 18
is the final 1×1 ConvBNReLU.  The paper's Fig. 4 / Table II cut at
operators 14 and 17.

The stem and the first strided stage run at stride 1 (the usual CIFAR
adaptation for 32×32 inputs); channel widths scale with ``width_mult``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from .base import IndexedCNN, scale_channels
from .blocks import ConvBNAct, InvertedResidual

__all__ = ["MobileNetV2"]

# (expand_ratio, channels, repeats, stride) per stage — the paper's Table 2
# of Sandler et al., with the usual CIFAR stride adaptation (stem and
# stage 2 at stride 1 for 32x32 inputs) so late cut layers keep a rich
# feature map.
_MOBILENETV2_STAGES = (
    (1, 16, 1, 1),
    (6, 24, 2, 1),   # stride 2 -> 1 for 32x32 inputs
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


class MobileNetV2(IndexedCNN):
    """Scaled MobileNetV2 for 32×32 inputs, indexed by operator."""

    name = "mobilenetv2"

    # Cut layers evaluated in the paper (Fig. 4, Table II).
    paper_layers = (14, 17)

    def __init__(self, num_classes: int = 10, width_mult: float = 1.0,
                 image_size: int = 32,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(num_classes, image_size)
        rng = rng or np.random.default_rng()
        self.width_mult = width_mult

        # Minimum of 8 channels: depthwise blocks collapse below that
        # when the width multiplier is small.
        stem_channels = scale_channels(32, width_mult, minimum=8)
        layers: List[nn.Module] = [
            ConvBNAct(3, stem_channels, kernel=3, stride=1,
                      activation="relu6", rng=rng),
        ]
        in_channels = stem_channels
        for expand, channels, repeats, stride in _MOBILENETV2_STAGES:
            out_channels = scale_channels(channels, width_mult, minimum=8)
            for i in range(repeats):
                layers.append(InvertedResidual(
                    in_channels, out_channels,
                    stride=stride if i == 0 else 1,
                    expand_ratio=expand, use_se=False, activation="relu6",
                    rng=rng))
                in_channels = out_channels
        head_channels = scale_channels(1280, width_mult, minimum=64)
        layers.append(ConvBNAct(in_channels, head_channels, kernel=1,
                                activation="relu6", rng=rng))
        self.features = nn.Sequential(*layers)
        self.trunk_channels = head_channels

        self.head = nn.Sequential(nn.AdaptiveAvgPool2d(1), nn.Flatten())
        self.classifier = nn.Sequential(
            nn.Dropout(0.2, rng=rng),
            nn.Linear(head_channels, num_classes, rng=rng),
        )
