"""Layer-indexed CNN zoo, feature extractors and teachers.

Scaled-down but architecturally faithful versions of the paper's four
feature-extractor CNNs (VGG16, MobileNetV2, EfficientNet-B0/B7) with the
same layer-index semantics, plus the frozen extractor/teacher wrappers and
the in-repo pretraining loop.
"""

from .base import IndexedCNN, scale_channels
from .blocks import ConvBNAct, InvertedResidual, SqueezeExcite
from .efficientnet import EfficientNet, EfficientNetB0, EfficientNetB7
from .extractor import FeatureExtractor, TeacherModel, soften_logits
from .mobilenet import MobileNetV2
from .registry import MODEL_REGISTRY, create_model, paper_cut_layers
from .trainer import cached_model, default_cache_dir, train_cnn
from .vgg import VGG16

__all__ = [
    "IndexedCNN", "scale_channels",
    "ConvBNAct", "SqueezeExcite", "InvertedResidual",
    "VGG16", "MobileNetV2", "EfficientNet", "EfficientNetB0",
    "EfficientNetB7",
    "MODEL_REGISTRY", "create_model", "paper_cut_layers",
    "FeatureExtractor", "TeacherModel", "soften_logits",
    "train_cnn", "cached_model", "default_cache_dir",
]
