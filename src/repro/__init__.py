"""NSHD: neuro-symbolic integration of HD computing with deep learning.

Reproduction of Lee et al., "Comprehensive Integration of Hyperdimensional
Computing with Deep Learning towards Neuro-Symbolic AI" (DAC 2023).

Subpackages
-----------
``repro.nn``
    From-scratch autograd/CNN substrate (PyTorch stand-in).
``repro.models``
    Layer-indexed CNN zoo (VGG16 / MobileNetV2 / EfficientNet-B0/B7 styles),
    feature extractors and teachers.
``repro.hd``
    Hyperdimensional computing core: hypervector algebra, encoders,
    similarity, decoding, bit-packed binary backend.
``repro.learn``
    The paper's contribution: MASS retraining, knowledge-distillation
    retraining (Algorithm 1), the manifold learner, and the end-to-end
    ``NSHD`` / ``BaselineHD`` / ``VanillaHD`` pipelines.
``repro.hardware``
    Analytic efficiency substrate: MAC/parameter counting, Xavier-style GPU
    energy model, ZCU104 DPU FPGA model, model-size accounting.
``repro.data``
    Synthetic CIFAR-style image benchmark and loaders.
``repro.analysis``
    t-SNE, KD hyperparameter search, interpretability metrics.
``repro.reliability``
    Numerics guards, fault injection, graceful degradation.
``repro.telemetry``
    Observability: metrics registry, tracing spans, autograd/HD
    profiling hooks, exporters and run reports.
``repro.serve``
    Inference serving: frozen model bundles, the fused (bit-packed)
    inference engine, dynamic micro-batching, and the HTTP model server.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
