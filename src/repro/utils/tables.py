"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as an aligned ASCII table.

    Used by the benchmark harness to print the same rows/series the paper's
    tables and figures report.
    """
    string_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width)
                          for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)
