"""Shared utilities: RNG management and table formatting."""

from .rng import derive_rng, fresh_rng
from .tables import format_table

__all__ = ["derive_rng", "fresh_rng", "format_table"]
