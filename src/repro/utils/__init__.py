"""Shared utilities: RNG management and table formatting."""

from .rng import derive_rng, fresh_rng, get_rng_state, set_rng_state
from .tables import format_table

__all__ = ["derive_rng", "fresh_rng", "get_rng_state", "set_rng_state",
           "format_table"]
