"""Deterministic random-number management.

Every stochastic component of the reproduction (dataset synthesis, weight
init, hypervector sampling, retraining shuffles) takes an explicit
``numpy.random.Generator``.  These helpers derive independent child
generators from a root seed so experiments are reproducible end to end.
"""

from __future__ import annotations

import copy
from typing import Union

import numpy as np

__all__ = ["fresh_rng", "derive_rng", "get_rng_state", "set_rng_state"]


def _stable_key(key) -> int:
    """Map an int/str seed component to a stable non-negative integer."""
    if isinstance(key, str):
        return int.from_bytes(key.encode("utf-8"), "little") % (2 ** 63)
    return int(key) % (2 ** 63)


def fresh_rng(seed: Union[int, tuple, None] = None) -> np.random.Generator:
    """Create a generator from a seed.

    ``seed`` may be ``None`` (OS entropy), an integer, or a tuple mixing
    integers and strings — tuples are flattened into a ``SeedSequence`` so
    e.g. ``fresh_rng((base_seed, "test", index))`` yields independent,
    reproducible streams.
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    return np.random.default_rng(
        np.random.SeedSequence([_stable_key(k) for k in seed]))


def derive_rng(rng: np.random.Generator, *keys: Union[int, str]
               ) -> np.random.Generator:
    """Derive an independent child generator keyed by ``keys``.

    The same parent state and keys always yield the same child, while
    different keys yield statistically independent streams.  String keys
    are hashed stably (not with ``hash()``, which is salted per process).
    """
    material = []
    for key in keys:
        if isinstance(key, str):
            material.append(int.from_bytes(key.encode("utf-8"), "little")
                            % (2 ** 63))
        else:
            material.append(int(key) % (2 ** 63))
    seed_seq = np.random.SeedSequence(
        entropy=rng.integers(0, 2 ** 63), spawn_key=tuple(material))
    return np.random.default_rng(seed_seq)


def get_rng_state(rng: np.random.Generator) -> dict:
    """Snapshot a generator's bit-generator state.

    The returned dict is JSON-serializable (plain ints/strings, arbitrary
    precision handled natively by :mod:`json`), which is what lets trainer
    checkpoints embed it in their manifest and resume *bit-exactly* — the
    shuffle stream continues exactly where the killed run left off.
    """
    return copy.deepcopy(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a state captured by :func:`get_rng_state` in place."""
    expected = rng.bit_generator.state.get("bit_generator")
    found = state.get("bit_generator")
    if found != expected:
        raise ValueError(
            f"RNG state is for bit generator {found!r}, but this generator "
            f"uses {expected!r}")
    rng.bit_generator.state = copy.deepcopy(state)
