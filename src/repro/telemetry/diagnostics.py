"""Per-epoch HD model introspection: drift, saturation, confusability.

The class-hypervector matrix ``M`` *is* the model in the HD half of the
pipeline; these diagnostics make its training dynamics observable (the
ImageHD-style drift signal, and the class-separability view behind the
paper's Fig. 11 t-SNE explainability argument):

* **Drift** — per-class and total norm of ``M_t − M_{t−1}`` (plus the
  relative form normalised by ``‖M_{t−1}‖``).  Converging MASS training
  shows shrinking drift; a drift spike flags a destabilising batch.
* **Saturation** — fraction of accumulator entries whose magnitude
  exceeds ``factor ×`` the matrix RMS.  Bundled bipolar encodings should
  spread information across dimensions; high saturation means a few
  dimensions dominate a class representation (the HD analogue of
  saturated activations, and the first symptom of update blow-up).
* **Confusability** — the pairwise cosine-similarity matrix of the class
  hypervectors.  Off-diagonal mass is exactly what limits the margin;
  the most-confusable pair names the classes Fig. 11's t-SNE clusters
  show overlapping.
* **Margin quantiles** — p50/p95/p99 of the ``train.similarity_margin``
  histogram the trainers already publish per batch.

:class:`DiagnosticsCallback` implements the PR-2
:class:`repro.learn.callbacks.TrainerCallback` protocol *structurally*
(duck-typed — importing :mod:`repro.learn` here would cycle, since every
trainer imports telemetry) and records one diagnostics dict per epoch;
:meth:`DiagnosticsCallback.summary` is what
:class:`repro.telemetry.ledger.RunRecord` persists.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from .metrics import MetricsRegistry, get_registry

__all__ = ["class_drift", "saturation_fraction", "confusability_matrix",
           "confusability_summary", "margin_quantiles", "matrix_health",
           "DiagnosticsCallback"]


def class_drift(previous: np.ndarray, current: np.ndarray
                ) -> Dict[str, object]:
    """Drift of the class matrix between two epochs.

    Returns ``{"per_class": [...], "total": float, "relative": float}``
    where ``per_class[i] = ‖current_i − previous_i‖₂``, ``total`` is the
    Frobenius norm of the difference and ``relative`` divides by the
    Frobenius norm of ``previous`` (NaN when ``previous`` is all-zero).
    """
    previous = np.atleast_2d(np.asarray(previous, dtype=np.float64))
    current = np.atleast_2d(np.asarray(current, dtype=np.float64))
    if previous.shape != current.shape:
        raise ValueError(f"shape mismatch: {previous.shape} vs "
                         f"{current.shape}")
    delta = current - previous
    per_class = np.linalg.norm(delta, axis=1)
    total = float(np.linalg.norm(delta))
    base = float(np.linalg.norm(previous))
    return {
        "per_class": [float(v) for v in per_class],
        "total": total,
        "relative": total / base if base > 0 else math.nan,
    }


def saturation_fraction(matrix: np.ndarray, factor: float = 3.0) -> float:
    """Fraction of entries with ``|entry| > factor × RMS(matrix)``.

    0.0 for an all-zero matrix.  For well-spread bundled hypervectors
    (approximately Gaussian accumulators) the expected fraction at
    ``factor=3`` is ≈ 0.27%; an order of magnitude more means a few
    dimensions are hogging the representation.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.size == 0:
        return 0.0
    rms = float(np.sqrt(np.mean(np.square(matrix))))
    if rms == 0.0 or not math.isfinite(rms):
        return 0.0
    return float(np.mean(np.abs(matrix) > factor * rms))


def confusability_matrix(class_matrix: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity of the class hypervectors, ``(k, k)``.

    (Local cosine implementation rather than
    :func:`repro.learn.mass.normalized_similarity` — the learn package
    imports telemetry, so telemetry must not import it back.)
    """
    matrix = np.atleast_2d(np.asarray(class_matrix, dtype=np.float64))
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms = np.where(norms < 1e-12, 1.0, norms)
    unit = matrix / norms
    return unit @ unit.T


def confusability_summary(class_matrix: np.ndarray) -> Dict[str, object]:
    """Scalar view of the confusability matrix.

    ``{"off_diag_mean", "off_diag_max", "most_confusable": [i, j]}`` —
    the *most confusable pair* is the off-diagonal argmax, i.e. the two
    classes whose hypervectors are closest in angle.
    """
    sims = confusability_matrix(class_matrix)
    k = sims.shape[0]
    if k < 2:
        return {"off_diag_mean": math.nan, "off_diag_max": math.nan,
                "most_confusable": None}
    off = sims.copy()
    np.fill_diagonal(off, -np.inf)
    flat_idx = int(np.argmax(off))
    i, j = divmod(flat_idx, k)
    mask = ~np.eye(k, dtype=bool)
    return {
        "off_diag_mean": float(sims[mask].mean()),
        "off_diag_max": float(off[i, j]),
        "most_confusable": [int(i), int(j)],
    }


def matrix_health(matrix: np.ndarray,
                  reference: Optional[np.ndarray] = None,
                  sat_factor: float = 3.0) -> Dict[str, object]:
    """One-call health view of a class-hypervector matrix.

    Bundles the three matrix-level diagnostics the online promotion
    gate consumes — ``saturation_fraction``, ``confusability_summary``,
    and (when ``reference`` is given and shape-compatible)
    ``class_drift`` relative to it — into a single flat dict, so the
    gate reads one structure instead of re-deriving the composition.
    ``drift`` is ``None`` when no comparable reference exists (e.g.
    the matrix grew a class since the reference was taken).
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    health: Dict[str, object] = {
        "saturation_fraction": saturation_fraction(matrix, sat_factor),
        "confusability": confusability_summary(matrix),
        "classes": int(matrix.shape[0]),
    }
    drift = None
    if reference is not None:
        reference = np.atleast_2d(np.asarray(reference,
                                             dtype=np.float64))
        if reference.shape == matrix.shape:
            drift = class_drift(reference, matrix)
        elif reference.shape[1] == matrix.shape[1] \
                and reference.shape[0] < matrix.shape[0]:
            # Grown matrix: compare the shared class rows only.
            drift = class_drift(reference,
                                matrix[:reference.shape[0]])
    health["drift"] = drift
    return health


def margin_quantiles(registry: Optional[MetricsRegistry] = None,
                     name: str = "train.similarity_margin"
                     ) -> Dict[str, float]:
    """p50/p95/p99 (plus mean/count) of the similarity-margin histogram.

    Returns an empty dict when the histogram does not exist yet (e.g.
    before the first training batch) **or has received no samples** —
    an empty P² histogram summarises to NaN quantiles, and splatting
    NaNs into a ledger record poisons downstream median/MAD gating —
    so callers can splat the result safely either way.
    """
    registry = registry if registry is not None else get_registry()
    if name not in registry:
        return {}
    metric = registry.get(name)
    if getattr(metric, "kind", None) != "histogram":
        return {}
    summary = metric.summary()
    if not summary.get("count"):
        return {}
    return {key: float(summary[key])
            for key in ("mean", "count", "p50", "p95", "p99")
            if key in summary}


class DiagnosticsCallback:
    """Record per-epoch HD diagnostics during trainer/pipeline ``fit``.

    Implements the :class:`repro.learn.callbacks.TrainerCallback`
    protocol structurally.  Attach to any ``fit(..., callbacks=[...])``
    whose trainer exposes a ``class_matrix`` (``MassTrainer``,
    ``DistillationTrainer``, and the three pipelines which forward their
    inner trainer):

        diag = DiagnosticsCallback()
        trainer.fit(H, y, callbacks=[diag])
        record = RunRecord.capture(..., diagnostics=diag.summary())

    Per epoch it stores drift / saturation / confusability / margin
    quantiles (``records``), publishes the headline scalars as gauges
    (``hd.drift_total``, ``hd.saturation_fraction``,
    ``hd.confusability_max``), and keeps the final full confusability
    matrix for the run record.
    """

    def __init__(self, trainer=None, sat_factor: float = 3.0,
                 registry: Optional[MetricsRegistry] = None,
                 keep_final_matrix: bool = True):
        self.trainer = trainer
        self.sat_factor = sat_factor
        self.registry = registry
        self.keep_final_matrix = keep_final_matrix
        self.records: List[Dict[str, object]] = []
        self.final_confusability: Optional[List[List[float]]] = None
        self._previous: Optional[np.ndarray] = None

    # -- TrainerCallback protocol --------------------------------------
    def on_fit_start(self, trainer, total_epochs: int) -> None:
        if trainer is not None:
            self.trainer = trainer
        self.records = []
        self.final_confusability = None
        self._previous = self._matrix_copy()

    def on_epoch_end(self, epoch: int, metrics: Dict[str, object]) -> None:
        matrix = self._matrix_copy()
        if matrix is None:
            return
        if self._previous is None or self._previous.shape != matrix.shape:
            # fit() without on_fit_start (legacy callers) — bootstrap.
            self._previous = np.zeros_like(matrix)
        drift = class_drift(self._previous, matrix)
        record: Dict[str, object] = {
            "epoch": int(epoch),
            "drift": drift,
            "saturation_fraction": saturation_fraction(matrix,
                                                       self.sat_factor),
            "confusability": confusability_summary(matrix),
            "margin": margin_quantiles(self.registry),
        }
        train_acc = metrics.get("train_acc")
        if isinstance(train_acc, (int, float)):
            record["train_acc"] = float(train_acc)
        self.records.append(record)
        self._previous = matrix

        registry = (self.registry if self.registry is not None
                    else get_registry())
        registry.set_gauge("hd.drift_total", drift["total"])
        registry.set_gauge("hd.saturation_fraction",
                           record["saturation_fraction"])
        off_max = record["confusability"]["off_diag_max"]
        if isinstance(off_max, float) and math.isfinite(off_max):
            registry.set_gauge("hd.confusability_max", off_max)

    def on_fit_end(self, history: Dict[str, List[float]]) -> None:
        matrix = self._matrix_copy()
        if matrix is not None and self.keep_final_matrix:
            self.final_confusability = [
                [float(v) for v in row]
                for row in confusability_matrix(matrix)]

    def should_stop(self) -> bool:
        return False

    # ------------------------------------------------------------------
    def _matrix_copy(self) -> Optional[np.ndarray]:
        trainer = self.trainer
        matrix = getattr(trainer, "class_matrix", None)
        if matrix is None:
            return None
        return np.array(matrix, dtype=np.float64, copy=True)

    def summary(self) -> Dict[str, object]:
        """Ledger-ready diagnostics dict (per-epoch + final snapshot)."""
        out: Dict[str, object] = {"per_epoch": list(self.records)}
        if self.records:
            last = self.records[-1]
            out["final"] = {
                "drift_total": last["drift"]["total"],
                "drift_relative": last["drift"]["relative"],
                "saturation_fraction": last["saturation_fraction"],
                "confusability": last["confusability"],
                "margin": last["margin"],
            }
        if self.final_confusability is not None:
            out["confusability_matrix"] = self.final_confusability
        return out
