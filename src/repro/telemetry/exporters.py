"""Exporters: JSONL event log and Prometheus-style text format.

Two machine-readable sinks plus parsers for round-tripping them in tests
and downstream analysis:

* **JSONL** — one JSON object per line; mixes metric snapshots, span-tree
  nodes and profiler op/layer records, each tagged with a ``type`` field.
  Append-friendly and greppable, the baseline-capture format every
  subsequent perf PR diffs against.
* **Prometheus text exposition** — counters and gauges verbatim, [0]
  histograms as Prometheus *summaries* (``name{quantile="0.5"} …`` +
  ``name_sum`` / ``name_count``).  Dotted metric names become
  underscore-separated and get a ``repro_`` prefix.
"""

from __future__ import annotations

import json
import math
import re
import time
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, get_registry
from .tracing import Tracer, get_tracer

__all__ = ["collect_events", "export_jsonl", "read_jsonl",
           "prometheus_text", "export_prometheus", "parse_prometheus",
           "sanitize_metric_name"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """``guard.nan_batches`` → ``repro_guard_nan_batches``."""
    cleaned = _NAME_RE.sub("_", name.replace(".", "_"))
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _finite(value: float) -> Optional[float]:
    try:
        value = float(value)
    except (TypeError, ValueError):
        return None
    return value if math.isfinite(value) else None


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def collect_events(registry: Optional[MetricsRegistry] = None,
                   tracer: Optional[Tracer] = None,
                   profiler=None,
                   meta: Optional[Dict[str, object]] = None
                   ) -> List[Dict[str, object]]:
    """Gather one run's telemetry into a flat, JSON-serializable list."""
    events: List[Dict[str, object]] = [{
        "type": "meta",
        "timestamp": time.time(),
        **(meta or {}),
    }]
    registry = registry if registry is not None else get_registry()
    for name, entry in registry.snapshot().items():
        # "type" stays the event discriminator; the metric kind
        # (counter/gauge/histogram) moves to "metric_type".
        event = {"type": "metric", "name": name,
                 "metric_type": entry["type"]}
        event.update({k: v for k, v in entry.items() if k != "type"})
        events.append(event)
    tracer = tracer if tracer is not None else get_tracer()
    events.extend(tracer.to_events())
    if profiler is not None:
        events.extend(profiler.to_events())
    return events


def export_jsonl(path: str,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 profiler=None,
                 meta: Optional[Dict[str, object]] = None) -> int:
    """Write the run's telemetry as JSONL; returns the line count."""
    events = collect_events(registry, tracer, profiler, meta)
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(_jsonable(event), sort_keys=True))
            handle.write("\n")
    return len(events)


def _jsonable(event: Dict[str, object]) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for key, value in event.items():
        if isinstance(value, float) and not math.isfinite(value):
            value = None  # JSON has no NaN/Inf; null round-trips cleanly
        out[key] = value
    return out


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL telemetry file back into event dicts."""
    events = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: invalid JSONL line: {exc}") from exc
    return events


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def prometheus_text(registry: Optional[MetricsRegistry] = None,
                    prefix: str = "repro") -> str:
    """Render the registry in the Prometheus text exposition format."""
    registry = registry if registry is not None else get_registry()
    lines: List[str] = []
    for name, entry in registry.snapshot().items():
        metric = sanitize_metric_name(name, prefix)
        kind = entry["type"]
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {metric} {kind}")
            value = _finite(entry["value"])
            lines.append(f"{metric} {0.0 if value is None else value:g}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} summary")
            for key, value in entry.items():
                if not key.startswith("p"):
                    continue
                quantile = float(key[1:]) / 100.0
                value = _finite(value)
                if value is None:
                    continue
                lines.append(f'{metric}{{quantile="{quantile:g}"}} {value:g}')
            total = _finite(entry.get("sum", 0.0)) or 0.0
            lines.append(f"{metric}_sum {total:g}")
            lines.append(f"{metric}_count {entry.get('count', 0):g}")
    return "\n".join(lines) + ("\n" if lines else "")


def export_prometheus(path: str,
                      registry: Optional[MetricsRegistry] = None,
                      prefix: str = "repro") -> str:
    """Write :func:`prometheus_text` to ``path``; returns the text."""
    text = prometheus_text(registry, prefix)
    with open(path, "w") as handle:
        handle.write(text)
    return text


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>[^\s]+)$')


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Parse Prometheus exposition text back into a nested dict.

    Returns ``{metric_name: {"type": str, "samples": {labels: value}}}``
    where ``labels`` is the raw label string ("" when absent).  Supports
    exactly the subset :func:`prometheus_text` emits — enough for
    round-trip tests and for diffing two runs' metric files.
    """
    out: Dict[str, Dict[str, object]] = {}
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                out.setdefault(parts[2], {"type": parts[3], "samples": {}})
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: unparseable sample {line!r}")
        name = match.group("name")
        # _sum/_count samples belong to their parent summary metric.
        base = name
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in out:
                base = name[:-len(suffix)]
                break
        entry = out.setdefault(base, {"type": "untyped", "samples": {}})
        key = match.group("labels") or ""
        if base != name:
            key = name[len(base) + 1:]  # "sum" / "count"
        entry["samples"][key] = float(match.group("value"))
    return out
