"""Exporters: JSONL event log and Prometheus-style text format.

Two machine-readable sinks plus parsers for round-tripping them in tests
and downstream analysis:

* **JSONL** — one JSON object per line; mixes metric snapshots, span-tree
  nodes and profiler op/layer records, each tagged with a ``type`` field.
  Append-friendly and greppable, the baseline-capture format every
  subsequent perf PR diffs against.
* **Prometheus text exposition** — counters and gauges verbatim, [0]
  histograms as Prometheus *summaries* (``name{quantile="0.5"} …`` +
  ``name_sum`` / ``name_count``).  Dotted metric names become
  underscore-separated and get a ``repro_`` prefix.

Both sinks round-trip **non-finite** values losslessly: strict JSON has
no NaN/±Inf literal, so :func:`encode_non_finite` maps them to a tagged
object (``{"__nonfinite__": "nan"}``) that :func:`decode_non_finite`
restores; the Prometheus text format has native ``NaN`` / ``+Inf`` /
``-Inf`` sample values, which are emitted and parsed verbatim.
"""

from __future__ import annotations

import json
import math
import re
import time
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, get_registry
from .reqtrace import TRACE_EVENT_TYPE, build_span_tree
from .tracing import Tracer, get_tracer

__all__ = ["collect_events", "export_jsonl", "read_jsonl",
           "prometheus_text", "export_prometheus", "parse_prometheus",
           "sanitize_metric_name", "encode_non_finite", "decode_non_finite",
           "NONFINITE_KEY", "read_trace_jsonl", "stitch_traces",
           "render_trace_tree"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Tag key used to encode NaN/±Inf floats in strict-JSON documents.
NONFINITE_KEY = "__nonfinite__"

_NONFINITE_ENCODE = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """``guard.nan_batches`` → ``repro_guard_nan_batches``."""
    cleaned = _NAME_RE.sub("_", name.replace(".", "_"))
    return f"{prefix}_{cleaned}" if prefix else cleaned


def encode_non_finite(value):
    """Recursively replace NaN/±Inf floats with JSON-safe tagged objects.

    ``nan → {"__nonfinite__": "nan"}``, ``inf → {"__nonfinite__": "inf"}``,
    ``-inf → {"__nonfinite__": "-inf"}``.  Containers (dict/list/tuple)
    are walked; everything else passes through untouched.  The inverse is
    :func:`decode_non_finite`; together they make ``json.dumps(...,
    allow_nan=False)`` safe without losing the sentinel semantics (an
    all-NaN histogram quantile must stay NaN, not become ``null`` or 0).
    """
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        if math.isnan(value):
            return {NONFINITE_KEY: "nan"}
        return {NONFINITE_KEY: "inf" if value > 0 else "-inf"}
    if isinstance(value, dict):
        return {key: encode_non_finite(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_non_finite(item) for item in value]
    return value


def decode_non_finite(value):
    """Inverse of :func:`encode_non_finite` (recursive)."""
    if isinstance(value, dict):
        if set(value) == {NONFINITE_KEY}:
            tag = value[NONFINITE_KEY]
            try:
                return _NONFINITE_ENCODE[tag]
            except KeyError:
                raise ValueError(
                    f"unknown non-finite tag {tag!r} "
                    f"(expected one of {sorted(_NONFINITE_ENCODE)})") from None
        return {key: decode_non_finite(val) for key, val in value.items()}
    if isinstance(value, list):
        return [decode_non_finite(item) for item in value]
    return value


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def collect_events(registry: Optional[MetricsRegistry] = None,
                   tracer: Optional[Tracer] = None,
                   profiler=None,
                   meta: Optional[Dict[str, object]] = None
                   ) -> List[Dict[str, object]]:
    """Gather one run's telemetry into a flat, JSON-serializable list."""
    events: List[Dict[str, object]] = [{
        "type": "meta",
        "timestamp": time.time(),
        **(meta or {}),
    }]
    registry = registry if registry is not None else get_registry()
    for name, entry in registry.snapshot().items():
        # "type" stays the event discriminator; the metric kind
        # (counter/gauge/histogram) moves to "metric_type".
        event = {"type": "metric", "name": name,
                 "metric_type": entry["type"]}
        event.update({k: v for k, v in entry.items() if k != "type"})
        events.append(event)
    tracer = tracer if tracer is not None else get_tracer()
    events.extend(tracer.to_events())
    if profiler is not None:
        events.extend(profiler.to_events())
    return events


def export_jsonl(path: str,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 profiler=None,
                 meta: Optional[Dict[str, object]] = None) -> int:
    """Write the run's telemetry as JSONL; returns the line count."""
    events = collect_events(registry, tracer, profiler, meta)
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(encode_non_finite(event),
                                    sort_keys=True, allow_nan=False))
            handle.write("\n")
    return len(events)


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL telemetry file back into event dicts.

    Non-finite values written by :func:`export_jsonl` (tagged objects,
    see :func:`encode_non_finite`) are restored to the original
    NaN/±Inf floats.
    """
    events = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(decode_non_finite(json.loads(line)))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: invalid JSONL line: {exc}") from exc
    return events


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def _prom_value(value: object) -> str:
    """Render a sample value, using Prometheus' native non-finite forms."""
    value = float(value)  # type: ignore[arg-type]
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:g}"


def prometheus_text(registry: Optional[MetricsRegistry] = None,
                    prefix: str = "repro") -> str:
    """Render the registry in the Prometheus text exposition format.

    Non-finite values are emitted with the format's native ``NaN`` /
    ``+Inf`` / ``-Inf`` sample syntax (instead of being zeroed or
    dropped), so :func:`parse_prometheus` round-trips them losslessly —
    an empty histogram's quantiles stay NaN rather than vanishing.
    """
    registry = registry if registry is not None else get_registry()
    lines: List[str] = []
    for name, entry in registry.snapshot().items():
        metric = sanitize_metric_name(name, prefix)
        kind = entry["type"]
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {_prom_value(entry['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} summary")
            exemplars = entry.get("exemplars") or {}
            for key, value in entry.items():
                if not key.startswith("p") or key == "exemplars":
                    continue
                quantile = float(key[1:]) / 100.0
                line = (f'{metric}{{quantile="{quantile:g}"}} '
                        f"{_prom_value(value)}")
                exemplar = exemplars.get(key)
                if exemplar:
                    # OpenMetrics exemplar syntax:
                    #   value # {trace_id="…"} exemplar_value timestamp
                    line += (f' # {{trace_id="{exemplar["trace_id"]}"}} '
                             f'{_prom_value(exemplar["value"])} '
                             f'{float(exemplar.get("ts", 0.0)):.3f}')
                lines.append(line)
            lines.append(f"{metric}_sum {_prom_value(entry.get('sum', 0.0))}")
            lines.append(f"{metric}_count {entry.get('count', 0):g}")
    return "\n".join(lines) + ("\n" if lines else "")


def export_prometheus(path: str,
                      registry: Optional[MetricsRegistry] = None,
                      prefix: str = "repro") -> str:
    """Write :func:`prometheus_text` to ``path``; returns the text."""
    text = prometheus_text(registry, prefix)
    with open(path, "w") as handle:
        handle.write(text)
    return text


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>[^\s#]+)'
    r'(?:\s+#\s+\{(?P<ex_labels>[^}]*)\}\s+(?P<ex_value>[^\s]+)'
    r'(?:\s+(?P<ex_ts>[^\s]+))?)?$')

_EX_TRACE_RE = re.compile(r'trace_id="(?P<trace_id>[^"]*)"')


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Parse Prometheus exposition text back into a nested dict.

    Returns ``{metric_name: {"type": str, "samples": {labels: value}}}``
    where ``labels`` is the raw label string ("" when absent).  Supports
    exactly the subset :func:`prometheus_text` emits — enough for
    round-trip tests and for diffing two runs' metric files.
    """
    out: Dict[str, Dict[str, object]] = {}
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                out.setdefault(parts[2], {"type": parts[3], "samples": {}})
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: unparseable sample {line!r}")
        name = match.group("name")
        # _sum/_count samples belong to their parent summary metric.
        base = name
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in out:
                base = name[:-len(suffix)]
                break
        entry = out.setdefault(base, {"type": "untyped", "samples": {}})
        key = match.group("labels") or ""
        if base != name:
            key = name[len(base) + 1:]  # "sum" / "count"
        entry["samples"][key] = float(match.group("value"))
        if match.group("ex_labels") is not None:
            trace = _EX_TRACE_RE.search(match.group("ex_labels"))
            exemplar = {
                "trace_id": trace.group("trace_id") if trace else "",
                "value": float(match.group("ex_value")),
            }
            if match.group("ex_ts"):
                exemplar["ts"] = float(match.group("ex_ts"))
            entry.setdefault("exemplars", {})[key] = exemplar
    return out


# ----------------------------------------------------------------------
# Cross-process trace stitching
# ----------------------------------------------------------------------
def read_trace_jsonl(*paths: str) -> List[Dict[str, object]]:
    """Load per-request span events from one or more trace JSONL files.

    Each file is one process's :class:`~repro.telemetry.TraceJsonlWriter`
    output (router, workers, …); non-span lines are ignored so the
    files can share a directory with other telemetry exports.
    """
    events: List[Dict[str, object]] = []
    for path in paths:
        events.extend(event for event in read_jsonl(path)
                      if event.get("type") == TRACE_EVENT_TYPE)
    return events


def stitch_traces(events: List[Dict[str, object]]
                  ) -> Dict[str, Dict[str, object]]:
    """Reassemble cross-process span trees from flat span events.

    Groups by ``trace_id`` and joins spans across processes on
    ``parent_id`` (the router's attempt span id travels to the worker
    in the ``traceparent`` header, so the worker's root nests under
    it).  Returns ``{trace_id: summary}`` where each summary carries:

    * ``roots`` — nested span trees (exactly one for a fully stitched
      trace; more means a hop's file is missing → ``complete=False``);
    * ``services`` — every process that contributed spans;
    * ``duration_s`` / ``status`` — taken from the root span;
    * ``span_count`` and the flat ``spans`` themselves.
    """
    by_trace: Dict[str, List[Dict[str, object]]] = {}
    for event in events:
        by_trace.setdefault(str(event["trace_id"]), []).append(event)
    out: Dict[str, Dict[str, object]] = {}
    for trace_id, spans in by_trace.items():
        roots = build_span_tree(spans)
        starts = [float(s.get("start_ts", 0.0)) for s in spans]
        ends = [float(s.get("start_ts", 0.0))
                + float(s.get("duration_s", 0.0)) for s in spans]
        if len(roots) == 1:
            root = roots[0]["span"]
            duration = float(root.get("duration_s", 0.0))
            status = str(root.get("status", "ok"))
        else:
            duration = max(ends) - min(starts) if spans else 0.0
            status = ("error" if any(s.get("status") == "error"
                                     for s in spans) else "ok")
        out[trace_id] = {
            "trace_id": trace_id,
            "roots": roots,
            "complete": len(roots) == 1,
            "span_count": len(spans),
            "services": sorted({str(s.get("service", ""))
                                for s in spans}),
            "duration_s": duration,
            "status": status,
            "spans": spans,
        }
    return out


def render_trace_tree(roots: List[Dict[str, object]],
                      max_depth: int = 12) -> str:
    """ASCII rendering of stitched span trees (debugging / reports)."""
    lines: List[str] = []

    def emit(node: Dict[str, object], depth: int) -> None:
        if depth > max_depth:
            return
        span_event = node["span"]
        name = span_event.get("name", "?")
        service = span_event.get("service", "")
        duration_ms = 1000.0 * float(span_event.get("duration_s", 0.0))
        status = span_event.get("status", "ok")
        suffix = "" if status == "ok" else f"  !{status}"
        attrs = span_event.get("attrs") or {}
        attr_text = (" " + " ".join(f"{k}={v}" for k, v in
                                    sorted(attrs.items()))
                     if attrs else "")
        lines.append(f"{'  ' * depth}{name} [{service}] "
                     f"{duration_ms:9.3f}ms{suffix}{attr_text}")
        for child in node["children"]:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    if not lines:
        lines.append("(no spans)")
    return "\n".join(lines)
