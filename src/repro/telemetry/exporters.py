"""Exporters: JSONL event log and Prometheus-style text format.

Two machine-readable sinks plus parsers for round-tripping them in tests
and downstream analysis:

* **JSONL** — one JSON object per line; mixes metric snapshots, span-tree
  nodes and profiler op/layer records, each tagged with a ``type`` field.
  Append-friendly and greppable, the baseline-capture format every
  subsequent perf PR diffs against.
* **Prometheus text exposition** — counters and gauges verbatim, [0]
  histograms as Prometheus *summaries* (``name{quantile="0.5"} …`` +
  ``name_sum`` / ``name_count``).  Dotted metric names become
  underscore-separated and get a ``repro_`` prefix.

Both sinks round-trip **non-finite** values losslessly: strict JSON has
no NaN/±Inf literal, so :func:`encode_non_finite` maps them to a tagged
object (``{"__nonfinite__": "nan"}``) that :func:`decode_non_finite`
restores; the Prometheus text format has native ``NaN`` / ``+Inf`` /
``-Inf`` sample values, which are emitted and parsed verbatim.
"""

from __future__ import annotations

import json
import math
import re
import time
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, get_registry
from .tracing import Tracer, get_tracer

__all__ = ["collect_events", "export_jsonl", "read_jsonl",
           "prometheus_text", "export_prometheus", "parse_prometheus",
           "sanitize_metric_name", "encode_non_finite", "decode_non_finite",
           "NONFINITE_KEY"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Tag key used to encode NaN/±Inf floats in strict-JSON documents.
NONFINITE_KEY = "__nonfinite__"

_NONFINITE_ENCODE = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """``guard.nan_batches`` → ``repro_guard_nan_batches``."""
    cleaned = _NAME_RE.sub("_", name.replace(".", "_"))
    return f"{prefix}_{cleaned}" if prefix else cleaned


def encode_non_finite(value):
    """Recursively replace NaN/±Inf floats with JSON-safe tagged objects.

    ``nan → {"__nonfinite__": "nan"}``, ``inf → {"__nonfinite__": "inf"}``,
    ``-inf → {"__nonfinite__": "-inf"}``.  Containers (dict/list/tuple)
    are walked; everything else passes through untouched.  The inverse is
    :func:`decode_non_finite`; together they make ``json.dumps(...,
    allow_nan=False)`` safe without losing the sentinel semantics (an
    all-NaN histogram quantile must stay NaN, not become ``null`` or 0).
    """
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        if math.isnan(value):
            return {NONFINITE_KEY: "nan"}
        return {NONFINITE_KEY: "inf" if value > 0 else "-inf"}
    if isinstance(value, dict):
        return {key: encode_non_finite(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_non_finite(item) for item in value]
    return value


def decode_non_finite(value):
    """Inverse of :func:`encode_non_finite` (recursive)."""
    if isinstance(value, dict):
        if set(value) == {NONFINITE_KEY}:
            tag = value[NONFINITE_KEY]
            try:
                return _NONFINITE_ENCODE[tag]
            except KeyError:
                raise ValueError(
                    f"unknown non-finite tag {tag!r} "
                    f"(expected one of {sorted(_NONFINITE_ENCODE)})") from None
        return {key: decode_non_finite(val) for key, val in value.items()}
    if isinstance(value, list):
        return [decode_non_finite(item) for item in value]
    return value


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def collect_events(registry: Optional[MetricsRegistry] = None,
                   tracer: Optional[Tracer] = None,
                   profiler=None,
                   meta: Optional[Dict[str, object]] = None
                   ) -> List[Dict[str, object]]:
    """Gather one run's telemetry into a flat, JSON-serializable list."""
    events: List[Dict[str, object]] = [{
        "type": "meta",
        "timestamp": time.time(),
        **(meta or {}),
    }]
    registry = registry if registry is not None else get_registry()
    for name, entry in registry.snapshot().items():
        # "type" stays the event discriminator; the metric kind
        # (counter/gauge/histogram) moves to "metric_type".
        event = {"type": "metric", "name": name,
                 "metric_type": entry["type"]}
        event.update({k: v for k, v in entry.items() if k != "type"})
        events.append(event)
    tracer = tracer if tracer is not None else get_tracer()
    events.extend(tracer.to_events())
    if profiler is not None:
        events.extend(profiler.to_events())
    return events


def export_jsonl(path: str,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 profiler=None,
                 meta: Optional[Dict[str, object]] = None) -> int:
    """Write the run's telemetry as JSONL; returns the line count."""
    events = collect_events(registry, tracer, profiler, meta)
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(encode_non_finite(event),
                                    sort_keys=True, allow_nan=False))
            handle.write("\n")
    return len(events)


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL telemetry file back into event dicts.

    Non-finite values written by :func:`export_jsonl` (tagged objects,
    see :func:`encode_non_finite`) are restored to the original
    NaN/±Inf floats.
    """
    events = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(decode_non_finite(json.loads(line)))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: invalid JSONL line: {exc}") from exc
    return events


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def _prom_value(value: object) -> str:
    """Render a sample value, using Prometheus' native non-finite forms."""
    value = float(value)  # type: ignore[arg-type]
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:g}"


def prometheus_text(registry: Optional[MetricsRegistry] = None,
                    prefix: str = "repro") -> str:
    """Render the registry in the Prometheus text exposition format.

    Non-finite values are emitted with the format's native ``NaN`` /
    ``+Inf`` / ``-Inf`` sample syntax (instead of being zeroed or
    dropped), so :func:`parse_prometheus` round-trips them losslessly —
    an empty histogram's quantiles stay NaN rather than vanishing.
    """
    registry = registry if registry is not None else get_registry()
    lines: List[str] = []
    for name, entry in registry.snapshot().items():
        metric = sanitize_metric_name(name, prefix)
        kind = entry["type"]
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {_prom_value(entry['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} summary")
            for key, value in entry.items():
                if not key.startswith("p"):
                    continue
                quantile = float(key[1:]) / 100.0
                lines.append(f'{metric}{{quantile="{quantile:g}"}} '
                             f"{_prom_value(value)}")
            lines.append(f"{metric}_sum {_prom_value(entry.get('sum', 0.0))}")
            lines.append(f"{metric}_count {entry.get('count', 0):g}")
    return "\n".join(lines) + ("\n" if lines else "")


def export_prometheus(path: str,
                      registry: Optional[MetricsRegistry] = None,
                      prefix: str = "repro") -> str:
    """Write :func:`prometheus_text` to ``path``; returns the text."""
    text = prometheus_text(registry, prefix)
    with open(path, "w") as handle:
        handle.write(text)
    return text


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>[^\s]+)$')


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Parse Prometheus exposition text back into a nested dict.

    Returns ``{metric_name: {"type": str, "samples": {labels: value}}}``
    where ``labels`` is the raw label string ("" when absent).  Supports
    exactly the subset :func:`prometheus_text` emits — enough for
    round-trip tests and for diffing two runs' metric files.
    """
    out: Dict[str, Dict[str, object]] = {}
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                out.setdefault(parts[2], {"type": parts[3], "samples": {}})
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: unparseable sample {line!r}")
        name = match.group("name")
        # _sum/_count samples belong to their parent summary metric.
        base = name
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in out:
                base = name[:-len(suffix)]
                break
        entry = out.setdefault(base, {"type": "untyped", "samples": {}})
        key = match.group("labels") or ""
        if base != name:
            key = name[len(base) + 1:]  # "sum" / "count"
        entry["samples"][key] = float(match.group("value"))
    return out
