"""Process-global metrics: counters, gauges, streaming histograms.

The registry is the numeric backbone of the observability layer: every
subsystem (guards, trainers, HD encoders, the profiler) publishes into
one process-global :class:`MetricsRegistry` so a single exporter call can
snapshot the whole run.  Everything here is numpy + stdlib only — the
telemetry layer must be importable from every other layer of the code
base without creating import cycles.

Histograms estimate p50/p95/p99 *without storing samples* using the P²
(piecewise-parabolic) streaming quantile algorithm of Jain & Chlamtac
(CACM 1985): five markers per tracked quantile, O(1) memory and O(1)
update, accurate to a few percent of quantile rank on the distributions
that show up in training telemetry (timings, norms, margins).
"""

from __future__ import annotations

import contextlib
import math
import threading
import time
from collections import deque
from typing import (Callable, Deque, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

import numpy as np

__all__ = [
    "Counter", "Gauge", "Histogram", "P2Quantile", "MetricsRegistry",
    "BurnRateTracker", "get_registry", "set_registry", "use_registry",
    "DEFAULT_QUANTILES",
]

#: Quantiles tracked by default by every :class:`Histogram`.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


class Counter:
    """Monotonically increasing counter (thread-safe)."""

    kind = "counter"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def summary(self) -> Dict[str, float]:
        return {"value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can go up and down (thread-safe)."""

    kind = "gauge"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def summary(self) -> Dict[str, float]:
        return {"value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class P2Quantile:
    """Streaming quantile estimator (P² algorithm, Jain & Chlamtac 1985).

    Five markers track the running minimum, the q/2, q and (1+q)/2
    quantiles and the running maximum; marker heights are adjusted with a
    piecewise-parabolic (hence P²) interpolation as observations stream
    in.  Memory is O(1) regardless of stream length.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments",
                 "_initial")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self._initial: List[float] = []
        self._heights: Optional[List[float]] = None
        self._positions = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q,
                         5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    # ------------------------------------------------------------------
    def observe(self, x: float) -> None:
        x = float(x)
        if self._heights is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
            return

        h = self._heights
        n = self._positions
        # Locate the marker cell containing x (adjusting extremes).
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if x >= h[i]:
                    k = i
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]

        # Adjust the three interior markers toward their desired positions.
        for i in range(1, 4):
            d = self._desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or \
                    (d <= -1.0 and n[i - 1] - n[i] < -1):
                d = 1 if d > 0 else -1
                candidate = self._parabolic(i, d)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, d)
                n[i] += d

    def _parabolic(self, i: int, d: int) -> float:
        h, n = self._heights, self._positions
        num1 = (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
        num2 = (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        return h[i] + d * (num1 + num2) / (n[i + 1] - n[i - 1])

    def _linear(self, i: int, d: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + d * (h[i + d] - h[i]) / (n[i + d] - n[i])

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        if self._heights is None:
            return len(self._initial)
        return self._positions[4]

    def value(self) -> float:
        """Current quantile estimate (NaN until the first observation)."""
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return math.nan
        # Fewer than 5 samples: exact interpolated quantile.
        return float(np.quantile(np.asarray(self._initial), self.q))


class Histogram:
    """Streaming summary: count/sum/min/max + P² quantile estimates.

    Observations may carry an **exemplar** trace id
    (``observe(12.3, exemplar="4bf9…")``, OpenMetrics-style): for every
    tracked quantile whose current estimate the sample reaches, the
    sample's ``{value, trace_id, ts}`` is remembered — so the P99 bucket
    of ``serve.latency_ms`` always points at a real recent trace a
    debugger can look up in the flight recorder.  Exemplars only appear
    in :meth:`summary` (and downstream exporters) when at least one was
    recorded, keeping train-time metric snapshots byte-identical.
    """

    kind = "histogram"
    __slots__ = ("name", "quantiles", "_estimators", "count", "sum",
                 "min", "max", "_lock", "_exemplars")

    def __init__(self, name: str,
                 quantiles: Sequence[float] = DEFAULT_QUANTILES):
        self.name = name
        self.quantiles = tuple(quantiles)
        if not self.quantiles:
            raise ValueError("need at least one tracked quantile")
        self._estimators = {q: P2Quantile(q) for q in self.quantiles}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()
        self._exemplars: Dict[str, Dict[str, float]] = {}

    def observe(self, value: float,
                exemplar: Optional[str] = None) -> None:
        value = float(value)
        if not math.isfinite(value):
            return  # non-finite samples would wedge the marker invariants
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for estimator in self._estimators.values():
                estimator.observe(value)
            if exemplar:
                for q in self.quantiles:
                    estimate = self._estimators[q].value()
                    if math.isnan(estimate) or value >= estimate:
                        self._exemplars[f"p{q * 100:g}"] = {
                            "value": value, "trace_id": str(exemplar),
                            "ts": time.time()}

    def exemplars(self) -> Dict[str, Dict[str, float]]:
        """Per-quantile exemplar copies (empty when none recorded)."""
        with self._lock:
            return {key: dict(val) for key, val in self._exemplars.items()}

    def observe_many(self, values: Iterable[float]) -> None:
        for value in np.asarray(list(values), dtype=np.float64).ravel():
            self.observe(value)

    def quantile(self, q: float) -> float:
        if q not in self._estimators:
            raise KeyError(
                f"histogram {self.name!r} does not track q={q} "
                f"(tracked: {self.quantiles})")
        return self._estimators[q].value()

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def summary(self) -> Dict[str, float]:
        out = {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
        }
        for q in self.quantiles:
            out[f"p{q * 100:g}"] = self._estimators[q].value()
        # Snapshot under the lock: observe() may be inserting new
        # quantile keys while a /metrics scrape iterates.
        exemplars = self.exemplars()
        if exemplars:
            out["exemplars"] = exemplars
        return out

    def reset(self) -> None:
        with self._lock:
            self._estimators = {q: P2Quantile(q) for q in self.quantiles}
            self.count = 0
            self.sum = 0.0
            self.min = math.inf
            self.max = -math.inf
            self._exemplars = {}

    def __repr__(self) -> str:
        return (f"Histogram({self.name}, count={self.count}, "
                f"p50={self.quantile(0.5) if 0.5 in self._estimators else '?'})")


class MetricsRegistry:
    """Name → metric map with get-or-create accessors (thread-safe).

    Metric names are dotted paths (``guard.nan_batches``,
    ``train.epoch_time_s``); exporters translate them to whatever naming
    scheme the sink wants (Prometheus uses underscores).
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {kind}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str,
                  quantiles: Sequence[float] = DEFAULT_QUANTILES
                  ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, quantiles), "histogram")

    # Convenience one-liners used by instrumented call sites ------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                exemplar: Optional[str] = None) -> None:
        self.histogram(name).observe(value, exemplar=exemplar)

    def observe_many(self, name: str, values: Iterable[float]) -> None:
        self.histogram(name).observe_many(values)

    # ------------------------------------------------------------------
    def get(self, name: str):
        """Return the metric registered under ``name`` (KeyError if none)."""
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time copy: name → {"type": ..., **summary}."""
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, Dict[str, object]] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            entry: Dict[str, object] = {"type": metric.kind}
            entry.update(metric.summary())
            out[name] = entry
        return out

    def reset(self) -> None:
        """Drop every registered metric (tests / run boundaries)."""
        with self._lock:
            self._metrics = {}

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


class BurnRateTracker:
    """Rolling-window SLO burn rate (error rate ÷ error budget).

    A burn rate of 1.0 means the service is consuming its error budget
    exactly as fast as the objective allows (e.g. 0.1% errors against a
    99.9% objective); >1 means the budget is burning down early.  The
    standard multi-window alerting pattern evaluates a *fast* window
    (is it burning **now**) and a *slow* window (has it been burning
    long enough to matter) — both are tracked here over per-second
    bucketed ring counters, O(window/bucket) memory, thread-safe.

    Parameters
    ----------
    objective:
        Success-rate target in (0, 1), e.g. 0.999; the error budget is
        ``1 - objective``.
    fast_window_s / slow_window_s:
        Evaluation windows (defaults 60s / 600s).
    bucket_s:
        Counter bucket granularity.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(self, objective: float = 0.999,
                 fast_window_s: float = 60.0,
                 slow_window_s: float = 600.0, bucket_s: float = 1.0,
                 clock: Callable[[], float] = time.monotonic):
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if not 0.0 < fast_window_s <= slow_window_s:
            raise ValueError("need 0 < fast_window_s <= slow_window_s")
        if bucket_s <= 0:
            raise ValueError("bucket_s must be > 0")
        self.objective = float(objective)
        self.budget = 1.0 - self.objective
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = float(slow_window_s)
        self.bucket_s = float(bucket_s)
        self._clock = clock
        # Ring of [bucket_index, total, errors], oldest first.
        self._buckets: Deque[List[float]] = deque()
        self._lock = threading.Lock()

    def record(self, ok: bool) -> None:
        idx = int(self._clock() / self.bucket_s)
        with self._lock:
            if self._buckets and self._buckets[-1][0] == idx:
                bucket = self._buckets[-1]
            else:
                bucket = [idx, 0, 0]
                self._buckets.append(bucket)
            bucket[1] += 1
            if not ok:
                bucket[2] += 1
            self._prune(idx)

    def _prune(self, now_idx: int) -> None:
        horizon = now_idx - int(self.slow_window_s / self.bucket_s)
        while self._buckets and self._buckets[0][0] < horizon:
            self._buckets.popleft()

    def _window(self, window_s: float) -> Tuple[int, int]:
        now_idx = int(self._clock() / self.bucket_s)
        horizon = now_idx - int(window_s / self.bucket_s)
        total = errors = 0
        for idx, bucket_total, bucket_errors in self._buckets:
            if idx >= horizon:
                total += bucket_total
                errors += bucket_errors
        return total, errors

    def burn_rate(self, window_s: Optional[float] = None) -> float:
        """Error rate over the window divided by the error budget.

        Zero when the window saw no traffic (no evidence of burning).
        """
        with self._lock:
            total, errors = self._window(window_s or self.fast_window_s)
        if total == 0:
            return 0.0
        return (errors / total) / self.budget

    def summary(self) -> Dict[str, float]:
        with self._lock:
            fast_total, fast_errors = self._window(self.fast_window_s)
            slow_total, slow_errors = self._window(self.slow_window_s)
        fast_rate = fast_errors / fast_total if fast_total else 0.0
        slow_rate = slow_errors / slow_total if slow_total else 0.0
        return {
            "objective": self.objective,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "fast_requests": float(fast_total),
            "slow_requests": float(slow_total),
            "fast_error_rate": fast_rate,
            "slow_error_rate": slow_rate,
            "fast_burn_rate": fast_rate / self.budget,
            "slow_burn_rate": slow_rate / self.budget,
        }

    def reset(self) -> None:
        with self._lock:
            self._buckets.clear()

    def __repr__(self) -> str:
        s = self.summary()
        return (f"BurnRateTracker(objective={self.objective}, "
                f"fast={s['fast_burn_rate']:.2f}, "
                f"slow={s['slow_burn_rate']:.2f})")


# ----------------------------------------------------------------------
# Process-global default registry
# ----------------------------------------------------------------------
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry all built-in instrumentation targets."""
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry; returns the previous one."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous


@contextlib.contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None):
    """Scoped registry swap (tests, isolated profiled runs).

    Yields the active registry; restores the previous global on exit.
    """
    registry = registry or MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
