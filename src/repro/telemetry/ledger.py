"""Persistent run ledger: every training/benchmark run leaves a record.

PR 2's telemetry evaporates with the process; this module makes it
durable.  A :class:`RunRecord` snapshots one run — git SHA, config +
fingerprint, environment (python/numpy/BLAS/CPU), seed, the per-stage
wall-time breakdown from the ``stage.*`` spans, final and per-epoch
accuracy, guard counters, the full metrics snapshot, and the HD drift
diagnostics from :mod:`repro.telemetry.diagnostics` — and a
:class:`RunLedger` appends it to an **append-only JSONL** file under
``results/ledger/``.

Writes are atomic in the PR-1 checkpoint style (temp file in the target
directory, fsync, ``os.replace``): a process killed mid-append can never
leave a truncated line under the ledger name, so the committed trajectory
is always parseable.  Non-finite values ride the exporters' lossless
JSON codec (:func:`repro.telemetry.exporters.encode_non_finite`).

Schema evolution: :meth:`RunRecord.from_dict` preserves **unknown keys**
(they land in :attr:`RunRecord.extra` and are re-emitted by
:meth:`RunRecord.to_dict`), so a ledger written by a newer build loses
nothing when read — and re-written — by an older one.

The regression gate (:mod:`repro.telemetry.regress`) queries this ledger
for rolling baselines; ``scripts/bench_gate.py`` is the CLI surface.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
import uuid
from typing import Dict, List, Optional

import numpy as np

from .exporters import decode_non_finite, encode_non_finite
from .metrics import MetricsRegistry, get_registry
from .report import STAGE_ORDER, format_table, stage_breakdown
from .tracing import Tracer, get_tracer

__all__ = ["RunRecord", "RunLedger", "LEDGER_SCHEMA_VERSION",
           "DEFAULT_LEDGER_DIR", "git_info", "env_fingerprint",
           "env_digest", "config_fingerprint", "diff_records",
           "diff_report"]

#: Version stamped into every ledger record.
LEDGER_SCHEMA_VERSION = 1

#: Default ledger location, relative to the repository root.
DEFAULT_LEDGER_DIR = os.path.join("results", "ledger")

#: RunRecord fields the dataclass knows about; everything else read from
#: disk is preserved verbatim in :attr:`RunRecord.extra`.
_KNOWN_FIELDS = (
    "schema_version", "run_id", "timestamp", "kind", "pipeline", "git",
    "config", "config_fingerprint", "env", "seed", "wall_s", "stage_times",
    "stage_calls", "final_accuracy", "test_accuracy", "history", "guards",
    "metrics", "diagnostics",
)


# ----------------------------------------------------------------------
# Environment / provenance capture
# ----------------------------------------------------------------------
def git_info(cwd: Optional[str] = None) -> Dict[str, object]:
    """Best-effort ``{"sha", "short_sha", "branch", "dirty"}`` of ``cwd``.

    Degrades to ``sha="unknown"`` outside a git checkout (or without a
    git binary) instead of raising — ledger writes must never fail on
    provenance capture.
    """
    def _git(*args: str) -> Optional[str]:
        try:
            out = subprocess.run(
                ("git",) + args, cwd=cwd, capture_output=True, text=True,
                timeout=10)
        except (OSError, subprocess.SubprocessError):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    sha = _git("rev-parse", "HEAD")
    if sha is None:
        return {"sha": "unknown", "short_sha": "unknown", "branch": None,
                "dirty": None}
    status = _git("status", "--porcelain")
    return {
        "sha": sha,
        "short_sha": sha[:10],
        "branch": _git("rev-parse", "--abbrev-ref", "HEAD"),
        "dirty": bool(status) if status is not None else None,
    }


def _blas_info() -> str:
    """A short description of numpy's BLAS backend (best effort)."""
    try:
        cfg = np.show_config(mode="dicts")  # numpy >= 1.25
        blas = cfg.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "unknown")
        version = blas.get("version", "")
        return f"{name} {version}".strip()
    except Exception:  # show_config API varies across numpy versions
        return "unknown"


def env_fingerprint() -> Dict[str, object]:
    """Machine/environment identity for cross-commit comparability.

    Two ledger entries (or pytest-benchmark records) are only comparable
    when this fingerprint matches: interpreter, numpy + BLAS backend,
    CPU count, platform triple and machine architecture.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "blas": _blas_info(),
        "cpu_count": os.cpu_count(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "system": f"{platform.system()} {platform.release()}",
    }


def env_digest(env: Optional[Dict[str, object]] = None) -> str:
    """Stable 12-hex-char digest of an environment fingerprint.

    Hashes the :func:`env_fingerprint` dict (or the current one when
    ``env`` is None) canonically, giving baseline queries a compact
    equality key: two runs are perf-comparable only when interpreter,
    numpy + BLAS backend, CPU count and platform all match.  The
    regression gate keys its baselines on this **in addition to** the
    pipeline + config fingerprint, so a ledger carried across machines
    bootstraps a fresh baseline instead of gating against alien timings.
    """
    if env is None:
        env = env_fingerprint()
    canonical = json.dumps(encode_non_finite(dict(env)), sort_keys=True,
                           separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def config_fingerprint(config: Dict[str, object]) -> str:
    """Stable 12-hex-char digest of a run configuration dict.

    Key order does not matter; non-finite floats are encoded via the
    exporters' codec so any JSON-serializable config hashes cleanly.
    Baseline queries match on this: only runs with the *same* config
    fingerprint are compared by the regression gate.
    """
    canonical = json.dumps(encode_non_finite(config), sort_keys=True,
                           separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


# ----------------------------------------------------------------------
# RunRecord
# ----------------------------------------------------------------------
class RunRecord:
    """One run's durable record (see module docstring for the fields).

    Constructed either directly, via :meth:`capture` (which pulls stage
    times and metrics from the live telemetry state), or via
    :meth:`from_dict` when reading the ledger back.
    """

    def __init__(self, pipeline: str, kind: str = "pipeline",
                 config: Optional[Dict[str, object]] = None,
                 seed: Optional[int] = None,
                 wall_s: Optional[float] = None,
                 stage_times: Optional[Dict[str, float]] = None,
                 stage_calls: Optional[Dict[str, int]] = None,
                 final_accuracy: Optional[float] = None,
                 test_accuracy: Optional[float] = None,
                 history: Optional[Dict[str, List[float]]] = None,
                 guards: Optional[Dict[str, float]] = None,
                 metrics: Optional[Dict[str, Dict[str, object]]] = None,
                 diagnostics: Optional[Dict[str, object]] = None,
                 git: Optional[Dict[str, object]] = None,
                 env: Optional[Dict[str, object]] = None,
                 run_id: Optional[str] = None,
                 timestamp: Optional[float] = None,
                 schema_version: int = LEDGER_SCHEMA_VERSION,
                 extra: Optional[Dict[str, object]] = None):
        self.schema_version = int(schema_version)
        self.run_id = run_id or uuid.uuid4().hex[:16]
        self.timestamp = float(timestamp if timestamp is not None
                               else time.time())
        self.kind = kind
        self.pipeline = pipeline
        self.config = dict(config or {})
        self.config_fingerprint = config_fingerprint(self.config)
        self.git = dict(git) if git is not None else git_info()
        self.env = dict(env) if env is not None else env_fingerprint()
        self.seed = seed
        self.wall_s = None if wall_s is None else float(wall_s)
        self.stage_times = {str(k): float(v)
                            for k, v in (stage_times or {}).items()}
        self.stage_calls = {str(k): int(v)
                            for k, v in (stage_calls or {}).items()}
        self.final_accuracy = (None if final_accuracy is None
                               else float(final_accuracy))
        self.test_accuracy = (None if test_accuracy is None
                              else float(test_accuracy))
        self.history = {key: [float(v) for v in values]
                        for key, values in (history or {}).items()}
        self.guards = {str(k): float(v) for k, v in (guards or {}).items()}
        self.metrics = dict(metrics or {})
        self.diagnostics = dict(diagnostics or {})
        #: Unknown keys read from disk (schema evolution; round-tripped).
        self.extra = dict(extra or {})

    @property
    def env_digest(self) -> str:
        """Digest of this record's environment fingerprint (see
        :func:`env_digest`)."""
        return env_digest(self.env)

    @property
    def compacted(self) -> bool:
        """Whether :meth:`RunLedger.compact` stripped this record's full
        metrics/diagnostics snapshots."""
        return bool(self.extra.get("compacted"))

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, pipeline: str,
                config: Optional[Dict[str, object]] = None,
                seed: Optional[int] = None,
                wall_s: Optional[float] = None,
                final_accuracy: Optional[float] = None,
                test_accuracy: Optional[float] = None,
                history: Optional[Dict[str, List[float]]] = None,
                diagnostics: Optional[Dict[str, object]] = None,
                registry: Optional[MetricsRegistry] = None,
                tracer: Optional[Tracer] = None,
                kind: str = "pipeline",
                **kwargs) -> "RunRecord":
        """Build a record from the live telemetry state.

        Stage wall times come from the tracer's ``stage.*`` spans
        (stage-relative self time, the same accounting as the run
        report); ``guard.*`` counters and the full metrics snapshot come
        from the registry.
        """
        registry = registry if registry is not None else get_registry()
        tracer = tracer if tracer is not None else get_tracer()
        stage_times: Dict[str, float] = {}
        stage_calls: Dict[str, int] = {}
        for row in stage_breakdown(tracer):
            stage_times[row["stage"]] = float(row["self_s"])
            stage_calls[row["stage"]] = int(row["calls"])
        snapshot = registry.snapshot()
        guards = {name: float(entry.get("value", 0.0))
                  for name, entry in snapshot.items()
                  if name.startswith("guard.")
                  and entry["type"] in ("counter", "gauge")}
        return cls(pipeline=pipeline, kind=kind, config=config, seed=seed,
                   wall_s=wall_s, stage_times=stage_times,
                   stage_calls=stage_calls, final_accuracy=final_accuracy,
                   test_accuracy=test_accuracy, history=history,
                   guards=guards, metrics=snapshot,
                   diagnostics=diagnostics, **kwargs)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form; unknown keys from :attr:`extra` are merged
        back so re-serializing a record loses nothing."""
        out: Dict[str, object] = {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "kind": self.kind,
            "pipeline": self.pipeline,
            "git": self.git,
            "config": self.config,
            "config_fingerprint": self.config_fingerprint,
            "env": self.env,
            "seed": self.seed,
            "wall_s": self.wall_s,
            "stage_times": self.stage_times,
            "stage_calls": self.stage_calls,
            "final_accuracy": self.final_accuracy,
            "test_accuracy": self.test_accuracy,
            "history": self.history,
            "guards": self.guards,
            "metrics": self.metrics,
            "diagnostics": self.diagnostics,
        }
        for key, value in self.extra.items():
            if key not in out:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        """Inverse of :meth:`to_dict`; unknown keys are preserved in
        :attr:`extra` instead of being dropped."""
        data = dict(data)
        extra = {key: value for key, value in data.items()
                 if key not in _KNOWN_FIELDS}
        stored_fp = data.get("config_fingerprint")
        record = cls(
            pipeline=data.get("pipeline", "unknown"),
            kind=data.get("kind", "pipeline"),
            config=data.get("config") or {},
            seed=data.get("seed"),
            wall_s=data.get("wall_s"),
            stage_times=data.get("stage_times") or {},
            stage_calls=data.get("stage_calls") or {},
            final_accuracy=data.get("final_accuracy"),
            test_accuracy=data.get("test_accuracy"),
            history=data.get("history") or {},
            guards=data.get("guards") or {},
            metrics=data.get("metrics") or {},
            diagnostics=data.get("diagnostics") or {},
            git=data.get("git") or {},
            env=data.get("env") or {},
            run_id=data.get("run_id"),
            timestamp=data.get("timestamp"),
            schema_version=data.get("schema_version",
                                    LEDGER_SCHEMA_VERSION),
            extra=extra,
        )
        if stored_fp is not None:
            # Trust the stored fingerprint (the writing build may hash a
            # config superset this build does not reconstruct).
            record.config_fingerprint = stored_fp
        return record

    def __repr__(self) -> str:
        acc = ("-" if self.final_accuracy is None
               else f"{self.final_accuracy:.3f}")
        return (f"RunRecord({self.pipeline}@{self.git.get('short_sha')}, "
                f"id={self.run_id}, acc={acc}, "
                f"stages={sorted(self.stage_times)})")


# ----------------------------------------------------------------------
# RunLedger
# ----------------------------------------------------------------------
def _atomic_write_text(path: str, text: str) -> None:
    """PR-1-style atomic write: temp sibling + fsync + ``os.replace``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class RunLedger:
    """Append-only JSONL store of :class:`RunRecord`\\ s.

    One file per ledger (default ``results/ledger/runs.jsonl``); appends
    rewrite the file atomically so readers never observe a torn line.
    Malformed lines (hand edits, merges) raise on read with the line
    number rather than silently vanishing.
    """

    def __init__(self, directory: str = DEFAULT_LEDGER_DIR,
                 filename: str = "runs.jsonl"):
        self.directory = directory
        self.filename = filename

    @property
    def path(self) -> str:
        return os.path.join(self.directory, self.filename)

    # ------------------------------------------------------------------
    def append(self, record: RunRecord) -> str:
        """Atomically append one record; returns the ledger path."""
        line = json.dumps(encode_non_finite(record.to_dict()),
                          sort_keys=True, allow_nan=False)
        existing = ""
        if os.path.exists(self.path):
            with open(self.path) as handle:
                existing = handle.read()
            if existing and not existing.endswith("\n"):
                existing += "\n"
        _atomic_write_text(self.path, existing + line + "\n")
        return self.path

    def records(self) -> List[RunRecord]:
        """Every record in append order (empty list when no ledger yet)."""
        if not os.path.exists(self.path):
            return []
        out: List[RunRecord] = []
        with open(self.path) as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = decode_non_finite(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{self.path}:{line_no}: invalid "
                                     f"ledger line: {exc}") from exc
                out.append(RunRecord.from_dict(data))
        return out

    def __len__(self) -> int:
        return len(self.records())

    # ------------------------------------------------------------------
    def query(self, pipeline: Optional[str] = None,
              config_fingerprint: Optional[str] = None,
              kind: Optional[str] = None,
              env_digest: Optional[str] = None,
              limit: Optional[int] = None) -> List[RunRecord]:
        """Filtered records (append order); ``limit`` keeps the newest.

        ``env_digest`` restricts to runs whose environment fingerprint
        hashes to the given digest (see :func:`env_digest`) — the key
        the regression gate uses so cross-machine records never serve as
        perf baselines for each other.
        """
        out = [r for r in self.records()
               if (pipeline is None or r.pipeline == pipeline)
               and (config_fingerprint is None
                    or r.config_fingerprint == config_fingerprint)
               and (kind is None or r.kind == kind)
               and (env_digest is None or r.env_digest == env_digest)]
        if limit is not None:
            out = out[-limit:]
        return out

    def compact(self, window: int = 10) -> int:
        """Strip bulky snapshots from records outside the gate window.

        The regression gate only ever reads the newest ``window`` runs
        per ``(pipeline, config_fingerprint, kind)`` group, yet every
        record carries the *full* metrics registry snapshot and the HD
        diagnostics — by far the heaviest fields.  ``compact`` drops
        ``metrics`` and ``diagnostics`` from records older than the
        window (per group), keeps every scalar the gate and the series
        APIs use (``stage_times``, accuracies, ``wall_s``, ``history``,
        provenance), marks them with ``extra["compacted"] = True``, and
        rewrites the ledger atomically.

        Returns the number of records compacted in this call.  The
        operation is idempotent and append-order-preserving.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        records = self.records()
        if not records:
            return 0
        # Newest `window` run_ids per group stay intact.
        groups: Dict[tuple, List[str]] = {}
        for record in records:
            key = (record.pipeline, record.config_fingerprint, record.kind)
            groups.setdefault(key, []).append(record.run_id)
        keep = {run_id
                for ids in groups.values() for run_id in ids[-window:]}
        compacted = 0
        for record in records:
            if record.run_id in keep or record.compacted:
                continue
            if record.metrics or record.diagnostics:
                record.metrics = {}
                record.diagnostics = {}
                record.extra["compacted"] = True
                compacted += 1
        if compacted:
            lines = [json.dumps(encode_non_finite(r.to_dict()),
                                sort_keys=True, allow_nan=False)
                     for r in records]
            _atomic_write_text(self.path, "\n".join(lines) + "\n")
        return compacted

    def last(self, pipeline: Optional[str] = None,
             config_fingerprint: Optional[str] = None
             ) -> Optional[RunRecord]:
        matches = self.query(pipeline=pipeline,
                             config_fingerprint=config_fingerprint)
        return matches[-1] if matches else None

    def stage_series(self, stage: str, pipeline: Optional[str] = None,
                     config_fingerprint: Optional[str] = None
                     ) -> List[float]:
        """Historical self-times of one stage (regression baseline)."""
        return [r.stage_times[stage]
                for r in self.query(pipeline, config_fingerprint)
                if stage in r.stage_times]

    def metric_series(self, field: str, pipeline: Optional[str] = None,
                      config_fingerprint: Optional[str] = None
                      ) -> List[float]:
        """Historical values of a scalar record field (``final_accuracy``,
        ``test_accuracy``, ``wall_s``)."""
        out: List[float] = []
        for record in self.query(pipeline, config_fingerprint):
            value = getattr(record, field, None)
            if value is not None:
                out.append(float(value))
        return out


# ----------------------------------------------------------------------
# Diff / comparison
# ----------------------------------------------------------------------
def diff_records(a: RunRecord, b: RunRecord) -> Dict[str, object]:
    """Structured per-stage / accuracy delta between two records.

    Returns ``{"stages": {name: {"a", "b", "delta", "ratio"}},
    "final_accuracy": {...}, "test_accuracy": {...}, "wall_s": {...}}``;
    stages missing on either side are reported with ``None``.
    """
    def _pair(x: Optional[float], y: Optional[float]) -> Dict[str, object]:
        delta = None if x is None or y is None else y - x
        ratio = (None if not x or y is None else y / x)
        return {"a": x, "b": y, "delta": delta, "ratio": ratio}

    stages: Dict[str, Dict[str, object]] = {}
    names = [s[len("stage."):] for s in STAGE_ORDER]
    names += sorted((set(a.stage_times) | set(b.stage_times))
                    - set(names))
    for name in names:
        if name in a.stage_times or name in b.stage_times:
            stages[name] = _pair(a.stage_times.get(name),
                                 b.stage_times.get(name))
    return {
        "a_run": a.run_id, "b_run": b.run_id,
        "a_sha": a.git.get("short_sha"), "b_sha": b.git.get("short_sha"),
        "stages": stages,
        "final_accuracy": _pair(a.final_accuracy, b.final_accuracy),
        "test_accuracy": _pair(a.test_accuracy, b.test_accuracy),
        "wall_s": _pair(a.wall_s, b.wall_s),
    }


def diff_report(a: RunRecord, b: RunRecord) -> str:
    """Markdown comparison table of two runs (stages + accuracy)."""
    diff = diff_records(a, b)
    rows: List[List[object]] = []

    def _fmt(value: Optional[float]) -> object:
        return float("nan") if value is None else float(value)

    for name, pair in diff["stages"].items():
        rows.append([f"stage.{name}", _fmt(pair["a"]), _fmt(pair["b"]),
                     _fmt(pair["delta"]), _fmt(pair["ratio"])])
    for field in ("final_accuracy", "test_accuracy", "wall_s"):
        pair = diff[field]
        if pair["a"] is not None or pair["b"] is not None:
            rows.append([field, _fmt(pair["a"]), _fmt(pair["b"]),
                         _fmt(pair["delta"]), _fmt(pair["ratio"])])
    header = (f"Run diff: `{diff['a_sha']}`/{a.run_id} → "
              f"`{diff['b_sha']}`/{b.run_id}")
    table = format_table(["metric", "a", "b", "delta", "ratio"], rows)
    return f"{header}\n\n{table}"
