"""Telemetry subsystem: metrics, tracing spans, profiling, exporters.

The observability layer for the NSHD reproduction (zero dependencies
beyond numpy + stdlib, importable from every other layer):

* :mod:`~repro.telemetry.metrics` — process-global
  :class:`MetricsRegistry` of counters, gauges and streaming histograms
  (P² quantiles: p50/p95/p99 without storing samples).
* :mod:`~repro.telemetry.tracing` — nestable :class:`span` context
  managers building a hierarchical timing tree with a thread-local
  current-span stack; :func:`clock` is the shared monotonic clock.
* :mod:`~repro.telemetry.profiler` — :class:`Profiler` hooking the
  autograd engine for per-op / per-layer forward+backward time and
  FLOP/MAC estimates; near-zero overhead while disabled.
* :mod:`~repro.telemetry.exporters` — JSONL event log and
  Prometheus-style text exposition (plus parsers for round-tripping;
  NaN/±Inf survive both directions losslessly).
* :mod:`~repro.telemetry.report` — rendered console/markdown run report
  with the extract → manifold → encode → similarity → update stage
  breakdown and the top-k hottest ops.
* :mod:`~repro.telemetry.ledger` — *persistent* run records: a
  :class:`RunRecord` (git SHA, config fingerprint, env/BLAS info, seed,
  per-stage wall time, accuracies, guard counters, HD diagnostics)
  appended atomically to a JSONL :class:`RunLedger` under
  ``results/ledger/``, with query/diff APIs.
* :mod:`~repro.telemetry.regress` — rolling-baseline (median + MAD)
  perf/accuracy regression detection over the ledger, with a markdown
  comparison report (``scripts/bench_gate.py`` is the CLI gate).
* :mod:`~repro.telemetry.diagnostics` — per-epoch HD model
  introspection (class-hypervector drift, bipolar saturation fraction,
  class-confusability matrix, similarity-margin quantiles) via
  :class:`DiagnosticsCallback` riding the trainer-callback protocol.
* :mod:`~repro.telemetry.quality` — *streaming* model-quality
  monitors for the serving path: a :class:`QualityBaseline` captured
  at bundle-export time (per-feature sketches, class priors, margin
  quantiles) and a rolling-window :class:`DriftMonitor` (PSI/z-score
  feature drift, prediction skew, margin histograms, HV saturation)
  publishing ``quality.*`` metrics behind ``/driftz``.
* :mod:`~repro.telemetry.alerts` — declarative alert rules
  (threshold / absence / burn-rate) over the metrics registry with a
  pending→firing→resolved state machine, for-duration debouncing,
  ``alert.state.*`` gauges and the ``/alertz`` endpoint.

Quickstart::

    from repro import telemetry

    diag = telemetry.DiagnosticsCallback()
    with telemetry.Profiler() as prof:
        nshd.fit(x_train, y_train, epochs=5, callbacks=[diag])
    print(telemetry.render_report(profiler=prof))
    telemetry.export_jsonl("run.jsonl", profiler=prof)
    record = telemetry.RunRecord.capture(
        "nshd", config={"dim": 3000}, diagnostics=diag.summary())
    telemetry.RunLedger().append(record)
"""

from .alerts import (ALERT_KINDS, ALERT_STATES, AlertManager, AlertRule,
                     AlertRuleError, load_alert_rules)
from .diagnostics import (DiagnosticsCallback, class_drift,
                          confusability_matrix, confusability_summary,
                          margin_quantiles, matrix_health,
                          saturation_fraction)
from .exporters import (NONFINITE_KEY, collect_events, decode_non_finite,
                        encode_non_finite, export_jsonl, export_prometheus,
                        parse_prometheus, prometheus_text, read_jsonl,
                        read_trace_jsonl, render_trace_tree,
                        sanitize_metric_name, stitch_traces)
from .flight import (FlightRecorder, RequestLog, disable_request_tracing,
                     enable_request_tracing, get_flight_recorder,
                     get_request_log, tracing_env_options)
from .ledger import (DEFAULT_LEDGER_DIR, LEDGER_SCHEMA_VERSION, RunLedger,
                     RunRecord, config_fingerprint, diff_records,
                     diff_report, env_digest, env_fingerprint, git_info)
from .metrics import (DEFAULT_QUANTILES, BurnRateTracker, Counter, Gauge,
                      Histogram, MetricsRegistry, P2Quantile, get_registry,
                      set_registry, use_registry)
from .profiler import (LayerStat, OpStat, Profiler, disabled_overhead_ratio,
                       get_active_profiler)
from .quality import (BASELINE_VERSION, DEFAULT_BINS, DriftMonitor,
                      QualityBaseline, population_stability_index)
from .regress import (DEFAULT_ACCURACY_SPEC, DEFAULT_STAGE_SPEC,
                      DEFAULT_WALL_SPEC, CheckResult, GateReport, GateSpec,
                      check_series, gate_run, mad, rolling_baseline,
                      tolerance, with_threshold)
from .report import (diagnostics_section, format_table, render_report,
                     sparkline, stage_breakdown, trend_section)
from .reqtrace import (TRACE_EVENT_TYPE, SpanRecord, TraceContext, TraceHub,
                       TraceJsonlWriter, build_span_tree, get_hub,
                       new_span_id, request_span, request_tracing_active,
                       sample_trace, trace_file_for)
from .tracing import (SpanNode, Tracer, add_bytes, clock, current_span,
                      disabled_request_trace_overhead, get_tracer,
                      set_tracer, span)

__all__ = [
    # metrics
    "Counter", "Gauge", "Histogram", "P2Quantile", "MetricsRegistry",
    "BurnRateTracker", "get_registry", "set_registry", "use_registry",
    "DEFAULT_QUANTILES",
    # tracing
    "SpanNode", "Tracer", "span", "get_tracer", "set_tracer",
    "current_span", "add_bytes", "clock",
    "disabled_request_trace_overhead",
    # request tracing
    "TraceContext", "SpanRecord", "TraceHub", "TraceJsonlWriter",
    "request_span", "get_hub", "request_tracing_active", "sample_trace",
    "build_span_tree", "trace_file_for", "new_span_id", "TRACE_EVENT_TYPE",
    # flight recorder + request log
    "FlightRecorder", "RequestLog", "get_flight_recorder",
    "get_request_log", "enable_request_tracing", "disable_request_tracing",
    "tracing_env_options",
    # profiler
    "OpStat", "LayerStat", "Profiler", "get_active_profiler",
    "disabled_overhead_ratio",
    # exporters
    "collect_events", "export_jsonl", "read_jsonl", "prometheus_text",
    "export_prometheus", "parse_prometheus", "sanitize_metric_name",
    "encode_non_finite", "decode_non_finite", "NONFINITE_KEY",
    "read_trace_jsonl", "stitch_traces", "render_trace_tree",
    # report
    "format_table", "render_report", "stage_breakdown", "sparkline",
    "trend_section", "diagnostics_section",
    # ledger
    "RunRecord", "RunLedger", "LEDGER_SCHEMA_VERSION",
    "DEFAULT_LEDGER_DIR", "git_info", "env_fingerprint", "env_digest",
    "config_fingerprint", "diff_records", "diff_report",
    # regress
    "GateSpec", "CheckResult", "GateReport", "mad", "rolling_baseline",
    "tolerance", "check_series", "gate_run", "with_threshold",
    "DEFAULT_STAGE_SPEC", "DEFAULT_ACCURACY_SPEC", "DEFAULT_WALL_SPEC",
    # diagnostics
    "DiagnosticsCallback", "class_drift", "saturation_fraction",
    "confusability_matrix", "confusability_summary", "margin_quantiles",
    "matrix_health",
    # quality (streaming drift monitors)
    "QualityBaseline", "DriftMonitor", "population_stability_index",
    "BASELINE_VERSION", "DEFAULT_BINS",
    # alerts
    "AlertRule", "AlertManager", "AlertRuleError", "load_alert_rules",
    "ALERT_KINDS", "ALERT_STATES",
]
