"""Telemetry subsystem: metrics, tracing spans, profiling, exporters.

The observability layer for the NSHD reproduction (zero dependencies
beyond numpy + stdlib, importable from every other layer):

* :mod:`~repro.telemetry.metrics` — process-global
  :class:`MetricsRegistry` of counters, gauges and streaming histograms
  (P² quantiles: p50/p95/p99 without storing samples).
* :mod:`~repro.telemetry.tracing` — nestable :class:`span` context
  managers building a hierarchical timing tree with a thread-local
  current-span stack; :func:`clock` is the shared monotonic clock.
* :mod:`~repro.telemetry.profiler` — :class:`Profiler` hooking the
  autograd engine for per-op / per-layer forward+backward time and
  FLOP/MAC estimates; near-zero overhead while disabled.
* :mod:`~repro.telemetry.exporters` — JSONL event log and
  Prometheus-style text exposition (plus parsers for round-tripping).
* :mod:`~repro.telemetry.report` — rendered console/markdown run report
  with the extract → manifold → encode → similarity → update stage
  breakdown and the top-k hottest ops.

Quickstart::

    from repro import telemetry

    with telemetry.Profiler() as prof:
        nshd.fit(x_train, y_train, epochs=5)
    print(telemetry.render_report(profiler=prof))
    telemetry.export_jsonl("run.jsonl", profiler=prof)
"""

from .exporters import (collect_events, export_jsonl, export_prometheus,
                        parse_prometheus, prometheus_text, read_jsonl,
                        sanitize_metric_name)
from .metrics import (DEFAULT_QUANTILES, Counter, Gauge, Histogram,
                      MetricsRegistry, P2Quantile, get_registry,
                      set_registry, use_registry)
from .profiler import (LayerStat, OpStat, Profiler, disabled_overhead_ratio,
                       get_active_profiler)
from .report import format_table, render_report, stage_breakdown
from .tracing import (SpanNode, Tracer, add_bytes, clock, current_span,
                      get_tracer, set_tracer, span)

__all__ = [
    # metrics
    "Counter", "Gauge", "Histogram", "P2Quantile", "MetricsRegistry",
    "get_registry", "set_registry", "use_registry", "DEFAULT_QUANTILES",
    # tracing
    "SpanNode", "Tracer", "span", "get_tracer", "set_tracer",
    "current_span", "add_bytes", "clock",
    # profiler
    "OpStat", "LayerStat", "Profiler", "get_active_profiler",
    "disabled_overhead_ratio",
    # exporters
    "collect_events", "export_jsonl", "read_jsonl", "prometheus_text",
    "export_prometheus", "parse_prometheus", "sanitize_metric_name",
    # report
    "format_table", "render_report", "stage_breakdown",
]
