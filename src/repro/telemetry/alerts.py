"""Declarative alerting over the metrics registry.

A tiny Prometheus-shaped rules engine for the serving path: rules are
pure data (name + predicate over one :class:`~repro.telemetry.metrics.
MetricsRegistry` metric + a *for*-duration), evaluation is a
side-effect-free sweep, and state is an explicit machine —

    ``inactive`` → (condition holds) → ``pending``
    ``pending``  → (held for ``for_s``) → ``firing``
    ``firing``   → (condition clears)  → ``resolved``
    ``resolved`` → (condition holds again) → ``pending``

so a one-sample blip never pages (for-duration debouncing) and a
resolved alert stays visible in ``/alertz`` until the next incident.

Three predicate kinds cover the serving dashboards:

* ``threshold`` — compare a metric value (gauge/counter ``value``, or
  any histogram summary field such as ``p99``) against a bound:
  ``quality.feature.psi_max > 0.25``, ``serve.latency_ms.p99 > 50``.
* ``absence`` — fire when a metric a healthy process must publish is
  missing from the registry (or has never received a sample): a worker
  that stops reporting ``quality.samples`` is itself an incident.
* ``burn_rate`` — the multiwindow SLO pattern: fires only when BOTH
  ``<metric>.burn_fast`` and ``<metric>.burn_slow`` gauges (published
  by :class:`~repro.telemetry.metrics.BurnRateTracker` users such as
  the fleet router) exceed the threshold — burning *now* and burning
  *long enough to matter*.

The manager republishes every rule's state as a Prometheus-visible
gauge ``alert.state.<rule>`` (0 = inactive/resolved, 1 = pending,
2 = firing) plus ``alert.transitions.firing`` / ``alert.transitions.
resolved`` counters, and serves a JSON snapshot on ``/alertz``.  Rules
are TOML-configurable through the serve CLI config (``[[alerts.rules]]``
tables — see :func:`load_alert_rules` and ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import math
import operator
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .metrics import MetricsRegistry, get_registry

__all__ = ["AlertRule", "AlertRuleError", "AlertManager",
           "load_alert_rules", "ALERT_KINDS", "ALERT_STATES"]

ALERT_KINDS = ("threshold", "absence", "burn_rate")
ALERT_STATES = ("inactive", "pending", "firing", "resolved")

#: ``alert.state.<rule>`` gauge encoding (resolved reads as 0 so a
#: Prometheus ``alert_state > 0`` query means "needs attention now").
_STATE_GAUGE = {"inactive": 0.0, "pending": 1.0, "firing": 2.0,
                "resolved": 0.0}

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt, ">=": operator.ge,
    "<": operator.lt, "<=": operator.le,
    "==": operator.eq, "!=": operator.ne,
}


class AlertRuleError(ValueError):
    """An alert rule is malformed (bad kind/op/field/duration)."""


@dataclass(frozen=True)
class AlertRule:
    """One declarative alerting rule (pure data; see module docs).

    ``metric`` names the registry metric (for ``burn_rate`` it is the
    gauge *prefix*, e.g. ``fleet.slo.availability``); ``value_field``
    selects a histogram summary field (``value``/``mean``/``p50``/
    ``p95``/``p99``/...); ``for_s`` is the pending dwell before firing.
    """

    name: str
    metric: str
    kind: str = "threshold"
    op: str = ">"
    threshold: float = 0.0
    value_field: str = "value"
    for_s: float = 0.0
    severity: str = "warning"
    description: str = ""
    labels: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        if not self.name or not str(self.name).strip():
            raise AlertRuleError("alert rule needs a non-empty name")
        if not self.metric:
            raise AlertRuleError(
                f"alert rule {self.name!r} needs a metric")
        if self.kind not in ALERT_KINDS:
            raise AlertRuleError(
                f"alert rule {self.name!r} has unknown kind "
                f"{self.kind!r} (expected one of {ALERT_KINDS})")
        if self.op not in _OPS:
            raise AlertRuleError(
                f"alert rule {self.name!r} has unknown op {self.op!r} "
                f"(expected one of {sorted(_OPS)})")
        if self.for_s < 0:
            raise AlertRuleError(
                f"alert rule {self.name!r} has negative for_s")

    # ------------------------------------------------------------------
    def evaluate(self, registry: MetricsRegistry) -> tuple:
        """``(condition_holds, observed_value)`` against a registry.

        Never raises on missing/NaN data: a threshold rule over a
        metric that does not exist yet simply does not hold (absence
        is its own kind, deliberately opt-in).
        """
        if self.kind == "absence":
            if self.metric not in registry:
                return True, None
            count = self._sample_count(registry, self.metric)
            return count == 0, count
        if self.kind == "burn_rate":
            fast = self._read(registry, f"{self.metric}.burn_fast")
            slow = self._read(registry, f"{self.metric}.burn_slow")
            if fast is None or slow is None:
                return False, fast
            compare = _OPS[self.op]
            return (compare(fast, self.threshold)
                    and compare(slow, self.threshold)), max(fast, slow)
        value = self._read(registry, self.metric)
        if value is None or math.isnan(value):
            return False, value
        return _OPS[self.op](value, self.threshold), value

    def _read(self, registry: MetricsRegistry,
              name: str) -> Optional[float]:
        if name not in registry:
            return None
        summary = registry.get(name).summary()
        value = summary.get(self.value_field
                            if self.kind != "burn_rate" else "value")
        if not isinstance(value, (int, float)):
            return None
        return float(value)

    @staticmethod
    def _sample_count(registry: MetricsRegistry, name: str) -> float:
        metric = registry.get(name)
        if getattr(metric, "kind", None) == "histogram":
            return float(metric.count)
        return 1.0  # counters/gauges exist ⇒ something published them

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "metric": self.metric,
                "kind": self.kind, "op": self.op,
                "threshold": self.threshold,
                "value_field": self.value_field, "for_s": self.for_s,
                "severity": self.severity,
                "description": self.description,
                "labels": dict(self.labels)}


def load_alert_rules(rows: List[Dict[str, Any]]) -> List[AlertRule]:
    """``[[alerts.rules]]`` TOML tables → validated :class:`AlertRule`s.

    Each row maps 1:1 onto the dataclass fields (``field`` is accepted
    as an alias of ``value_field`` to read naturally in TOML).  Unknown
    keys and duplicate names raise :class:`AlertRuleError` so config
    typos fail at startup, not silently at page time.
    """
    known = {"name", "metric", "kind", "op", "threshold", "value_field",
             "field", "for_s", "severity", "description", "labels"}
    rules: List[AlertRule] = []
    seen = set()
    for row in rows or []:
        if not isinstance(row, dict):
            raise AlertRuleError(
                f"alert rule must be a table, got {type(row).__name__}")
        unknown = set(row) - known
        if unknown:
            raise AlertRuleError(
                f"alert rule {row.get('name', '?')!r} has unknown "
                f"key(s) {sorted(unknown)}")
        data = dict(row)
        if "field" in data:
            data["value_field"] = data.pop("field")
        if "threshold" in data:
            data["threshold"] = float(data["threshold"])
        if "for_s" in data:
            data["for_s"] = float(data["for_s"])
        rule = AlertRule(**data)
        if rule.name in seen:
            raise AlertRuleError(f"duplicate alert rule {rule.name!r}")
        seen.add(rule.name)
        rules.append(rule)
    return rules


class _RuleState:
    """Mutable evaluation state of one rule."""

    __slots__ = ("rule", "state", "since", "pending_since", "fired_at",
                 "resolved_at", "fire_count", "last_value")

    def __init__(self, rule: AlertRule):
        self.rule = rule
        self.state = "inactive"
        self.since: Optional[float] = None
        self.pending_since: Optional[float] = None
        self.fired_at: Optional[float] = None
        self.resolved_at: Optional[float] = None
        self.fire_count = 0
        self.last_value: Optional[float] = None

    def snapshot(self) -> Dict[str, Any]:
        return {"rule": self.rule.to_dict(), "state": self.state,
                "since": self.since, "fired_at": self.fired_at,
                "resolved_at": self.resolved_at,
                "fire_count": self.fire_count,
                "last_value": self.last_value}


class AlertManager:
    """Evaluate alert rules against a registry; track state machines.

    Call :meth:`evaluate` on demand (the ``/alertz`` handler does) or
    :meth:`start` a background evaluator thread (the model server
    does).  Transition events are returned from :meth:`evaluate` and
    kept in a bounded recent-history ring for the snapshot.
    """

    def __init__(self, rules: List[AlertRule],
                 registry: Optional[MetricsRegistry] = None,
                 clock: Callable[[], float] = time.monotonic,
                 history: int = 64):
        names = [rule.name for rule in rules]
        if len(names) != len(set(names)):
            raise AlertRuleError("duplicate alert rule names")
        self.rules = list(rules)
        self.registry = registry
        self._clock = clock
        self._states = {rule.name: _RuleState(rule) for rule in rules}
        self._history: List[Dict[str, Any]] = []
        self._history_cap = int(history)
        self.evaluations = 0
        self.last_evaluated_at: Optional[float] = None
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None \
            else get_registry()

    def evaluate(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """One sweep over every rule; returns the transition events.

        Each event is ``{"rule", "from", "to", "value", "at"}``.  The
        ``alert.state.<rule>`` gauges are refreshed whether or not
        anything transitioned.
        """
        now = self._clock() if now is None else float(now)
        registry = self._registry()
        transitions: List[Dict[str, Any]] = []
        with self._lock:
            self.evaluations += 1
            self.last_evaluated_at = now
            for status in self._states.values():
                condition, value = status.rule.evaluate(registry)
                status.last_value = value
                before = status.state
                if condition:
                    if status.state in ("inactive", "resolved"):
                        status.state = "pending"
                        status.pending_since = now
                        status.since = now
                    if status.state == "pending" and \
                            now - status.pending_since \
                            >= status.rule.for_s:
                        status.state = "firing"
                        status.fired_at = now
                        status.fire_count += 1
                        registry.inc("alert.transitions.firing")
                else:
                    if status.state == "firing":
                        status.state = "resolved"
                        status.resolved_at = now
                        status.since = now
                        registry.inc("alert.transitions.resolved")
                    elif status.state == "pending":
                        status.state = "inactive"
                        status.since = now
                if status.state != before:
                    transitions.append(
                        {"rule": status.rule.name, "from": before,
                         "to": status.state, "value": value, "at": now})
                registry.set_gauge(f"alert.state.{status.rule.name}",
                                   _STATE_GAUGE[status.state])
            self._history.extend(transitions)
            if len(self._history) > self._history_cap:
                self._history = self._history[-self._history_cap:]
        return transitions

    # ------------------------------------------------------------------
    def state(self, name: str) -> str:
        with self._lock:
            return self._states[name].state

    def firing(self) -> List[str]:
        with self._lock:
            return sorted(name for name, status in self._states.items()
                          if status.state == "firing")

    def snapshot(self) -> Dict[str, Any]:
        """``/alertz`` payload."""
        with self._lock:
            rules = [self._states[rule.name].snapshot()
                     for rule in self.rules]
            history = list(self._history)
            return {
                "enabled": True,
                "rules": rules,
                "firing": sorted(
                    status["rule"]["name"] for status in rules
                    if status["state"] == "firing"),
                "evaluations": self.evaluations,
                "last_evaluated_at": self.last_evaluated_at,
                "transitions": history,
            }

    # ------------------------------------------------------------------
    def start(self, interval_s: float = 1.0) -> "AlertManager":
        """Evaluate periodically on a daemon thread (fluent)."""
        if self._thread is not None:
            raise RuntimeError("alert evaluator already running")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.evaluate()
                except Exception:
                    # An evaluator crash must never take the serving
                    # process down; the next tick tries again.
                    self._registry().inc("alert.evaluator_errors")

        self._thread = threading.Thread(target=_loop,
                                        name="alert-evaluator",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __repr__(self) -> str:
        return (f"AlertManager({len(self.rules)} rules, "
                f"firing={self.firing()})")
