"""Hierarchical tracing spans: where does the wall time go?

``with span("stage.encode", nbytes=batch.nbytes): ...`` pushes a node
onto a *thread-local* span stack and accumulates (wall time, call count,
bytes processed) into a process-global span *tree* shared by all
threads.  Nested / reentrant spans simply become children, so the tree
mirrors the dynamic call structure:

    pipeline.fit
      epoch
        stage.manifold
        stage.encode
          hd.encode.random_projection
        stage.update
          stage.similarity

Every node knows its *self time* (total minus children), which is what
the stage-level breakdown in the run report uses so that nested stages
never double-count.

The clock is :func:`time.perf_counter`, exported as :func:`clock` so
other modules (e.g. per-epoch timing in the pipelines' ``history``)
share one monotonic time source with the spans.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from .reqtrace import HUB as _HUB

__all__ = ["SpanNode", "Tracer", "span", "get_tracer", "set_tracer",
           "current_span", "add_bytes", "clock",
           "disabled_request_trace_overhead"]

#: Monotonic clock shared by spans and the per-epoch history timings.
clock = time.perf_counter


class SpanNode:
    """Aggregated statistics of one position in the span tree."""

    __slots__ = ("name", "parent", "children", "calls", "total_s", "bytes")

    def __init__(self, name: str, parent: Optional["SpanNode"] = None):
        self.name = name
        self.parent = parent
        self.children: Dict[str, SpanNode] = {}
        self.calls = 0
        self.total_s = 0.0
        self.bytes = 0

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name, parent=self)
            self.children[name] = node
        return node

    @property
    def self_s(self) -> float:
        """Wall time spent in this span excluding child spans."""
        return self.total_s - sum(c.total_s for c in self.children.values())

    @property
    def path(self) -> str:
        parts: List[str] = []
        node: Optional[SpanNode] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def as_dict(self) -> Dict[str, object]:
        """Recursive plain-dict form (JSON-friendly)."""
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "bytes": self.bytes,
            "children": [child.as_dict()
                         for child in self.children.values()],
        }

    def __repr__(self) -> str:
        return (f"SpanNode({self.path or '<root>'}, calls={self.calls}, "
                f"total={self.total_s:.4f}s)")


class Tracer:
    """Owner of one span tree + the per-thread current-span stacks.

    All threads share the same tree root; each thread has its own stack,
    so concurrent spans from worker threads land as siblings without
    interleaving.  Tree mutation happens under a single lock — spans are
    batch-scale (milliseconds), so the microsecond-scale lock is noise.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.root = SpanNode("<root>")
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> List[SpanNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = [self.root]
            self._local.stack = stack
        return stack

    def current(self) -> SpanNode:
        """The innermost open span of the calling thread (or the root)."""
        return self._stack()[-1]

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop the tree.  Open spans keep recording into the old tree;
        call between runs, not mid-span."""
        with self._lock:
            self.root = SpanNode("<root>")
        self._local = threading.local()

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Collapse the tree by span *name* across all positions.

        Returns ``{name: {"calls", "total_s", "self_s", "bytes"}}`` —
        ``self_s`` sums each node's own time minus its children, so the
        values of disjoint stages add up to (at most) the root total even
        when stages nest.
        """
        out: Dict[str, Dict[str, float]] = {}
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            entry = out.setdefault(node.name, {
                "calls": 0, "total_s": 0.0, "self_s": 0.0, "bytes": 0})
            entry["calls"] += node.calls
            entry["total_s"] += node.total_s
            entry["self_s"] += node.self_s
            entry["bytes"] += node.bytes
            stack.extend(node.children.values())
        return out

    def to_events(self) -> List[Dict[str, object]]:
        """Flat list of span records (one per tree node) for exporters."""
        events: List[Dict[str, object]] = []
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            events.append({
                "type": "span",
                "path": node.path,
                "name": node.name,
                "calls": node.calls,
                "total_s": node.total_s,
                "self_s": node.self_s,
                "bytes": node.bytes,
            })
            stack.extend(node.children.values())
        events.sort(key=lambda e: e["path"])
        return events

    def render(self, max_depth: int = 6, min_total_s: float = 0.0) -> str:
        """ASCII tree of the span hierarchy with times and call counts."""
        lines = ["span tree (total_s · self_s · calls · bytes)"]

        def emit(node: SpanNode, depth: int) -> None:
            if depth > max_depth or node.total_s < min_total_s:
                return
            indent = "  " * depth
            lines.append(
                f"{indent}{node.name:<{max(1, 38 - 2 * depth)}} "
                f"{node.total_s:9.4f}s {node.self_s:9.4f}s "
                f"{node.calls:7d} {node.bytes:12d}")
            children = sorted(node.children.values(),
                              key=lambda c: -c.total_s)
            for child in children:
                emit(child, depth + 1)

        for child in sorted(self.root.children.values(),
                            key=lambda c: -c.total_s):
            emit(child, 0)
        if len(lines) == 1:
            lines.append("  (no spans recorded)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Tracer(enabled={self.enabled}, "
                f"top_spans={sorted(self.root.children)})")


class span:
    """Nestable, reentrant timing context manager.

    Parameters
    ----------
    name:
        Span label; repeated entries at the same tree position aggregate.
    nbytes:
        Bytes processed inside the span, added on exit (more can be
        attached mid-span via :meth:`add_bytes`).
    tracer:
        Defaults to the process-global tracer.
    attrs:
        Free-form attributes for the *request-trace* copy of this span
        (see below); the aggregate tree ignores them.

    A disabled tracer makes ``span`` a near-no-op (one attribute check).

    When the process request-trace hub
    (:data:`repro.telemetry.reqtrace.HUB`) is enabled and the calling
    thread is inside an active request, the span is *dual-recorded*: in
    addition to the aggregate tree it emits a per-request
    :class:`~repro.telemetry.reqtrace.SpanRecord` under the request's
    trace id.  With the hub dormant (the default) this costs one extra
    attribute check.
    """

    __slots__ = ("name", "nbytes", "tracer", "attrs", "_node", "_t0",
                 "_req")

    def __init__(self, name: str, nbytes: int = 0,
                 tracer: Optional[Tracer] = None,
                 attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.nbytes = int(nbytes)
        self.tracer = tracer
        self.attrs = attrs
        self._node: Optional[SpanNode] = None
        self._req = None

    def add_bytes(self, nbytes: int) -> None:
        self.nbytes += int(nbytes)

    def __enter__(self) -> "span":
        if _HUB.enabled:
            self._req = _HUB.enter(self.name, self.attrs)
        tracer = self.tracer or _GLOBAL_TRACER
        if not tracer.enabled:
            self._node = None
            return self
        self.tracer = tracer
        stack = tracer._stack()
        with tracer._lock:
            node = stack[-1].child(self.name)
        stack.append(node)
        self._node = node
        self._t0 = clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        req = self._req
        if req is not None:
            self._req = None
            _HUB.finish(req, exc)
        node = self._node
        if node is None:
            return
        elapsed = clock() - self._t0
        tracer = self.tracer
        stack = tracer._stack()
        # Pop back to this span's parent even if inner spans leaked.
        while stack[-1] is not node and len(stack) > 1:
            stack.pop()
        if stack[-1] is node:
            stack.pop()
        with tracer._lock:
            node.calls += 1
            node.total_s += elapsed
            node.bytes += self.nbytes
        self._node = None


# ----------------------------------------------------------------------
# Process-global tracer
# ----------------------------------------------------------------------
_GLOBAL_TRACER = Tracer(enabled=True)


def get_tracer() -> Tracer:
    """The process-global tracer used by the built-in instrumentation."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer; returns the previous one."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


def current_span() -> SpanNode:
    """The calling thread's innermost open span node (or the root)."""
    return _GLOBAL_TRACER.current()


def add_bytes(nbytes: int) -> None:
    """Attribute processed bytes to the innermost open span."""
    tracer = _GLOBAL_TRACER
    if not tracer.enabled:
        return
    node = tracer.current()
    if node.parent is None:
        return  # no open span
    with tracer._lock:
        node.bytes += int(nbytes)


# ----------------------------------------------------------------------
# Dormant request-tracing overhead probe
# ----------------------------------------------------------------------
class _BaselineSpan:
    """The pre-request-tracing :class:`span` (no hub hook).

    Kept verbatim as the baseline for
    :func:`disabled_request_trace_overhead`: the measured ratio is
    exactly the cost the dormant hub check adds to every aggregate span
    on the serving hot path.
    """

    __slots__ = ("name", "nbytes", "tracer", "_node", "_t0")

    def __init__(self, name: str, nbytes: int = 0,
                 tracer: Optional[Tracer] = None):
        self.name = name
        self.nbytes = int(nbytes)
        self.tracer = tracer
        self._node: Optional[SpanNode] = None

    def __enter__(self) -> "_BaselineSpan":
        tracer = self.tracer or _GLOBAL_TRACER
        if not tracer.enabled:
            self._node = None
            return self
        self.tracer = tracer
        stack = tracer._stack()
        with tracer._lock:
            node = stack[-1].child(self.name)
        stack.append(node)
        self._node = node
        self._t0 = clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        node = self._node
        if node is None:
            return
        elapsed = clock() - self._t0
        tracer = self.tracer
        stack = tracer._stack()
        while stack[-1] is not node and len(stack) > 1:
            stack.pop()
        if stack[-1] is node:
            stack.pop()
        with tracer._lock:
            node.calls += 1
            node.total_s += elapsed
            node.bytes += self.nbytes
        self._node = None


def disabled_request_trace_overhead(iters: int = 20000,
                                    repeats: int = 5) -> float:
    """Span cost with the dormant hub hook relative to the baseline span.

    Times ``iters`` empty ``with span(...)`` bodies (aggregate tracer
    enabled — the realistic serving configuration) against the same
    loop over the hook-free :class:`_BaselineSpan`, with the
    request-trace hub forced dormant.  Hooked and baseline repeats are
    *interleaved* so both sample the same scheduler/frequency noise,
    and the min over repeats is taken per class — noise can only
    inflate a timing, never deflate it.  The serving overhead gate
    (``scripts/check_trace.sh``) requires the best of a few calls to
    stay under 1.05, mirroring the profiler's
    :func:`~repro.telemetry.profiler.disabled_overhead_ratio` gate.
    """
    tracer = Tracer(enabled=True)

    def time_once(span_cls) -> float:
        t0 = clock()
        for _ in range(iters):
            with span_cls("overhead.probe", tracer=tracer):
                pass
        return clock() - t0

    was_enabled = _HUB.enabled
    _HUB.enabled = False
    try:
        time_once(span)  # warmup (bytecode/alloc caches)
        time_once(_BaselineSpan)
        hooked = baseline = float("inf")
        for _ in range(repeats):
            hooked = min(hooked, time_once(span))
            baseline = min(baseline, time_once(_BaselineSpan))
    finally:
        _HUB.enabled = was_enabled
    return hooked / baseline if baseline > 0 else 1.0
