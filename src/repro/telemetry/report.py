"""Rendered run reports: console/markdown view of one profiled run.

Pulls the three telemetry sources together — metrics registry, span
tree, profiler — into a single markdown document with:

* a stage-level wall-time breakdown (``stage.*`` spans, *self* time so
  nested stages never double-count);
* the top-k hottest autograd ops (forward + backward time, FLOPs);
* per-layer forward costs;
* a metrics summary table (counters, gauges, histogram quantiles);
* cross-run **sparkline trends** from the run ledger
  (:meth:`~repro.telemetry.ledger.RunLedger.stage_series` /
  :meth:`~repro.telemetry.ledger.RunLedger.metric_series`) when a ledger
  is passed;
* per-epoch HD drift / saturation trends from
  ``DiagnosticsCallback.summary()`` when diagnostics are passed;
* the raw span tree for drill-down.

``scripts/profile_run.py`` prints this to the console and writes it next
to the JSONL/Prometheus exports.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from .metrics import MetricsRegistry, get_registry
from .tracing import Tracer, get_tracer

__all__ = ["format_table", "stage_breakdown", "sparkline",
           "trend_section", "diagnostics_section", "render_report"]

#: Canonical pipeline stage order for the breakdown table (paper Fig. 5's
#: extract → manifold → encode → similarity → update decomposition).
STAGE_ORDER = ("stage.extract", "stage.manifold", "stage.encode",
               "stage.similarity", "stage.update")


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-markdown table with right-aligned numeric columns."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [max(len(str(h)), *(len(r[i]) for r in rendered))
              if rendered else len(str(h))
              for i, h in enumerate(headers)]
    numeric = [all(_is_numeric(row[i]) for row in rows) if rows else False
               for i in range(len(headers))]

    def line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i]
                         else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    sep = "|" + "|".join(
        ("-" * (w + 1) + ":") if numeric[i] else ("-" * (w + 2))
        for i, w in enumerate(widths)) + "|"
    out = [line([str(h) for h in headers]), sep]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value != 0 and abs(value) < 1e-3:
            return f"{value:.2e}"
        return f"{value:.4f}" if abs(value) < 100 else f"{value:,.1f}"
    return str(value)


def _nested_stage_total(node) -> float:
    """Total time of the *nearest* ``stage.*`` descendants of ``node``.

    Non-stage children are traversed transparently so e.g. the
    ``hd.encode.*`` span nested inside ``stage.encode`` rolls up into its
    enclosing stage rather than hollowing it out, while a stage nested in
    a stage (``stage.similarity`` inside ``stage.update``) is subtracted
    exactly once.
    """
    total = 0.0
    for child in node.children.values():
        if child.name.startswith("stage."):
            total += child.total_s
        else:
            total += _nested_stage_total(child)
    return total


def stage_breakdown(tracer: Optional[Tracer] = None
                    ) -> List[Dict[str, object]]:
    """Per-stage wall-time table data from the ``stage.*`` spans.

    Uses stage-relative *self* time: each stage's time minus the time of
    stages nested inside it (non-stage helper spans stay attributed to
    their enclosing stage), so e.g. ``stage.similarity`` nested inside
    ``stage.update`` is counted once.  Percentages are of the sum of all
    stage self-times.
    """
    tracer = tracer if tracer is not None else get_tracer()
    stages: Dict[str, Dict[str, float]] = {}
    stack = list(tracer.root.children.values())
    while stack:
        node = stack.pop()
        if node.name.startswith("stage."):
            entry = stages.setdefault(node.name, {
                "calls": 0, "total_s": 0.0, "self_s": 0.0, "bytes": 0})
            entry["calls"] += node.calls
            entry["total_s"] += node.total_s
            entry["self_s"] += node.total_s - _nested_stage_total(node)
            entry["bytes"] += node.bytes
        stack.extend(node.children.values())
    total = sum(stats["self_s"] for stats in stages.values()) or 1.0
    ordered = [name for name in STAGE_ORDER if name in stages]
    ordered += sorted(name for name in stages if name not in STAGE_ORDER)
    rows = []
    for name in ordered:
        stats = stages[name]
        rows.append({
            "stage": name[len("stage."):],
            "calls": int(stats["calls"]),
            "self_s": stats["self_s"],
            "total_s": stats["total_s"],
            "share": stats["self_s"] / total,
            "bytes": int(stats["bytes"]),
        })
    return rows


#: Glyph ramp for :func:`sparkline` (eight block heights).
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: Placeholder glyph for non-finite points inside a sparkline.
_SPARK_GAP = "·"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a numeric series as a unicode block sparkline.

    The series is min-max scaled onto the eight block glyphs ``▁..█``;
    non-finite points render as ``·`` without poisoning the scale, and a
    constant series renders flat at mid-height (no fake trend).  When
    ``width`` is given only the **newest** ``width`` points are drawn —
    the report cares about where a series is heading, not its ancient
    history.
    """
    vals = [float(v) for v in values]
    if width is not None and width > 0 and len(vals) > width:
        vals = vals[-width:]
    if not vals:
        return ""
    finite = [v for v in vals if math.isfinite(v)]
    if not finite:
        return _SPARK_GAP * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in vals:
        if not math.isfinite(v):
            out.append(_SPARK_GAP)
        elif span <= 0.0:
            out.append(_SPARK_BLOCKS[len(_SPARK_BLOCKS) // 2])
        else:
            idx = int((v - lo) / span * (len(_SPARK_BLOCKS) - 1) + 0.5)
            out.append(_SPARK_BLOCKS[idx])
    return "".join(out)


def _series_row(name: str, series: Sequence[float],
                width: int) -> List[object]:
    delta = (series[-1] - series[-2] if len(series) >= 2 else math.nan)
    return [name, len(series), float(series[-1]), float(delta),
            sparkline(series, width)]


def trend_section(ledger, pipeline: Optional[str] = None,
                  config_fingerprint: Optional[str] = None,
                  fields: Sequence[str] = ("final_accuracy",
                                           "test_accuracy", "wall_s"),
                  width: int = 32) -> Optional[str]:
    """Cross-run sparkline table from a :class:`RunLedger`.

    One row per non-empty series: every canonical stage's historical
    self-time (:meth:`RunLedger.stage_series`) plus the scalar record
    fields (:meth:`RunLedger.metric_series`).  ``delta`` is last-minus-
    previous so a regression is visible without reading the glyphs.
    Returns ``None`` when the ledger has no matching series — the report
    simply omits the section instead of rendering an empty table.
    """
    rows: List[List[object]] = []
    for span_name in STAGE_ORDER:
        stage = span_name[len("stage."):]
        series = ledger.stage_series(stage, pipeline, config_fingerprint)
        if series:
            rows.append(_series_row(span_name, series, width))
    for field in fields:
        series = ledger.metric_series(field, pipeline, config_fingerprint)
        if series:
            rows.append(_series_row(field, series, width))
    if not rows:
        return None
    return format_table(["series", "runs", "last", "delta", "trend"], rows)


def diagnostics_section(diagnostics: Dict[str, object],
                        width: int = 32) -> Optional[str]:
    """Per-epoch HD drift / saturation sparkline table.

    Takes a ``DiagnosticsCallback.summary()`` dict and renders one row
    per tracked signal over ``per_epoch``: class-matrix drift (total and
    relative), saturation fraction, max off-diagonal confusability and
    train accuracy.  Returns ``None`` when there are no per-epoch
    records (e.g. a bare predict-only run).
    """
    per_epoch = list(diagnostics.get("per_epoch") or [])
    if not per_epoch:
        return None

    def _get(extract) -> List[float]:
        out = []
        for record in per_epoch:
            try:
                value = extract(record)
            except (KeyError, TypeError):
                value = None
            out.append(float(value) if isinstance(value, (int, float))
                       and not isinstance(value, bool) else math.nan)
        return out

    signals = [
        ("drift.total", _get(lambda r: r["drift"]["total"])),
        ("drift.relative", _get(lambda r: r["drift"]["relative"])),
        ("saturation_fraction", _get(lambda r: r["saturation_fraction"])),
        ("confusability.max",
         _get(lambda r: r["confusability"]["off_diag_max"])),
        ("train_acc", _get(lambda r: r.get("train_acc"))),
    ]
    rows: List[List[object]] = []
    for name, series in signals:
        if all(math.isnan(v) for v in series):
            continue
        finite = [v for v in series if math.isfinite(v)]
        rows.append([name, len(series),
                     finite[0] if finite else math.nan,
                     finite[-1] if finite else math.nan,
                     sparkline(series, width)])
    if not rows:
        return None
    return format_table(["signal", "epochs", "first", "last", "trend"],
                        rows)


def render_report(registry: Optional[MetricsRegistry] = None,
                  tracer: Optional[Tracer] = None,
                  profiler=None,
                  top_k: int = 10,
                  title: str = "Telemetry run report",
                  ledger=None,
                  pipeline: Optional[str] = None,
                  config_fingerprint: Optional[str] = None,
                  diagnostics: Optional[Dict[str, object]] = None) -> str:
    """Assemble the full markdown run report.

    ``ledger`` (a :class:`repro.telemetry.ledger.RunLedger`) adds a
    cross-run sparkline trend section (optionally filtered by
    ``pipeline`` / ``config_fingerprint``); ``diagnostics`` (a
    ``DiagnosticsCallback.summary()`` dict) adds the per-epoch HD
    drift/saturation trend section.  Both are optional and omitted from
    the document when empty, so existing callers are unaffected.
    """
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    sections: List[str] = [f"# {title}", ""]

    # ------------------------------------------------------------------
    stages = stage_breakdown(tracer)
    sections.append("## Stage-level time breakdown")
    sections.append("")
    if stages:
        sections.append(format_table(
            ["stage", "calls", "self_s", "total_s", "share", "MB"],
            [[s["stage"], s["calls"], s["self_s"], s["total_s"],
              f"{100 * s['share']:.1f}%", s["bytes"] / 1e6]
             for s in stages]))
    else:
        sections.append("(no `stage.*` spans recorded)")
    sections.append("")

    # ------------------------------------------------------------------
    if profiler is not None:
        sections.append(f"## Top-{top_k} hottest autograd ops")
        sections.append("")
        ops = profiler.top_ops(top_k)
        if ops:
            sections.append(format_table(
                ["op", "calls", "fwd_s", "bwd_s", "total_s", "GFLOP", "MB"],
                [[o.name, o.calls, o.forward_s, o.backward_s, o.total_s,
                  o.flops / 1e9, o.bytes / 1e6] for o in ops]))
        else:
            sections.append("(no ops recorded — was the profiler enabled?)")
        sections.append("")

        layers = profiler.top_layers(top_k)
        if layers:
            sections.append("## Per-layer forward cost")
            sections.append("")
            sections.append(format_table(
                ["layer", "calls", "fwd_s", "MMAC", "params"],
                [[l.name, l.calls, l.forward_s, l.macs / 1e6, l.params]
                 for l in layers]))
            sections.append("")

    # ------------------------------------------------------------------
    snapshot = registry.snapshot()
    if snapshot:
        sections.append("## Metrics")
        sections.append("")
        rows = []
        for name, entry in snapshot.items():
            if entry["type"] in ("counter", "gauge"):
                rows.append([name, entry["type"], entry["value"], "-", "-",
                             "-"])
            else:
                rows.append([name, "histogram", entry.get("mean", math.nan),
                             entry.get("p50", math.nan),
                             entry.get("p95", math.nan),
                             int(entry.get("count", 0))])
        sections.append(format_table(
            ["metric", "type", "value/mean", "p50", "p95", "count"], rows))
        sections.append("")

    # ------------------------------------------------------------------
    if ledger is not None:
        trends = trend_section(ledger, pipeline=pipeline,
                               config_fingerprint=config_fingerprint)
        if trends is not None:
            scope = pipeline if pipeline else "all pipelines"
            sections.append(f"## Ledger trends ({scope}, oldest → newest)")
            sections.append("")
            sections.append(trends)
            sections.append("")

    if diagnostics is not None:
        diag = diagnostics_section(diagnostics)
        if diag is not None:
            sections.append("## HD diagnostics (per-epoch)")
            sections.append("")
            sections.append(diag)
            sections.append("")

    # ------------------------------------------------------------------
    sections.append("## Span tree")
    sections.append("")
    sections.append("```")
    sections.append(tracer.render())
    sections.append("```")
    sections.append("")
    return "\n".join(sections)
