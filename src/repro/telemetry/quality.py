"""Streaming model-quality telemetry: training baselines + drift monitors.

The serving fleet's latency/availability observability (spans, burn
rates, request traces) cannot see the one failure mode unique to ML
serving: a bundle that keeps answering **fast and 200** while the input
distribution has walked away from what it was trained on.  This module
turns the train-time introspection ideas of
:mod:`~repro.telemetry.diagnostics` (drift, saturation, margins) into
*production* monitors that compare live traffic against a baseline
frozen at export time:

* :class:`QualityBaseline` — a compact, JSON-serializable sketch of the
  training distribution captured by
  :meth:`repro.serve.bundle.ModelBundle.from_pipeline`: per-feature
  mean/std and decile bin edges (for PSI), class priors, and train-time
  margin/confidence quantiles.  It rides in the bundle manifest
  (``info["quality_baseline"]``), so every serving process of that
  bundle agrees on what "normal" looks like without coordination.
* :class:`DriftMonitor` — cheap rolling-window statistics over the live
  request stream, published as ``quality.*`` metrics and served raw on
  the worker's ``/driftz`` endpoint:

  - **feature drift**: windowed PSI per scaler-input feature against
    the baseline decile histogram (the industry-standard population
    stability index; > 0.25 is conventionally "significant shift"),
    plus the z-score of the window mean under the baseline
    mean/std (CLT-scaled, so a sustained mean shift stands out from
    sampling noise);
  - **prediction skew**: PSI of the windowed predicted-label
    distribution against the training class priors (label-skew faults,
    a stuck class, or a poisoned reload all show up here);
  - **confidence / margin**: P² streaming histograms
    (``quality.margin`` / ``quality.confidence``) of the top-1
    similarity and top1−top2 margin — eroding margins are the earliest
    symptom of a model losing separability on live traffic;
  - **encoded-HV saturation**: :func:`~repro.telemetry.diagnostics.
    saturation_fraction` of each encoded query batch — input overflow
    or a broken scaler shows up as dimensions hogging magnitude.

Everything is numpy + stdlib, O(window) memory, and vectorized so the
per-request cost stays far below the encode GEMM (the
``scripts/check_quality.sh`` gate bounds the serve-P99 overhead at
< 5%).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional

import numpy as np

from .diagnostics import saturation_fraction
from .metrics import MetricsRegistry, get_registry

__all__ = ["QualityBaseline", "DriftMonitor",
           "population_stability_index", "BASELINE_VERSION",
           "DEFAULT_BINS"]

#: Schema version of the serialized baseline (bundle manifest section).
BASELINE_VERSION = 1

#: Default number of per-feature quantile bins for the PSI sketch.
DEFAULT_BINS = 10


def population_stability_index(expected, actual,
                               epsilon: float = 1e-4) -> float:
    """PSI between two discrete distributions (counts or proportions).

    ``sum((a - e) * ln(a / e))`` over bins, with both sides normalized
    to proportions and floored at ``epsilon`` so empty bins contribute
    a large-but-finite term instead of ±inf.  Conventional reading:
    < 0.1 stable, 0.1–0.25 moderate shift, > 0.25 significant shift.
    Returns 0.0 when either side is empty (no evidence of shift).
    """
    expected = np.asarray(expected, dtype=np.float64).ravel()
    actual = np.asarray(actual, dtype=np.float64).ravel()
    if expected.shape != actual.shape:
        raise ValueError(f"shape mismatch: {expected.shape} vs "
                         f"{actual.shape}")
    e_sum, a_sum = float(expected.sum()), float(actual.sum())
    if expected.size == 0 or e_sum <= 0 or a_sum <= 0:
        return 0.0
    e = np.clip(expected / e_sum, epsilon, None)
    a = np.clip(actual / a_sum, epsilon, None)
    e /= e.sum()
    a /= a.sum()
    return float(np.sum((a - e) * np.log(a / e)))


def _psi_rows(expected: np.ndarray, actual: np.ndarray,
              epsilon: float = 1e-4) -> np.ndarray:
    """Row-wise PSI for ``(F, B)`` expected/actual count matrices."""
    e_sum = expected.sum(axis=1, keepdims=True)
    a_sum = actual.sum(axis=1, keepdims=True)
    valid = (e_sum > 0) & (a_sum > 0)
    e = np.clip(np.divide(expected, np.where(e_sum > 0, e_sum, 1.0)),
                epsilon, None)
    a = np.clip(np.divide(actual, np.where(a_sum > 0, a_sum, 1.0)),
                epsilon, None)
    e /= e.sum(axis=1, keepdims=True)
    a /= a.sum(axis=1, keepdims=True)
    psi = np.sum((a - e) * np.log(a / e), axis=1)
    return np.where(valid.ravel(), psi, 0.0)


def _quantile_dict(values: np.ndarray) -> Dict[str, float]:
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        return {}
    return {
        "mean": float(values.mean()),
        "p50": float(np.quantile(values, 0.50)),
        "p95": float(np.quantile(values, 0.95)),
        "p99": float(np.quantile(values, 0.99)),
    }


def _margins(similarities: np.ndarray) -> tuple:
    """``(confidence, margin)`` rows from an ``(n, k)`` similarity
    matrix: top-1 similarity and top1 − top2 (top1 itself when k=1)."""
    similarities = np.atleast_2d(
        np.asarray(similarities, dtype=np.float64))
    if similarities.shape[1] < 2:
        confidence = similarities[:, 0]
        return confidence, confidence.copy()
    part = np.partition(similarities, -2, axis=1)
    confidence = part[:, -1]
    return confidence, confidence - part[:, -2]


class QualityBaseline:
    """Frozen sketch of the training distribution (bundle manifest).

    Parameters
    ----------
    feature_mean, feature_std:
        ``(F,)`` per-feature moments of the raw (pre-scaler) training
        features; ``std`` is floored at a tiny epsilon so z-scores
        never divide by zero.
    bin_edges:
        ``(F, n_bins - 1)`` interior quantile edges per feature.  A
        value lands in bin ``sum(value >= edges)``.
    expected:
        ``(F, n_bins)`` training proportions per bin.  By construction
        of quantile edges these are ~uniform, but ties (discrete
        features) are captured exactly.
    class_priors:
        ``(k,)`` training label distribution.
    margin, confidence:
        ``{mean, p50, p95, p99}`` of the train-time top1−top2 margin
        and top-1 similarity (may be empty when the exporter had no
        similarity pass).
    n_samples:
        Rows the sketch was computed from.
    """

    def __init__(self, feature_mean, feature_std, bin_edges, expected,
                 class_priors, margin: Optional[Dict[str, float]] = None,
                 confidence: Optional[Dict[str, float]] = None,
                 n_samples: int = 0):
        self.feature_mean = np.asarray(feature_mean, dtype=np.float64)
        self.feature_std = np.clip(
            np.asarray(feature_std, dtype=np.float64), 1e-12, None)
        self.bin_edges = np.atleast_2d(
            np.asarray(bin_edges, dtype=np.float64))
        self.expected = np.atleast_2d(np.asarray(expected,
                                                 dtype=np.float64))
        self.class_priors = np.asarray(class_priors, dtype=np.float64)
        self.margin = dict(margin or {})
        self.confidence = dict(confidence or {})
        self.n_samples = int(n_samples)
        if self.bin_edges.shape[0] != self.feature_mean.shape[0]:
            raise ValueError(
                f"bin_edges rows {self.bin_edges.shape[0]} != features "
                f"{self.feature_mean.shape[0]}")
        if self.expected.shape != (self.num_features, self.n_bins):
            raise ValueError(
                f"expected has shape {self.expected.shape}, want "
                f"({self.num_features}, {self.n_bins})")

    # ------------------------------------------------------------------
    @property
    def num_features(self) -> int:
        return int(self.feature_mean.shape[0])

    @property
    def num_classes(self) -> int:
        return int(self.class_priors.shape[0])

    @property
    def n_bins(self) -> int:
        return int(self.bin_edges.shape[1]) + 1

    def bin_indices(self, features: np.ndarray) -> np.ndarray:
        """Per-feature bin index of each row: ``(n, F)`` ints in
        ``[0, n_bins)`` (vectorized: one broadcast comparison)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return (features[:, :, None]
                >= self.bin_edges[None, :, :]).sum(axis=2)

    # ------------------------------------------------------------------
    @classmethod
    def from_training(cls, features, labels=None,
                      num_classes: Optional[int] = None,
                      similarities=None,
                      n_bins: int = DEFAULT_BINS) -> "QualityBaseline":
        """Sketch a training set (and optionally its similarity pass).

        ``labels`` default to ``argmax(similarities)`` when a
        similarity matrix is given (the priors then describe what the
        *model* predicts on its own training data — exactly the
        distribution live predictions are compared against), and to a
        uniform prior over ``num_classes`` otherwise.
        """
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        n, _ = features.shape
        if n == 0:
            raise ValueError("cannot sketch an empty training set")
        mean = features.mean(axis=0)
        std = features.std(axis=0)
        interior = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        edges = np.quantile(features, interior, axis=0).T

        margin: Dict[str, float] = {}
        confidence: Dict[str, float] = {}
        if similarities is not None:
            conf_rows, margin_rows = _margins(similarities)
            margin = _quantile_dict(margin_rows)
            confidence = _quantile_dict(conf_rows)
            if labels is None:
                labels = np.argmax(np.atleast_2d(
                    np.asarray(similarities, dtype=np.float64)), axis=1)

        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64).ravel()
            k = int(num_classes if num_classes is not None
                    else labels.max() + 1)
            priors = np.bincount(labels, minlength=k).astype(np.float64)
            priors /= priors.sum()
        else:
            k = int(num_classes or 0)
            if k < 1:
                raise ValueError(
                    "need labels, similarities, or num_classes to set "
                    "the class priors")
            priors = np.full(k, 1.0 / k)

        baseline = cls(mean, std, edges, np.zeros((features.shape[1],
                                                   n_bins)),
                       priors, margin=margin, confidence=confidence,
                       n_samples=n)
        bins = baseline.bin_indices(features)
        expected = np.zeros((features.shape[1], n_bins))
        for b in range(n_bins):
            expected[:, b] = (bins == b).sum(axis=0)
        baseline.expected = expected / n
        return baseline

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (bundle manifest section)."""
        return {
            "version": BASELINE_VERSION,
            "n_samples": self.n_samples,
            "n_bins": self.n_bins,
            "feature_mean": [float(v) for v in self.feature_mean],
            "feature_std": [float(v) for v in self.feature_std],
            "bin_edges": [[float(v) for v in row]
                          for row in self.bin_edges],
            "expected": [[float(v) for v in row]
                         for row in self.expected],
            "class_priors": [float(v) for v in self.class_priors],
            "margin": {k: float(v) for k, v in self.margin.items()},
            "confidence": {k: float(v)
                           for k, v in self.confidence.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QualityBaseline":
        version = int(data.get("version", 0))
        if version < 1 or version > BASELINE_VERSION:
            raise ValueError(
                f"unsupported quality baseline version {version!r} "
                f"(supported: 1..{BASELINE_VERSION})")
        return cls(
            data["feature_mean"], data["feature_std"],
            data["bin_edges"], data["expected"], data["class_priors"],
            margin=data.get("margin"), confidence=data.get("confidence"),
            n_samples=int(data.get("n_samples", 0)))

    def with_class_priors(self, priors) -> "QualityBaseline":
        """Copy of the baseline with **recomputed** class priors.

        Class-incremental promotion grows the label space, and a newly
        allocated class has zero mass in the frozen training priors —
        left as-is, every prediction of the new class would read as
        permanent label skew and ``quality.prediction.psi`` would fire
        forever.  The promotion exporter therefore re-bases the priors
        (typically from the shadow model's predictions on the feedback
        validation ring) while keeping the feature sketches, which are
        label-free and still valid.  ``priors`` may be counts or
        proportions; they are normalized here.
        """
        priors = np.asarray(priors, dtype=np.float64).ravel()
        if priors.size < 1:
            raise ValueError("priors must be non-empty")
        if not np.isfinite(priors).all() or (priors < 0).any():
            raise ValueError("priors must be finite and non-negative")
        total = float(priors.sum())
        if total <= 0:
            raise ValueError("priors must have positive mass")
        return QualityBaseline(
            self.feature_mean, self.feature_std, self.bin_edges,
            self.expected, priors / total, margin=dict(self.margin),
            confidence=dict(self.confidence), n_samples=self.n_samples)

    def describe(self) -> Dict[str, Any]:
        """Summary facts (healthz / driftz headers)."""
        return {"version": BASELINE_VERSION,
                "n_samples": self.n_samples,
                "features": self.num_features,
                "classes": self.num_classes,
                "n_bins": self.n_bins,
                "has_margin": bool(self.margin)}

    def __repr__(self) -> str:
        return (f"QualityBaseline(features={self.num_features}, "
                f"classes={self.num_classes}, bins={self.n_bins}, "
                f"n={self.n_samples})")


class DriftMonitor:
    """Rolling-window drift statistics against a frozen baseline.

    Thread-safe; every serving thread calls :meth:`observe` with the
    raw features (scaler inputs), predicted labels, and optionally the
    similarity matrix and encoded hypervectors of a batch.  After each
    update the headline scalars are republished as ``quality.*``
    gauges, so the alert rules engine (and Prometheus scrapes) always
    see the current window:

    ====================================  =============================
    metric                                meaning
    ====================================  =============================
    ``quality.samples``                   counter of observed rows
    ``quality.window_fill``               window occupancy in [0, 1]
    ``quality.feature.psi_max``           worst per-feature window PSI
    ``quality.feature.psi_mean``          mean per-feature window PSI
    ``quality.feature.zscore_max``        worst |z| of the window mean
    ``quality.prediction.psi``            predicted-label PSI vs priors
    ``quality.margin`` (histogram)        live top1−top2 margin
    ``quality.confidence`` (histogram)    live top-1 similarity
    ``quality.encoded.saturation``        saturation of last batch
    ====================================  =============================

    Gauges stay 0 until ``min_samples`` rows are in the window, so a
    cold start cannot fire a drift alert off three requests.
    """

    def __init__(self, baseline: QualityBaseline, window: int = 512,
                 min_samples: int = 64,
                 registry: Optional[MetricsRegistry] = None,
                 sat_factor: float = 3.0, prefix: str = "quality"):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.baseline = baseline
        self.window = int(window)
        self.min_samples = max(1, int(min_samples))
        self.registry = registry
        self.sat_factor = float(sat_factor)
        self.prefix = str(prefix)
        f = baseline.num_features
        self._bin_ring = np.zeros((self.window, f), dtype=np.int16)
        self._feat_ring = np.zeros((self.window, f), dtype=np.float64)
        self._label_ring = np.full(self.window, -1, dtype=np.int64)
        self._counts = np.zeros((f, baseline.n_bins), dtype=np.float64)
        self._label_counts = np.zeros(baseline.num_classes,
                                      dtype=np.float64)
        self._feat_sum = np.zeros(f, dtype=np.float64)
        self._pos = 0
        self._size = 0
        self._labeled = 0
        self.samples = 0
        self._last = {"feature_psi_max": 0.0, "feature_psi_mean": 0.0,
                      "feature_zscore_max": 0.0, "prediction_psi": 0.0,
                      "saturation": 0.0}
        self._feature_psi = np.zeros(f, dtype=np.float64)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None \
            else get_registry()

    def observe(self, features, labels=None, similarities=None,
                encoded=None) -> None:
        """Fold one batch of live traffic into the window.

        ``features`` is the raw ``(n, F)`` scaler input; ``labels`` the
        served predictions; ``similarities`` the ``(n, k)`` matrix (for
        margin/confidence histograms); ``encoded`` the query
        hypervectors (for the saturation gauge).  Everything except
        ``features`` is optional.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        n = features.shape[0]
        if features.shape[1] != self.baseline.num_features:
            raise ValueError(
                f"features have {features.shape[1]} columns, baseline "
                f"sketch has {self.baseline.num_features}")
        bins = self.baseline.bin_indices(features)
        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64).ravel()
        registry = self._registry()
        arange_f = np.arange(self.baseline.num_features)

        margin_rows = conf_rows = None
        if similarities is not None:
            conf_rows, margin_rows = _margins(similarities)
        saturation = None
        if encoded is not None:
            saturation = saturation_fraction(np.asarray(encoded),
                                             self.sat_factor)

        with self._lock:
            for i in range(n):
                pos = self._pos
                if self._size == self.window:
                    # Evict the overwritten row from the running stats.
                    self._counts[arange_f, self._bin_ring[pos]] -= 1.0
                    self._feat_sum -= self._feat_ring[pos]
                    old_label = self._label_ring[pos]
                    if old_label >= 0:
                        if old_label < self._label_counts.shape[0]:
                            self._label_counts[old_label] -= 1.0
                        self._labeled -= 1
                self._bin_ring[pos] = bins[i]
                self._feat_ring[pos] = features[i]
                self._counts[arange_f, bins[i]] += 1.0
                self._feat_sum += features[i]
                label = int(labels[i]) if labels is not None \
                    and i < labels.shape[0] else -1
                self._label_ring[pos] = label
                if label >= 0:
                    if label < self._label_counts.shape[0]:
                        self._label_counts[label] += 1.0
                    self._labeled += 1
                self._pos = (pos + 1) % self.window
                if self._size < self.window:
                    self._size += 1
            self.samples += n
            if saturation is not None:
                self._last["saturation"] = float(saturation)
            self._refresh_locked()
            snapshot = dict(self._last)
            size = self._size

        registry.inc(f"{self.prefix}.samples", n)
        registry.set_gauge(f"{self.prefix}.window_fill",
                           size / self.window)
        registry.set_gauge(f"{self.prefix}.feature.psi_max",
                           snapshot["feature_psi_max"])
        registry.set_gauge(f"{self.prefix}.feature.psi_mean",
                           snapshot["feature_psi_mean"])
        registry.set_gauge(f"{self.prefix}.feature.zscore_max",
                           snapshot["feature_zscore_max"])
        registry.set_gauge(f"{self.prefix}.prediction.psi",
                           snapshot["prediction_psi"])
        if saturation is not None:
            registry.set_gauge(f"{self.prefix}.encoded.saturation",
                               float(saturation))
        if margin_rows is not None:
            registry.observe_many(f"{self.prefix}.margin", margin_rows)
            registry.observe_many(f"{self.prefix}.confidence",
                                  conf_rows)

    def _refresh_locked(self) -> None:
        """Recompute the headline scalars (caller holds the lock)."""
        if self._size < self.min_samples:
            self._feature_psi[:] = 0.0
            self._last.update(feature_psi_max=0.0, feature_psi_mean=0.0,
                              feature_zscore_max=0.0,
                              prediction_psi=0.0)
            return
        psi = _psi_rows(self.baseline.expected, self._counts)
        self._feature_psi = psi
        win_mean = self._feat_sum / self._size
        z = (win_mean - self.baseline.feature_mean) \
            / (self.baseline.feature_std / math.sqrt(self._size))
        pred_psi = 0.0
        if self._labeled >= self.min_samples:
            pred_psi = population_stability_index(
                self.baseline.class_priors, self._label_counts)
        self._last.update(
            feature_psi_max=float(psi.max()) if psi.size else 0.0,
            feature_psi_mean=float(psi.mean()) if psi.size else 0.0,
            feature_zscore_max=float(np.abs(z).max()) if z.size else 0.0,
            prediction_psi=float(pred_psi))

    # ------------------------------------------------------------------
    def top_features(self, k: int = 5) -> List[Dict[str, float]]:
        """The ``k`` features with the worst window PSI (descending)."""
        with self._lock:
            psi = self._feature_psi.copy()
        order = np.argsort(psi)[::-1][:max(0, int(k))]
        return [{"feature": int(i), "psi": float(psi[i])}
                for i in order if psi[i] > 0.0]

    def snapshot(self) -> Dict[str, Any]:
        """``/driftz`` payload: window stats + baseline facts."""
        with self._lock:
            last = dict(self._last)
            size = self._size
            labeled = self._labeled
            label_counts = self._label_counts.copy()
            samples = self.samples
        registry = self._registry()
        margins: Dict[str, Any] = {}
        confidences: Dict[str, Any] = {}
        for name, out in ((f"{self.prefix}.margin", margins),
                          (f"{self.prefix}.confidence", confidences)):
            if name in registry:
                metric = registry.get(name)
                if getattr(metric, "kind", None) == "histogram" \
                        and metric.count:
                    summary = metric.summary()
                    out.update({key: summary[key] for key in
                                ("count", "mean", "p50", "p95", "p99")
                                if key in summary})
        total_labels = float(label_counts.sum())
        return {
            "enabled": True,
            "samples": samples,
            "baseline": self.baseline.describe(),
            "window": {"capacity": self.window, "size": size,
                       "fill": size / self.window,
                       "min_samples": self.min_samples,
                       "labeled": labeled},
            "feature": {
                "psi_max": last["feature_psi_max"],
                "psi_mean": last["feature_psi_mean"],
                "zscore_max": last["feature_zscore_max"],
                "top": self.top_features(),
            },
            "prediction": {
                "psi": last["prediction_psi"],
                "priors": [float(v)
                           for v in self.baseline.class_priors],
                "window": [float(v / total_labels) if total_labels
                           else 0.0 for v in label_counts],
            },
            "margin": {"baseline": dict(self.baseline.margin),
                       "live": margins},
            "confidence": {"baseline": dict(self.baseline.confidence),
                           "live": confidences},
            "saturation": last["saturation"],
        }

    def describe(self) -> Dict[str, Any]:
        """Cheap facts for the engine's ``describe()`` / healthz."""
        with self._lock:
            return {"window": self.window,
                    "min_samples": self.min_samples,
                    "size": self._size,
                    "samples": self.samples,
                    "baseline_samples": self.baseline.n_samples}

    def reset(self) -> None:
        with self._lock:
            self._bin_ring[:] = 0
            self._feat_ring[:] = 0.0
            self._label_ring[:] = -1
            self._counts[:] = 0.0
            self._label_counts[:] = 0.0
            self._feat_sum[:] = 0.0
            self._feature_psi[:] = 0.0
            self._pos = 0
            self._size = 0
            self._labeled = 0
            self.samples = 0
            self._last = {"feature_psi_max": 0.0,
                          "feature_psi_mean": 0.0,
                          "feature_zscore_max": 0.0,
                          "prediction_psi": 0.0, "saturation": 0.0}

    def __repr__(self) -> str:
        return (f"DriftMonitor(window={self.window}, size={self._size}, "
                f"samples={self.samples})")
