"""Autograd / layer profiler: per-op and per-layer time + MAC estimates.

The nn substrate carries permanently-installed but dormant hooks:

* every :class:`repro.nn.Tensor` primitive (add, matmul, relu, sign_ste,
  …) and every heavy functional op (conv2d, pooling, batch norm) is
  wrapped so that *when a profiler is installed* the wrapper times the
  forward computation, estimates its FLOP/MAC cost, and re-wraps the op's
  backward closure to time the backward pass too;
* :class:`repro.nn.Module.__call__` reports every *leaf-module* forward
  with its wall time and the MAC/parameter cost from
  :func:`repro.hardware.macs.layer_cost` (the same accounting the Fig. 5
  analysis uses).

When no profiler is installed the wrappers reduce to a single global
``None`` check — the disabled-path overhead is asserted to stay under a
few percent by ``scripts/check_telemetry.sh`` (see
:func:`disabled_overhead_ratio`).

Usage::

    with Profiler() as prof:
        pipeline.fit(x, y)
    print(prof.format_top_ops())
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import tensor as _tensor_mod

__all__ = ["OpStat", "LayerStat", "Profiler", "get_active_profiler",
           "disabled_overhead_ratio"]

_perf = time.perf_counter

#: Ops whose FLOP count scales with the *input* size (reductions).
_REDUCTION_OPS = frozenset({"sum", "max", "mean"})

_layer_cost = None  # lazily imported from repro.hardware.macs


class OpStat:
    """Aggregated cost of one autograd op kind."""

    __slots__ = ("name", "calls", "forward_s", "backward_calls",
                 "backward_s", "bytes", "flops")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.forward_s = 0.0
        self.backward_calls = 0
        self.backward_s = 0.0
        self.bytes = 0
        self.flops = 0

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": "op",
            "name": self.name,
            "calls": self.calls,
            "forward_s": self.forward_s,
            "backward_calls": self.backward_calls,
            "backward_s": self.backward_s,
            "total_s": self.total_s,
            "bytes": self.bytes,
            "flops": self.flops,
        }


class LayerStat:
    """Aggregated cost of one leaf-module kind (Conv2d, Linear, …)."""

    __slots__ = ("name", "calls", "forward_s", "macs", "params", "bytes")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.forward_s = 0.0
        self.macs = 0
        self.params = 0
        self.bytes = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": "layer",
            "name": self.name,
            "calls": self.calls,
            "forward_s": self.forward_s,
            "macs": self.macs,
            "params": self.params,
            "bytes": self.bytes,
        }


def _estimate_flops(name: str, out_data: np.ndarray, args: tuple) -> int:
    """Cheap MAC/FLOP estimate for an autograd op.

    Follows the Fig. 5 accounting: GEMM-like ops count one MAC per
    multiply-accumulate; everything else counts one op per element.
    """
    try:
        if name == "matmul" and args:
            first = args[0]
            inner = getattr(first, "shape", (1,))[-1]
            return int(out_data.size) * int(inner)
        if name == "conv2d" and len(args) >= 2:
            weight = args[1]
            _, group_in, k, _ = weight.shape
            return int(out_data.size) * int(group_in) * int(k) * int(k)
        if name in _REDUCTION_OPS and args:
            return int(getattr(args[0], "size", out_data.size))
    except Exception:
        pass
    return int(out_data.size)


class Profiler:
    """Collects per-op / per-layer statistics while installed.

    Install with :meth:`enable` / :meth:`disable` or as a context
    manager.  Only one profiler is active at a time (module-global slot
    in ``repro.nn.tensor``); nesting raises to avoid silently dropping
    half the events.
    """

    def __init__(self):
        self.ops: Dict[str, OpStat] = {}
        self.layers: Dict[str, LayerStat] = {}
        self._lock = threading.Lock()
        self._installed = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def enable(self) -> "Profiler":
        if _tensor_mod._PROFILER is not None:
            raise RuntimeError("another Profiler is already enabled")
        _tensor_mod._PROFILER = self
        self._installed = True
        return self

    def disable(self) -> None:
        if self._installed:
            _tensor_mod._PROFILER = None
            self._installed = False

    @property
    def enabled(self) -> bool:
        return self._installed

    def __enter__(self) -> "Profiler":
        return self.enable()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.disable()

    # ------------------------------------------------------------------
    # Hook targets (called from repro.nn when installed)
    # ------------------------------------------------------------------
    def record_op(self, name: str, elapsed: float, out, args: tuple) -> None:
        """Record a forward op and arm backward timing on its output."""
        data = getattr(out, "data", None)
        with self._lock:
            stat = self.ops.get(name)
            if stat is None:
                stat = self.ops[name] = OpStat(name)
            stat.calls += 1
            stat.forward_s += elapsed
            if data is not None:
                stat.bytes += int(data.nbytes)
                stat.flops += _estimate_flops(name, data, args)

        backward = getattr(out, "_backward", None)
        if backward is None or getattr(backward, "_repro_profiled", False):
            # No tape node, or a passthrough of an already-armed tensor
            # (e.g. dropout in eval mode returning its input) — arming
            # again would double-attribute the backward time.
            return

        profiler = self

        def timed_backward(grad: np.ndarray) -> None:
            t0 = _perf()
            backward(grad)
            dt = _perf() - t0
            with profiler._lock:
                stat.backward_calls += 1
                stat.backward_s += dt

        timed_backward._repro_profiled = True  # type: ignore[attr-defined]
        out._backward = timed_backward

    def record_layer(self, module, elapsed: float, out) -> None:
        """Record a leaf-module forward (called by ``Module.__call__``)."""
        global _layer_cost
        if _layer_cost is None:
            from ..hardware.macs import layer_cost as _lc
            _layer_cost = _lc
        name = type(module).__name__
        data = getattr(out, "data", None)
        shape = getattr(out, "shape", None)
        cost = _layer_cost(module, shape)
        with self._lock:
            stat = self.layers.get(name)
            if stat is None:
                stat = self.layers[name] = LayerStat(name)
            stat.calls += 1
            stat.forward_s += elapsed
            stat.macs += cost.macs
            stat.params = max(stat.params, cost.params)
            if data is not None:
                stat.bytes += int(data.nbytes)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def top_ops(self, k: int = 10) -> List[OpStat]:
        """The ``k`` hottest ops by total (forward + backward) time."""
        return sorted(self.ops.values(), key=lambda s: -s.total_s)[:k]

    def top_layers(self, k: int = 10) -> List[LayerStat]:
        return sorted(self.layers.values(), key=lambda s: -s.forward_s)[:k]

    def total_op_time(self) -> float:
        return sum(stat.total_s for stat in self.ops.values())

    def to_events(self) -> List[Dict[str, object]]:
        events = [stat.as_dict() for stat in self.top_ops(len(self.ops))]
        events += [stat.as_dict() for stat in self.top_layers(len(self.layers))]
        return events

    def format_top_ops(self, k: int = 10) -> str:
        """Fixed-width table of the hottest autograd ops."""
        header = (f"{'op':<16}{'calls':>8}{'fwd_s':>10}{'bwd_s':>10}"
                  f"{'total_s':>10}{'GFLOP':>10}{'MB':>10}")
        lines = [header, "-" * len(header)]
        for stat in self.top_ops(k):
            lines.append(
                f"{stat.name:<16}{stat.calls:>8}{stat.forward_s:>10.4f}"
                f"{stat.backward_s:>10.4f}{stat.total_s:>10.4f}"
                f"{stat.flops / 1e9:>10.3f}{stat.bytes / 1e6:>10.1f}")
        if not self.ops:
            lines.append("(no ops recorded)")
        return "\n".join(lines)

    def format_top_layers(self, k: int = 10) -> str:
        header = (f"{'layer':<20}{'calls':>8}{'fwd_s':>10}{'MMAC':>10}"
                  f"{'params':>10}")
        lines = [header, "-" * len(header)]
        for stat in self.top_layers(k):
            lines.append(
                f"{stat.name:<20}{stat.calls:>8}{stat.forward_s:>10.4f}"
                f"{stat.macs / 1e6:>10.2f}{stat.params:>10}")
        if not self.layers:
            lines.append("(no layers recorded)")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self.ops = {}
            self.layers = {}

    def __repr__(self) -> str:
        return (f"Profiler(enabled={self._installed}, ops={len(self.ops)}, "
                f"layers={len(self.layers)})")


def get_active_profiler() -> Optional[Profiler]:
    """The currently-installed profiler, if any."""
    return _tensor_mod._PROFILER


# ----------------------------------------------------------------------
# Disabled-path overhead measurement
# ----------------------------------------------------------------------
def disabled_overhead_ratio(size: int = 128, iters: int = 200,
                            repeats: int = 7,
                            ops: Sequence[str] = ("add", "matmul", "relu")
                            ) -> float:
    """Measure the cost of the dormant profiling hooks.

    Times a mixed tensor workload through the *wrapped* op entry points
    (the shipped configuration, profiler disabled) against the unwrapped
    originals (reachable via ``__wrapped__``), using min-of-``repeats``
    to suppress scheduler noise.  Returns ``t_wrapped / t_unwrapped``;
    ``scripts/check_telemetry.sh`` asserts this stays below 1.05.
    """
    if _tensor_mod._PROFILER is not None:
        raise RuntimeError("disable the profiler before measuring the "
                           "disabled-path overhead")
    Tensor = _tensor_mod.Tensor
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(size, size)))
    b = Tensor(rng.normal(size=(size, size)))

    method_by_op = {"add": "__add__", "matmul": "__matmul__", "relu": "relu",
                    "mul": "__mul__", "sum": "sum"}
    wrapped: List[Tuple[object, tuple]] = []
    raw: List[Tuple[object, tuple]] = []
    for op in ops:
        fn = getattr(Tensor, method_by_op[op])
        original = getattr(fn, "__wrapped__", fn)
        operands = (a, b) if op in ("add", "matmul", "mul") else (a,)
        wrapped.append((fn, operands))
        raw.append((original, operands))

    def run(fns: List[Tuple[object, tuple]]) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = _perf()
            for _ in range(iters):
                for fn, operands in fns:
                    fn(*operands)
            best = min(best, _perf() - t0)
        return best

    run(raw)  # warm caches before the measured passes
    t_raw = run(raw)
    t_wrapped = run(wrapped)
    return t_wrapped / t_raw
