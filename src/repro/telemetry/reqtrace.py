"""Per-request distributed tracing: trace contexts, span records, hub.

The aggregate span tree in :mod:`~repro.telemetry.tracing` answers
"where does the wall time go *on average*" — it collapses every request
into one tree of totals.  This module answers the complementary
question: "where did the time of *this specific request* go", across
process boundaries.  It is the substrate for the serving fleet's
end-to-end tracing (router → worker → micro-batcher → stage graph):

* :class:`TraceContext` — a W3C ``traceparent``-compatible identity
  (32-hex trace id, 16-hex span id, sampled flag) that the router mints
  at the front door and forwards to the routed worker, so one request
  is one trace id end to end, including across failover retries.
* :class:`SpanRecord` — one *completed* span occurrence with wall-clock
  start (``time.time``, comparable across processes), duration, status,
  and free-form attributes.
* :class:`TraceHub` — the process-global collector: thread-local
  context stacks (so spans opened on a worker thread parent correctly),
  pluggable span sinks (JSONL writer, flight recorder) and trace-end
  sinks (fired when a request-root span closes).
* :class:`TraceJsonlWriter` — append-only per-process JSONL sink for
  *sampled* traces; :func:`repro.telemetry.stitch_traces` reassembles
  the cross-process span trees from several processes' files.

Everything here is stdlib-only and imports nothing from the rest of the
package — :mod:`~repro.telemetry.tracing` hooks into the hub, not the
other way around, keeping the telemetry layer cycle-free.

The hub is dormant by default: with ``HUB.enabled`` False a
:class:`request_span` costs one attribute check (gated <5% on the
serving hot path by ``scripts/check_trace.sh``), and :meth:`TraceHub.trace`
still yields a usable context — requests always get an id to echo even
when nothing is recorded.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "TraceContext", "SpanRecord", "TraceHub", "TraceJsonlWriter",
    "request_span", "get_hub", "request_tracing_active", "sample_trace",
    "build_span_tree", "trace_file_for", "new_span_id", "TRACE_EVENT_TYPE",
]

#: ``type`` discriminator of per-request span events in JSONL files
#: (distinct from the aggregate tracer's ``"span"`` tree nodes).
TRACE_EVENT_TYPE = "trace_span"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$")

_perf = time.perf_counter


def _rand_hex(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


def new_span_id() -> str:
    """A fresh 16-hex span/batch id (also used to tag coalesced batches)."""
    return _rand_hex(8)


def sample_trace(trace_id: str, rate: float) -> bool:
    """Deterministic head sampling: the same trace id always gets the
    same verdict, so every process that sees the id agrees without
    coordination."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return int(trace_id[-8:], 16) / float(0xFFFFFFFF) < rate


class TraceContext:
    """W3C trace-context identity of one span position in one trace."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = bool(sampled)

    # ------------------------------------------------------------------
    @classmethod
    def mint(cls, sampled: bool = True) -> "TraceContext":
        """A brand-new trace (random 128-bit trace id, 64-bit span id)."""
        return cls(_rand_hex(16), _rand_hex(8), sampled)

    def child(self) -> "TraceContext":
        """Same trace, fresh span id (the propagated parent of a hop)."""
        return TraceContext(self.trace_id, _rand_hex(8), self.sampled)

    # ------------------------------------------------------------------
    def to_traceparent(self) -> str:
        """``00-<trace_id>-<span_id>-<01|00>`` (W3C traceparent)."""
        return (f"00-{self.trace_id}-{self.span_id}-"
                f"{'01' if self.sampled else '00'}")

    @classmethod
    def parse(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; ``None`` when absent/invalid.

        Malformed headers are *ignored* rather than rejected — a bad
        client header must never fail the request, the receiver just
        mints a fresh trace.  Per the W3C spec, version ``ff`` and
        all-zero ids are invalid.
        """
        if not header:
            return None
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            return None
        if match.group("version") == "ff":
            return None
        trace_id = match.group("trace_id")
        span_id = match.group("span_id")
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            return None
        sampled = bool(int(match.group("flags"), 16) & 0x01)
        return cls(trace_id, span_id, sampled)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TraceContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id
                and self.sampled == other.sampled)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.sampled))

    def __repr__(self) -> str:
        return (f"TraceContext({self.trace_id[:8]}…/{self.span_id}, "
                f"sampled={self.sampled})")


class SpanRecord:
    """One completed span occurrence (immutable once emitted)."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "service",
                 "start_ts", "duration_s", "status", "error", "attrs",
                 "sampled")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str = "", service: str = "",
                 start_ts: float = 0.0, duration_s: float = 0.0,
                 status: str = "ok", error: Optional[str] = None,
                 attrs: Optional[Dict[str, Any]] = None,
                 sampled: bool = True):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.service = service
        self.start_ts = float(start_ts)
        self.duration_s = float(duration_s)
        self.status = status
        self.error = error
        self.attrs = attrs or {}
        self.sampled = bool(sampled)

    def to_event(self) -> Dict[str, Any]:
        event: Dict[str, Any] = {
            "type": TRACE_EVENT_TYPE,
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "service": self.service,
            "start_ts": self.start_ts,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.error:
            event["error"] = self.error
        if self.attrs:
            event["attrs"] = self.attrs
        return event

    @classmethod
    def from_event(cls, event: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(event["name"]), trace_id=str(event["trace_id"]),
            span_id=str(event["span_id"]),
            parent_id=str(event.get("parent_id", "")),
            service=str(event.get("service", "")),
            start_ts=float(event.get("start_ts", 0.0)),
            duration_s=float(event.get("duration_s", 0.0)),
            status=str(event.get("status", "ok")),
            error=event.get("error"), attrs=dict(event.get("attrs") or {}))

    def __repr__(self) -> str:
        return (f"SpanRecord({self.name}, trace={self.trace_id[:8]}…, "
                f"{self.duration_s * 1000:.2f}ms, {self.status})")


class _OpenSpan:
    """Handle for a span between :meth:`TraceHub.enter` and ``finish``."""

    __slots__ = ("name", "ctx", "parent_id", "attrs", "start_ts", "t0",
                 "status", "error")

    def __init__(self, name: str, ctx: TraceContext, parent_id: str,
                 attrs: Optional[Dict[str, Any]]):
        self.name = name
        self.ctx = ctx
        self.parent_id = parent_id
        self.attrs = dict(attrs) if attrs else {}
        self.start_ts = time.time()
        self.t0 = _perf()
        self.status = "ok"
        self.error: Optional[str] = None


class _RequestTrace:
    """Context manager for a request-*root* span (see :meth:`TraceHub.trace`).

    Always yields a usable :attr:`ctx` (so callers can echo the trace id
    on every response); only records and fires trace-end sinks when the
    hub is enabled.
    """

    __slots__ = ("hub", "name", "ctx", "parent", "attrs", "_open",
                 "status", "error")

    def __init__(self, hub: "TraceHub", name: str,
                 parent: Optional[TraceContext],
                 attrs: Optional[Dict[str, Any]]):
        self.hub = hub
        self.name = name
        self.parent = parent
        self.attrs = dict(attrs) if attrs else {}
        if parent is not None:
            self.ctx = parent.child()
            if not hub.enabled:
                self.ctx.sampled = False
        else:
            ctx = TraceContext.mint()
            ctx.sampled = (hub.enabled
                           and sample_trace(ctx.trace_id, hub.sample_rate))
            self.ctx = ctx
        self._open: Optional[_OpenSpan] = None
        self.status = "ok"
        self.error: Optional[str] = None

    # ------------------------------------------------------------------
    def set_error(self, error: str) -> None:
        self.status = "error"
        self.error = str(error)

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    @property
    def trace_id(self) -> str:
        return self.ctx.trace_id

    # ------------------------------------------------------------------
    def __enter__(self) -> "_RequestTrace":
        if self.hub.enabled:
            handle = _OpenSpan(
                self.name, self.ctx,
                self.parent.span_id if self.parent is not None else "",
                None)
            self.hub._stack().append(handle)
            self._open = handle
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        handle = self._open
        if handle is None:
            return
        self._open = None
        if exc is not None and self.status == "ok":
            self.set_error(f"{exc_type.__name__}: {exc}")
        handle.attrs.update(self.attrs)
        handle.status = self.status
        handle.error = self.error
        # finish() pops the handle off the thread-local stack (plus any
        # leaked inner spans) before closing — without the pop every
        # traced request would leave a stale _OpenSpan behind on
        # long-lived server threads.
        record = self.hub.finish(handle)
        if record is not None:
            self.hub._end_trace(record)


class TraceHub:
    """Process-global request-trace collector (one per process).

    Disabled by default; :func:`repro.telemetry.enable_request_tracing`
    configures the singleton in place (service name, sample rate, sinks)
    so module-level references cached by hot paths stay valid.
    """

    def __init__(self):
        self.enabled = False
        self.service = "proc"
        self.sample_rate = 1.0
        self._local = threading.local()
        self._sink_lock = threading.Lock()
        self._span_sinks: List[Callable[[SpanRecord], None]] = []
        self._trace_sinks: List[Callable[[SpanRecord], None]] = []

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, service: Optional[str] = None,
                  enabled: Optional[bool] = None,
                  sample_rate: Optional[float] = None) -> "TraceHub":
        if service is not None:
            self.service = str(service)
        if sample_rate is not None:
            self.sample_rate = float(sample_rate)
        if enabled is not None:
            self.enabled = bool(enabled)
        return self

    def add_span_sink(self, sink: Callable[[SpanRecord], None]) -> None:
        with self._sink_lock:
            self._span_sinks.append(sink)

    def add_trace_sink(self, sink: Callable[[SpanRecord], None]) -> None:
        """``sink(root_record)`` fires when a request-root span closes."""
        with self._sink_lock:
            self._trace_sinks.append(sink)

    def clear_sinks(self) -> None:
        with self._sink_lock:
            self._span_sinks = []
            self._trace_sinks = []

    def reset(self) -> None:
        """Back to the dormant default state (tests / run boundaries)."""
        self.enabled = False
        self.service = "proc"
        self.sample_rate = 1.0
        self.clear_sinks()
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Context stack
    # ------------------------------------------------------------------
    def _stack(self) -> List[Any]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[TraceContext]:
        """The calling thread's innermost active context (or None)."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        top = stack[-1]
        return top if isinstance(top, TraceContext) else top.ctx

    def activate(self, ctx: Optional[TraceContext]) -> "_Activation":
        """Adopt ``ctx`` as the calling thread's current context.

        This is how a batcher worker thread picks up the submitting
        request's context so engine/stage spans land in its trace.
        """
        return _Activation(self, ctx)

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def trace(self, name: str, parent: Optional[TraceContext] = None,
              attrs: Optional[Dict[str, Any]] = None) -> _RequestTrace:
        """Open a request-root span (fires trace-end sinks on close).

        Works with the hub disabled too: the returned handle still
        carries a minted (unsampled, unrecorded) :class:`TraceContext`,
        so servers can echo a request id unconditionally.
        """
        return _RequestTrace(self, name, parent, attrs)

    def enter(self, name: str,
              attrs: Optional[Dict[str, Any]] = None) -> Optional[_OpenSpan]:
        """Open a child span under the thread's current context.

        Returns ``None`` when the hub is disabled or no request is
        active on this thread — callers skip ``finish`` in that case.
        """
        if not self.enabled:
            return None
        stack = self._stack()
        if not stack:
            return None
        top = stack[-1]
        parent_ctx = top if isinstance(top, TraceContext) else top.ctx
        handle = _OpenSpan(name, parent_ctx.child(), parent_ctx.span_id,
                           attrs)
        stack.append(handle)
        return handle

    def finish(self, handle: Optional[_OpenSpan],
               exc: Optional[BaseException] = None) -> Optional[SpanRecord]:
        if handle is None:
            return None
        if exc is not None and handle.status == "ok":
            handle.status = "error"
            handle.error = f"{type(exc).__name__}: {exc}"
        stack = self._stack()
        # Pop back to the handle even if inner spans leaked.
        while stack and stack[-1] is not handle:
            stack.pop()
        if stack:
            stack.pop()
        return self._close(handle)

    def _close(self, handle: _OpenSpan) -> SpanRecord:
        record = SpanRecord(
            name=handle.name, trace_id=handle.ctx.trace_id,
            span_id=handle.ctx.span_id, parent_id=handle.parent_id,
            service=self.service, start_ts=handle.start_ts,
            duration_s=_perf() - handle.t0, status=handle.status,
            error=handle.error, attrs=handle.attrs,
            sampled=handle.ctx.sampled)
        self.emit(record)
        return record

    def record_span(self, name: str, parent: TraceContext,
                    start_ts: float, duration_s: float,
                    attrs: Optional[Dict[str, Any]] = None,
                    status: str = "ok",
                    error: Optional[str] = None) -> Optional[SpanRecord]:
        """Emit a *pre-timed* span (e.g. queue wait measured elsewhere)."""
        if not self.enabled:
            return None
        ctx = parent.child()
        record = SpanRecord(
            name=name, trace_id=ctx.trace_id, span_id=ctx.span_id,
            parent_id=parent.span_id, service=self.service,
            start_ts=start_ts, duration_s=duration_s, status=status,
            error=error, attrs=attrs, sampled=ctx.sampled)
        self.emit(record)
        return record

    def event(self, name: str,
              attrs: Optional[Dict[str, Any]] = None) -> None:
        """Zero-duration annotation under the thread's current context."""
        if not self.enabled:
            return
        parent = self.current()
        if parent is None:
            return
        self.record_span(name, parent, time.time(), 0.0, attrs)

    def emit(self, record: SpanRecord) -> None:
        with self._sink_lock:
            sinks = list(self._span_sinks)
        for sink in sinks:
            try:
                sink(record)
            except Exception:
                pass  # a broken sink must never fail the request

    def _end_trace(self, root: SpanRecord) -> None:
        with self._sink_lock:
            sinks = list(self._trace_sinks)
        for sink in sinks:
            try:
                sink(root)
            except Exception:
                pass

    def __repr__(self) -> str:
        return (f"TraceHub(service={self.service!r}, "
                f"enabled={self.enabled}, "
                f"sample_rate={self.sample_rate})")


class _Activation:
    """Context manager adopting a foreign :class:`TraceContext`."""

    __slots__ = ("hub", "ctx", "_pushed")

    def __init__(self, hub: TraceHub, ctx: Optional[TraceContext]):
        self.hub = hub
        self.ctx = ctx
        self._pushed = False

    def __enter__(self) -> "_Activation":
        if self.ctx is not None and self.hub.enabled:
            self.hub._stack().append(self.ctx)
            self._pushed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._pushed:
            return
        self._pushed = False
        stack = self.hub._stack()
        while stack and stack[-1] is not self.ctx:
            stack.pop()
        if stack:
            stack.pop()


class request_span:
    """Record a span into the active *request* trace only.

    Unlike :class:`~repro.telemetry.tracing.span` this does **not**
    touch the aggregate span tree — it is for per-request detail the
    aggregate accounting intentionally omits (e.g. per-stage spans on
    the serving path, which the ledger's stage series must not absorb).
    Near-free when the hub is dormant or no request is active.
    """

    __slots__ = ("name", "attrs", "_open")

    def __init__(self, name: str, **attrs: Any):
        self.name = name
        self.attrs = attrs or None
        self._open: Optional[_OpenSpan] = None

    def annotate(self, **attrs: Any) -> None:
        if self._open is not None:
            self._open.attrs.update(attrs)

    def set_error(self, error: str) -> None:
        if self._open is not None:
            self._open.status = "error"
            self._open.error = str(error)

    @property
    def ctx(self) -> Optional[TraceContext]:
        return self._open.ctx if self._open is not None else None

    def __enter__(self) -> "request_span":
        if HUB.enabled:
            self._open = HUB.enter(self.name, self.attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        handle = self._open
        if handle is not None:
            self._open = None
            HUB.finish(handle, exc)


# ----------------------------------------------------------------------
# Process-global hub
# ----------------------------------------------------------------------
#: The process singleton; configured in place, never swapped, so hot
#: paths can cache a module-level reference.
HUB = TraceHub()


def get_hub() -> TraceHub:
    """The process-global request-trace hub."""
    return HUB


def request_tracing_active() -> bool:
    """Whether the calling thread is inside an enabled request trace."""
    return HUB.enabled and HUB.current() is not None


# ----------------------------------------------------------------------
# JSONL sink
# ----------------------------------------------------------------------
def trace_file_for(trace_dir: str, service: str) -> str:
    """Per-process trace file path: ``trace-<service>-<pid>.jsonl``."""
    safe = re.sub(r"[^a-zA-Z0-9_.-]", "-", service) or "proc"
    return os.path.join(trace_dir, f"trace-{safe}-{os.getpid()}.jsonl")


class TraceJsonlWriter:
    """Span sink appending sampled spans to a JSONL file (thread-safe).

    One line per completed span, flushed immediately — a crashed worker
    loses at most the span being written, and the stitcher can read the
    file while the process is still serving.
    """

    def __init__(self, path: str, only_sampled: bool = True):
        self.path = path
        self.only_sampled = bool(only_sampled)
        self._lock = threading.Lock()
        self._handle = None
        self.written = 0

    def __call__(self, record: SpanRecord) -> None:
        if self.only_sampled and not record.sampled:
            return
        line = json.dumps(record.to_event(), sort_keys=True)
        with self._lock:
            if self._handle is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "a")
            self._handle.write(line + "\n")
            self._handle.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ----------------------------------------------------------------------
# Span-tree assembly (shared by the flight recorder and the stitcher)
# ----------------------------------------------------------------------
def build_span_tree(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Nest flat span events of ONE trace into parent → children trees.

    Returns the list of root nodes (spans whose parent is absent from
    ``events`` — usually exactly one per trace), each
    ``{"span": event, "children": [...]}`` with children ordered by
    start time.  Spans arriving from different processes join on
    ``parent_id``; an orphan (its parent's process never flushed)
    becomes its own root rather than being dropped.
    """
    nodes = {event["span_id"]: {"span": event, "children": []}
             for event in events}
    roots: List[Dict[str, Any]] = []
    for node in nodes.values():
        parent = nodes.get(node["span"].get("parent_id") or "")
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: n["span"].get("start_ts", 0.0))
    roots.sort(key=lambda n: n["span"].get("start_ts", 0.0))
    return roots
