"""Rolling-baseline perf/accuracy regression detection.

Given the ledger's historical series for a metric (stage wall time,
final/test accuracy, total wall time), the detector compares the current
value against a **median + MAD** tolerance band over the most recent
``window`` runs:

    tolerance = max(mad_k · 1.4826 · MAD,        # noise-scaled band
                    rel_floor · |median|,         # relative jitter floor
                    abs_floor)                    # absolute floor

* ``1.4826 · MAD`` is the consistent estimator of σ for normal noise, so
  ``mad_k`` reads like a z-score threshold but is robust to the odd
  outlier run in the baseline.
* The *floors* make the gate deterministic on near-constant baselines:
  a 3-run history of identical timings has MAD = 0, and without a floor
  every microsecond of scheduler jitter would fail the gate.

Decision rule (``direction="lower"``, i.e. timings):
``fail ⇔ current > median + tolerance``; for ``direction="higher"``
(accuracy): ``fail ⇔ current < median − tolerance``.  Fewer than
``min_history`` baseline points → status ``insufficient_history``,
which **passes** (first runs bootstrap the baseline).

:func:`gate_run` applies this per-stage and per-accuracy-metric to a
fresh :class:`~repro.telemetry.ledger.RunRecord` against a
:class:`~repro.telemetry.ledger.RunLedger`, and renders a markdown
comparison report for CI logs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from .ledger import RunLedger, RunRecord
from .report import STAGE_ORDER, format_table

__all__ = ["GateSpec", "CheckResult", "GateReport", "mad",
           "rolling_baseline", "tolerance", "check_series", "gate_run",
           "DEFAULT_STAGE_SPEC", "DEFAULT_ACCURACY_SPEC",
           "DEFAULT_WALL_SPEC", "with_threshold", "MAD_SCALE"]

#: Normal-consistency constant: ``1.4826 × MAD ≈ σ`` for Gaussian noise.
MAD_SCALE = 1.4826


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation of ``values`` (0.0 for empty input)."""
    if not len(values):
        return 0.0
    arr = np.asarray(values, dtype=np.float64)
    return float(np.median(np.abs(arr - np.median(arr))))


@dataclass(frozen=True)
class GateSpec:
    """Detector configuration for one metric family."""

    #: "lower" → smaller is better (timings); "higher" → accuracy.
    direction: str = "lower"
    #: MAD multiplier (z-score-like, on the robust σ estimate).
    mad_k: float = 5.0
    #: Relative tolerance floor as a fraction of |median|.
    rel_floor: float = 0.30
    #: Absolute tolerance floor (seconds for timings, points for acc).
    abs_floor: float = 1e-3
    #: Minimum number of baseline runs before the gate is armed.
    min_history: int = 3
    #: Rolling window: only the newest ``window`` baselines are used.
    window: int = 10

    def __post_init__(self):
        if self.direction not in ("lower", "higher"):
            raise ValueError("direction must be 'lower' or 'higher'")
        if self.mad_k < 0 or self.rel_floor < 0 or self.abs_floor < 0:
            raise ValueError("tolerance parameters must be >= 0")
        if self.min_history < 1:
            raise ValueError("min_history must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")


#: Stage wall-time gate: generous floors, CPU timing jitter is real.
DEFAULT_STAGE_SPEC = GateSpec(direction="lower", mad_k=5.0, rel_floor=0.50,
                              abs_floor=0.02, min_history=3, window=10)
#: Accuracy gate: small-sample smoke accuracies move in coarse steps.
DEFAULT_ACCURACY_SPEC = GateSpec(direction="higher", mad_k=5.0,
                                 rel_floor=0.08, abs_floor=0.03,
                                 min_history=3, window=10)
#: Total wall-clock gate.
DEFAULT_WALL_SPEC = GateSpec(direction="lower", mad_k=5.0, rel_floor=0.50,
                             abs_floor=0.25, min_history=3, window=10)


def rolling_baseline(values: Sequence[float],
                     window: int = 10) -> Dict[str, float]:
    """``{"median", "mad", "count"}`` over the newest ``window`` values."""
    tail = [float(v) for v in values][-window:]
    if not tail:
        return {"median": math.nan, "mad": math.nan, "count": 0}
    return {"median": float(np.median(tail)), "mad": mad(tail),
            "count": len(tail)}


def tolerance(values: Sequence[float], spec: GateSpec) -> float:
    """The tolerance band half-width for ``values`` under ``spec``."""
    baseline = rolling_baseline(values, spec.window)
    if baseline["count"] == 0:
        return math.nan
    return max(spec.mad_k * MAD_SCALE * baseline["mad"],
               spec.rel_floor * abs(baseline["median"]),
               spec.abs_floor)


@dataclass
class CheckResult:
    """Outcome of one metric's gate check."""

    metric: str
    status: str  # "pass" | "fail" | "insufficient_history" | "skipped"
    current: Optional[float] = None
    median: Optional[float] = None
    tolerance: Optional[float] = None
    limit: Optional[float] = None
    history: int = 0
    direction: str = "lower"

    @property
    def passed(self) -> bool:
        return self.status != "fail"

    def to_dict(self) -> Dict[str, object]:
        return {"metric": self.metric, "status": self.status,
                "current": self.current, "median": self.median,
                "tolerance": self.tolerance, "limit": self.limit,
                "history": self.history, "direction": self.direction}


def check_series(metric: str, baseline: Sequence[float], current: float,
                 spec: GateSpec) -> CheckResult:
    """Gate ``current`` against the rolling ``baseline`` under ``spec``."""
    baseline = [float(v) for v in baseline if math.isfinite(float(v))]
    current = float(current)
    if len(baseline) < spec.min_history:
        return CheckResult(metric=metric, status="insufficient_history",
                           current=current, history=len(baseline),
                           direction=spec.direction)
    stats = rolling_baseline(baseline, spec.window)
    band = tolerance(baseline, spec)
    if spec.direction == "lower":
        limit = stats["median"] + band
        failed = current > limit
    else:
        limit = stats["median"] - band
        failed = current < limit
    if not math.isfinite(current):
        # A NaN/Inf current value is always a failure once the gate is
        # armed — something upstream broke, do not let it slide.
        failed = True
    return CheckResult(metric=metric,
                       status="fail" if failed else "pass",
                       current=current, median=stats["median"],
                       tolerance=band, limit=limit,
                       history=stats["count"], direction=spec.direction)


# ----------------------------------------------------------------------
# Whole-run gate against the ledger
# ----------------------------------------------------------------------
@dataclass
class GateReport:
    """Aggregated gate outcome for one run record."""

    pipeline: str
    config_fingerprint: str
    results: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> List[CheckResult]:
        return [result for result in self.results
                if result.status == "fail"]

    def to_dict(self) -> Dict[str, object]:
        return {"pipeline": self.pipeline,
                "config_fingerprint": self.config_fingerprint,
                "passed": self.passed,
                "results": [result.to_dict() for result in self.results]}

    def to_markdown(self) -> str:
        """Markdown comparison table (baseline median vs current)."""
        rows: List[List[object]] = []
        for result in self.results:
            rows.append([
                result.metric,
                "-" if result.median is None else result.median,
                "-" if result.current is None else result.current,
                "-" if result.tolerance is None else result.tolerance,
                result.history,
                {"pass": "✅ pass", "fail": "❌ FAIL",
                 "insufficient_history": "🌱 bootstrap",
                 "skipped": "– skipped"}.get(result.status, result.status),
            ])
        verdict = "PASS" if self.passed else "FAIL"
        title = (f"### Regression gate — `{self.pipeline}` "
                 f"(config `{self.config_fingerprint}`): **{verdict}**")
        table = format_table(
            ["metric", "baseline median", "current", "tolerance",
             "n", "status"], rows)
        return f"{title}\n\n{table}"


def gate_run(ledger: RunLedger, record: RunRecord,
             stage_spec: GateSpec = DEFAULT_STAGE_SPEC,
             accuracy_spec: GateSpec = DEFAULT_ACCURACY_SPEC,
             wall_spec: GateSpec = DEFAULT_WALL_SPEC,
             stages: Optional[Sequence[str]] = None,
             match_env: bool = True) -> GateReport:
    """Gate a fresh ``record`` against the ledger's history.

    Baselines are the prior runs of the **same pipeline with the same
    config fingerprint on the same environment** (comparing a D=400
    smoke run against a D=3000 run — or a laptop run against a CI
    runner — would be meaningless).  ``match_env=True`` (default) keys
    the baseline on the record's :func:`~repro.telemetry.ledger
    .env_digest` in addition to the config fingerprint; a ledger carried
    to a new machine then bootstraps a fresh baseline
    (``insufficient_history`` passes) instead of failing on alien
    timings.  Pass ``match_env=False`` for the legacy cross-environment
    comparison.  Checks every stage present in the record (or the
    explicit ``stages``), ``final_accuracy``/``test_accuracy`` when
    present, and ``wall_s``.  Call *before* appending the record so the
    current run does not dilute its own baseline.
    """
    report = GateReport(pipeline=record.pipeline,
                        config_fingerprint=record.config_fingerprint)
    history = ledger.query(
        pipeline=record.pipeline,
        config_fingerprint=record.config_fingerprint,
        env_digest=record.env_digest if match_env else None)
    # Exclude the record itself if the caller appended first.
    history = [r for r in history if r.run_id != record.run_id]

    if stages is None:
        ordered = [s[len("stage."):] for s in STAGE_ORDER]
        stages = [s for s in ordered if s in record.stage_times]
        stages += sorted(set(record.stage_times) - set(ordered))
    for stage in stages:
        if stage not in record.stage_times:
            report.results.append(CheckResult(
                metric=f"stage.{stage}", status="skipped"))
            continue
        series = [r.stage_times[stage] for r in history
                  if stage in r.stage_times]
        report.results.append(check_series(
            f"stage.{stage}", series, record.stage_times[stage],
            stage_spec))

    for attr in ("final_accuracy", "test_accuracy"):
        current = getattr(record, attr)
        if current is None:
            continue
        series = [getattr(r, attr) for r in history
                  if getattr(r, attr) is not None]
        report.results.append(check_series(attr, series, current,
                                           accuracy_spec))

    if record.wall_s is not None:
        series = [r.wall_s for r in history if r.wall_s is not None]
        report.results.append(check_series("wall_s", series,
                                           record.wall_s, wall_spec))
    return report


def with_threshold(spec: GateSpec, **overrides) -> GateSpec:
    """Convenience: derive a spec with selected fields overridden."""
    return replace(spec, **overrides)
