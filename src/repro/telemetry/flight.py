"""Flight recorder + structured request log for the serving path.

JSONL trace export answers "show me a *sampled* request"; the flight
recorder answers the harder production question — "show me the request
that was slow / failed five seconds ago" — **without** sampling bias:

* :class:`FlightRecorder` buffers every in-flight trace's spans in
  bounded memory and, when the request-root span closes, *retains* the
  full span set for (a) every error request and (b) the slowest-N
  requests seen so far (min-heap eviction by root duration).  Everything
  else is dropped immediately, so memory stays bounded regardless of
  traffic.  Served by the ``/tracez`` debug endpoint on the server and
  router.
* :class:`RequestLog` is a bounded ring of one structured record per
  request (trace id, path, status, latency, outcome) — cheap enough to
  stay on even with span recording disabled.  Served by ``/requestz``.

:func:`enable_request_tracing` / :func:`disable_request_tracing` wire
both into the process :class:`~repro.telemetry.reqtrace.TraceHub`
singleton together with the optional JSONL writer.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .reqtrace import (HUB, SpanRecord, TraceJsonlWriter, build_span_tree,
                       trace_file_for)

__all__ = ["FlightRecorder", "RequestLog", "get_flight_recorder",
           "get_request_log", "enable_request_tracing",
           "disable_request_tracing", "tracing_env_options"]


class RequestLog:
    """Bounded ring of structured per-request records (thread-safe).

    Always on — appending a dict to a deque is cheap enough that the
    request log works even with span recording disabled, which keeps
    ``/requestz`` useful (with trace ids for correlation) at zero
    tracing overhead.
    """

    def __init__(self, maxlen: int = 512):
        self.maxlen = int(maxlen)
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=self.maxlen)
        self._lock = threading.Lock()
        self.appended = 0

    def append(self, **record: Any) -> None:
        record.setdefault("ts", time.time())
        with self._lock:
            self._ring.append(record)
            self.appended += 1

    def snapshot(self, limit: Optional[int] = None,
                 trace_id: Optional[str] = None,
                 errors_only: bool = False) -> List[Dict[str, Any]]:
        """Newest-first copy, optionally filtered."""
        with self._lock:
            records = list(self._ring)
        records.reverse()
        if trace_id is not None:
            records = [r for r in records
                       if r.get("trace_id") == trace_id]
        if errors_only:
            records = [r for r in records
                       if int(r.get("status", 0)) >= 400 or r.get("error")]
        if limit is not None:
            records = records[:int(limit)]
        return records

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


class FlightRecorder:
    """Retain full span sets for the slowest-N and all error requests.

    Plugs into the hub as both a span sink (buffer in-flight spans by
    trace id) and a trace sink (decide retention when the root closes).
    All bounds are hard: at most ``max_active`` in-flight traces are
    buffered (oldest dropped first), at most ``max_spans_per_trace``
    spans each, at most ``slowest`` + ``errors`` retained traces.
    """

    def __init__(self, slowest: int = 16, errors: int = 64,
                 max_active: int = 1024, max_spans_per_trace: int = 256):
        self.slowest = int(slowest)
        self.errors = int(errors)
        self.max_active = int(max_active)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._lock = threading.Lock()
        self._active: "Dict[str, List[SpanRecord]]" = {}
        # Min-heap of (duration, seq, trace_id): the fastest retained
        # "slow" trace is evicted first.
        self._slow_heap: List[Tuple[float, int, str]] = []
        self._error_ring: Deque[str] = deque()
        self._retained: Dict[str, Dict[str, Any]] = {}
        self._seq = 0
        self.stats: Dict[str, int] = {
            "traces_seen": 0, "spans_seen": 0, "spans_dropped": 0,
            "active_dropped": 0, "evicted": 0,
        }

    # ------------------------------------------------------------------
    # Hub sinks
    # ------------------------------------------------------------------
    def on_span(self, record: SpanRecord) -> None:
        with self._lock:
            self.stats["spans_seen"] += 1
            spans = self._active.get(record.trace_id)
            if spans is None:
                if len(self._active) >= self.max_active:
                    # Drop the oldest in-flight trace (dict is
                    # insertion-ordered) — likely leaked or huge.
                    oldest = next(iter(self._active))
                    del self._active[oldest]
                    self.stats["active_dropped"] += 1
                spans = self._active[record.trace_id] = []
            if len(spans) < self.max_spans_per_trace:
                spans.append(record)
            else:
                self.stats["spans_dropped"] += 1

    def on_trace_end(self, root: SpanRecord) -> None:
        with self._lock:
            self.stats["traces_seen"] += 1
            spans = self._active.pop(root.trace_id, [])
            prior = self._retained.get(root.trace_id)
            if prior is not None:
                # Multi-segment trace inside ONE process: an embedded
                # worker's request root closes before the router's root
                # for the same trace — merge the earlier segment's
                # spans instead of overwriting them.
                spans = prior["spans"] + spans
            if not any(s.span_id == root.span_id for s in spans):
                spans.append(root)
            reasons = set()
            if root.status == "error":
                reasons.add("error")
            if self.slowest > 0:
                if len(self._slow_heap) < self.slowest:
                    reasons.add("slow")
                elif root.duration_s > self._slow_heap[0][0]:
                    reasons.add("slow")
            prior_reasons = prior["reasons"] if prior is not None \
                else set()
            if not reasons and not prior_reasons:
                return
            # Register ring/heap bookkeeping only for reasons this
            # trace did not already hold, so a re-ended trace is never
            # double-counted against the retention budgets.
            new_reasons = reasons - prior_reasons
            self._retained[root.trace_id] = {
                "trace_id": root.trace_id, "root": root, "spans": spans,
                "reasons": reasons | prior_reasons,
            }
            if "error" in new_reasons:
                self._error_ring.append(root.trace_id)
                if len(self._error_ring) > self.errors:
                    self._drop_reason(self._error_ring.popleft(), "error")
            if "slow" in new_reasons:
                self._seq += 1
                heapq.heappush(self._slow_heap,
                               (root.duration_s, self._seq, root.trace_id))
                if len(self._slow_heap) > self.slowest:
                    _, _, evicted = heapq.heappop(self._slow_heap)
                    self._drop_reason(evicted, "slow")
            elif "slow" in prior_reasons:
                # Multi-segment re-end: the router's (longer) root closed
                # after the embedded worker's — re-key the heap entry so
                # eviction order reflects the true root duration.
                for i, (dur, seq, tid) in enumerate(self._slow_heap):
                    if tid == root.trace_id:
                        if root.duration_s > dur:
                            self._slow_heap[i] = (
                                root.duration_s, seq, tid)
                            heapq.heapify(self._slow_heap)
                        break

    def _drop_reason(self, trace_id: str, reason: str) -> None:
        entry = self._retained.get(trace_id)
        if entry is None:
            return
        entry["reasons"].discard(reason)
        if not entry["reasons"]:
            del self._retained[trace_id]
            self.stats["evicted"] += 1

    # ------------------------------------------------------------------
    # Introspection (the /tracez endpoint)
    # ------------------------------------------------------------------
    def lookup(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """Full retained trace as JSON-ready dict (None if not retained)."""
        with self._lock:
            entry = self._retained.get(trace_id)
            if entry is None:
                return None
            events = [span.to_event() for span in entry["spans"]]
            reasons = sorted(entry["reasons"])
        return {
            "trace_id": trace_id,
            "retained_for": reasons,
            "spans": events,
            "tree": build_span_tree(events),
        }

    def snapshot(self) -> Dict[str, Any]:
        """Summary of everything retained (slowest first)."""
        with self._lock:
            entries = []
            for entry in self._retained.values():
                root = entry["root"]
                entries.append({
                    "trace_id": entry["trace_id"],
                    "name": root.name,
                    "duration_ms": root.duration_s * 1000.0,
                    "status": root.status,
                    "error": root.error,
                    "start_ts": root.start_ts,
                    "spans": len(entry["spans"]),
                    "retained_for": sorted(entry["reasons"]),
                })
            active = len(self._active)
            stats = dict(self.stats)
        entries.sort(key=lambda e: -e["duration_ms"])
        return {"retained": entries, "active_traces": active,
                "stats": stats,
                "limits": {"slowest": self.slowest, "errors": self.errors,
                           "max_active": self.max_active,
                           "max_spans_per_trace":
                               self.max_spans_per_trace}}

    def retained_ids(self) -> List[str]:
        with self._lock:
            return list(self._retained)

    def clear(self) -> None:
        with self._lock:
            self._active.clear()
            self._slow_heap = []
            self._error_ring.clear()
            self._retained.clear()
            self._seq = 0
            for key in self.stats:
                self.stats[key] = 0

    def __repr__(self) -> str:
        return (f"FlightRecorder(retained={len(self._retained)}, "
                f"active={len(self._active)}, stats={self.stats})")


# ----------------------------------------------------------------------
# Process singletons + wiring
# ----------------------------------------------------------------------
_FLIGHT = FlightRecorder()
_REQUEST_LOG = RequestLog()
_WRITER: Optional[TraceJsonlWriter] = None


def get_flight_recorder() -> FlightRecorder:
    """The process-global flight recorder behind ``/tracez``."""
    return _FLIGHT


def get_request_log() -> RequestLog:
    """The process-global request log behind ``/requestz``."""
    return _REQUEST_LOG


def enable_request_tracing(service: str, sample_rate: float = 1.0,
                           trace_dir: Optional[str] = None,
                           reset: bool = True) -> FlightRecorder:
    """Turn on request tracing for this process.

    Configures the hub singleton (service name, sampling), wires the
    flight recorder as span + trace sink, and — when ``trace_dir`` is
    given — a per-process JSONL writer for sampled spans.  ``reset``
    clears previously retained traces and sinks, so repeated calls
    (tests, benchmark phases) never double-register.
    """
    global _WRITER
    hub = HUB
    if _WRITER is not None:
        _WRITER.close()
        _WRITER = None
    hub.clear_sinks()
    if reset:
        _FLIGHT.clear()
    hub.configure(service=service, sample_rate=sample_rate, enabled=True)
    hub.add_span_sink(_FLIGHT.on_span)
    hub.add_trace_sink(_FLIGHT.on_trace_end)
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        _WRITER = TraceJsonlWriter(trace_file_for(trace_dir, service))
        hub.add_span_sink(_WRITER)
    return _FLIGHT


def disable_request_tracing() -> None:
    """Back to the dormant default (flushes + closes the JSONL writer)."""
    global _WRITER
    HUB.configure(enabled=False)
    HUB.clear_sinks()
    if _WRITER is not None:
        _WRITER.close()
        _WRITER = None


def tracing_env_options() -> Dict[str, Any]:
    """Tracing settings from the environment (fleet workers inherit).

    * ``REPRO_TRACE=1`` — enable request tracing;
    * ``REPRO_TRACE_DIR=path`` — also export sampled spans as JSONL
      (implies enable);
    * ``REPRO_TRACE_SAMPLE=0.1`` — head-sampling rate (default 1.0).
    """
    trace_dir = os.environ.get("REPRO_TRACE_DIR") or None
    enabled = os.environ.get("REPRO_TRACE", "") not in ("", "0")
    try:
        sample_rate = float(os.environ.get("REPRO_TRACE_SAMPLE", "1.0"))
    except ValueError:
        sample_rate = 1.0
    return {"enabled": enabled or trace_dir is not None,
            "trace_dir": trace_dir, "sample_rate": sample_rate}
