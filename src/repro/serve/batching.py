"""Dynamic micro-batching: coalesce concurrent requests into one GEMM.

HD inference is dominated by two matrix products (projection, class
similarity); a single-sample call wastes almost all of the BLAS / bit-op
throughput.  :class:`MicroBatcher` closes that gap for a serving
process: concurrent :meth:`submit` calls are coalesced under a
condition variable until either ``max_batch_size`` samples are waiting
or the oldest has waited ``max_latency_ms``, then one worker runs the
whole batch through the engine at once.  numpy's GEMM and bitwise
kernels release the GIL, so a small worker pool overlaps batches.

Degradation is explicit rather than emergent:

* an optional :class:`repro.reliability.LoadShedder` rejects new
  requests with :class:`~repro.reliability.OverloadShedError` once queue
  depth crosses its high watermark (hysteresis; HTTP 503 upstream);
* each request carries a deadline — expired requests are *skipped* by
  the workers (their submitter gets
  :class:`~repro.reliability.DeadlineExceededError`, HTTP 504) instead
  of wasting batch slots on answers nobody is waiting for.

``shutdown()`` drains the queue gracefully: no new submits are
admitted, queued requests are answered, then the workers exit.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from ..reliability.degrade import (DeadlineExceededError, LoadShedder,
                                   OverloadShedError)
from ..telemetry import clock, get_registry, new_span_id, span
from ..telemetry.reqtrace import HUB as _HUB
from ..telemetry.reqtrace import TraceContext

__all__ = ["MicroBatcher"]


class _Request:
    """One pending sample: features in, (result | error) out.

    ``trace_ctx`` (the submitter's request-trace context) rides along so
    the dispatching worker thread can record the queue-wait and batch
    spans into the *request's* trace; ``request_id`` (its trace id) is
    attached to deadline/shed errors so a coalesced batch's failure
    names the affected request.
    """

    __slots__ = ("features", "event", "result", "error", "deadline",
                 "enqueued_at", "enqueued_ts", "trace_ctx", "request_id")

    def __init__(self, features: np.ndarray, deadline: Optional[float],
                 trace_ctx: Optional[TraceContext] = None):
        self.features = features
        self.event = threading.Event()
        self.result: Optional[int] = None
        self.error: Optional[BaseException] = None
        self.deadline = deadline
        self.enqueued_at = clock()
        self.enqueued_ts = time.time()
        self.trace_ctx = trace_ctx
        self.request_id = (trace_ctx.trace_id if trace_ctx is not None
                           else None)

    def finish(self, result: Optional[int],
               error: Optional[BaseException] = None) -> None:
        self.result = result
        self.error = error
        self.event.set()


class MicroBatcher:
    """Coalesce concurrent predict calls into engine-sized batches.

    Parameters
    ----------
    predict_fn:
        ``(n, F) -> (n,)`` batch classifier — typically
        ``engine.predict_features``.  Duck-typed: anything with that
        signature works (so :class:`repro.reliability.ResilientPipeline`
        can sit in between).  May instead return ``(labels, meta)``;
        ``meta`` is then attached to every row's result as
        ``(label, meta)`` so callers can tell which engine snapshot
        served the batch.
    max_batch_size:
        Largest batch a worker takes in one bite.
    max_latency_ms:
        Longest the *oldest* queued request waits for co-travellers
        before a partial batch is dispatched.
    workers:
        Worker-thread count; >1 overlaps batches (BLAS releases the GIL).
    shedder:
        Optional admission controller; ``None`` admits everything.
    default_timeout_s:
        Per-request deadline used when :meth:`submit` gets no explicit
        ``timeout_s``; ``None`` means wait forever.
    model_label:
        Name under which this batcher's shed/deadline rejections are
        counted (``serve.batcher.{shed,deadline}.model.<label>``) and
        attached to degradation errors; defaults to ``"default"``.
    """

    def __init__(self, predict_fn: Callable[[np.ndarray], np.ndarray],
                 max_batch_size: int = 32, max_latency_ms: float = 5.0,
                 workers: int = 2, shedder: Optional[LoadShedder] = None,
                 default_timeout_s: Optional[float] = None,
                 model_label: Optional[str] = None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_latency_ms < 0:
            raise ValueError("max_latency_ms must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.predict_fn = predict_fn
        self.max_batch_size = int(max_batch_size)
        self.max_latency_s = float(max_latency_ms) / 1000.0
        self.shedder = shedder
        self.default_timeout_s = default_timeout_s
        self.model_label = model_label or "default"
        safe_label = re.sub(r"[^0-9A-Za-z_]", "_", self.model_label)
        self._shed_metric = f"serve.batcher.shed.model.{safe_label}"
        self._deadline_metric = f"serve.batcher.deadline.model.{safe_label}"
        self._queue: Deque[_Request] = deque()
        self._cv = threading.Condition()
        self._stopping = False
        self._stopped = threading.Event()
        self.stats: Dict[str, int] = {
            "submitted": 0, "completed": 0, "batches": 0,
            "shed": 0, "expired": 0, "errors": 0,
        }
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"microbatcher-{i}", daemon=True)
            for i in range(int(workers))
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Current queue depth (approximate outside the lock)."""
        return len(self._queue)

    def _shed_error(self, message: str,
                    request_id: Optional[str] = None) -> OverloadShedError:
        get_registry().inc(self._shed_metric)
        return OverloadShedError(message, request_id=request_id,
                                 model=self.model_label)

    def _deadline_error(self, message: str,
                        request_id: Optional[str] = None,
                        ) -> DeadlineExceededError:
        get_registry().inc(self._deadline_metric)
        return DeadlineExceededError(message, request_id=request_id,
                                     model=self.model_label)

    def submit(self, features: np.ndarray,
               timeout_s: Optional[float] = None,
               trace_ctx: Optional[TraceContext] = None) -> int:
        """Blocking predict for one sample's ``(F,)`` feature vector.

        Raises :class:`OverloadShedError` when admission control rejects
        the request, :class:`DeadlineExceededError` when the deadline
        passes before a worker answers, and re-raises any engine error.
        ``trace_ctx`` (defaulting to the thread's active request trace)
        lets the dispatching worker record queue/batch spans into the
        submitter's trace.
        """
        registry = get_registry()
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        if trace_ctx is None:
            trace_ctx = _HUB.current()
        features = np.asarray(features, dtype=np.float64).reshape(-1)
        deadline = (clock() + timeout_s) if timeout_s is not None else None
        request = _Request(features, deadline, trace_ctx)
        with self._cv:
            if self._stopping:
                raise RuntimeError("MicroBatcher is shut down")
            if (self.shedder is not None
                    and not self.shedder.admit(len(self._queue))):
                self.stats["shed"] += 1
                raise self._shed_error(
                    f"queue depth {len(self._queue)} over high watermark "
                    f"{self.shedder.high_watermark}",
                    request_id=request.request_id)
            self.stats["submitted"] += 1
            self._queue.append(request)
            self._cv.notify()
        registry.inc("serve.batcher.submitted")

        remaining = (deadline - clock()) if deadline is not None else None
        if not request.event.wait(remaining):
            # Nobody answered in time; mark it dead so a worker skips it.
            request.deadline = float("-inf")
            registry.inc("serve.batcher.deadline_exceeded")
            with self._cv:
                self.stats["expired"] += 1
            raise self._deadline_error(
                f"request expired after {timeout_s:.3f}s "
                f"(queue depth {len(self._queue)})",
                request_id=request.request_id)
        if request.error is not None:
            raise request.error
        result = request.result
        # Tagged batches (predict_fn returned ``(labels, meta)``) come
        # back as ``(label, meta)`` tuples — hand them over intact.
        return result if isinstance(result, tuple) else int(result)

    def submit_many(self, features: np.ndarray,
                    timeout_s: Optional[float] = None) -> List[int]:
        """Convenience loop over :meth:`submit` (tests, load generators)."""
        return [self.submit(row, timeout_s=timeout_s)
                for row in np.atleast_2d(features)]

    def submit_all(self, features: np.ndarray,
                   timeout_s: Optional[float] = None,
                   trace_ctx: Optional[TraceContext] = None) -> List[int]:
        """Enqueue a whole ``(n, F)`` matrix at once, then collect.

        Unlike :meth:`submit_many` (which blocks per row, serializing an
        n-sample caller into n single-sample batches), all rows enter
        the queue under one lock acquisition so the workers can coalesce
        them into full batches immediately.  This is what the HTTP
        ``/predict`` handler uses for multi-sample requests.  Raises the
        first per-row error (shed / deadline / engine failure) after all
        rows settled.  All rows share one ``trace_ctx`` (one HTTP
        request → one trace, however the rows get batched).
        """
        registry = get_registry()
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        if trace_ctx is None:
            trace_ctx = _HUB.current()
        rows = np.atleast_2d(np.asarray(features, dtype=np.float64))
        deadline = (clock() + timeout_s) if timeout_s is not None else None
        requests = [_Request(row.reshape(-1), deadline, trace_ctx)
                    for row in rows]
        with self._cv:
            if self._stopping:
                raise RuntimeError("MicroBatcher is shut down")
            if (self.shedder is not None
                    and not self.shedder.admit(len(self._queue))):
                self.stats["shed"] += len(requests)
                raise self._shed_error(
                    f"queue depth {len(self._queue)} over high watermark "
                    f"{self.shedder.high_watermark}",
                    request_id=requests[0].request_id)
            self.stats["submitted"] += len(requests)
            self._queue.extend(requests)
            self._cv.notify_all()
        registry.inc("serve.batcher.submitted", len(requests))

        first_error: Optional[BaseException] = None
        results: List[int] = []
        for request in requests:
            remaining = ((deadline - clock()) if deadline is not None
                         else None)
            if not request.event.wait(remaining):
                request.deadline = float("-inf")
                registry.inc("serve.batcher.deadline_exceeded")
                with self._cv:
                    self.stats["expired"] += 1
                first_error = first_error or self._deadline_error(
                    f"request expired after {timeout_s:.3f}s",
                    request_id=request.request_id)
                results.append(-1)
                continue
            if request.error is not None:
                first_error = first_error or request.error
                results.append(-1)
            else:
                result = request.result
                results.append(result if isinstance(result, tuple)
                               else int(result))
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------
    def _take_batch(self) -> Optional[List[_Request]]:
        """Block until a dispatchable batch exists (or shutdown drains).

        Dispatch condition: ``max_batch_size`` waiting, or the oldest
        request has aged ``max_latency_s``, or the batcher is draining.
        """
        with self._cv:
            while True:
                now = clock()
                # Drop requests that already expired while queued.
                while self._queue and self._queue[0].deadline is not None \
                        and self._queue[0].deadline <= now:
                    request = self._queue.popleft()
                    self.stats["expired"] += 1
                    request.finish(None, self._deadline_error(
                        "request expired in queue",
                        request_id=request.request_id))
                if self._queue:
                    oldest = self._queue[0].enqueued_at
                    if (len(self._queue) >= self.max_batch_size
                            or now - oldest >= self.max_latency_s
                            or self._stopping):
                        batch = [self._queue.popleft()
                                 for _ in range(min(len(self._queue),
                                                    self.max_batch_size))]
                        return batch
                    self._cv.wait(self.max_latency_s - (now - oldest))
                    continue
                if self._stopping:
                    return None
                self._cv.wait()

    def _record_follower_dispatch(self, traced: List[_Request],
                                  dispatch_ts: float, duration_s: float,
                                  batch_attrs: Optional[dict],
                                  error_text: Optional[str]) -> None:
        """Mirror the lead's dispatch span into co-batched traces.

        Only the lead member's context is active during the dispatch, so
        the other traced members get a pre-timed ``serve.batcher.dispatch``
        span naming the lead — their trace still shows when and with whom
        the request was coalesced.
        """
        if len(traced) < 2:
            return
        hub = _HUB
        attrs = dict(batch_attrs or {})
        attrs["lead"] = traced[0].request_id
        status = "error" if error_text else "ok"
        for request in traced[1:]:
            hub.record_span("serve.batcher.dispatch", request.trace_ctx,
                            start_ts=dispatch_ts, duration_s=duration_s,
                            attrs=attrs, status=status, error=error_text)

    def _worker_loop(self) -> None:
        registry = get_registry()
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            live = [r for r in batch
                    if r.deadline is None or r.deadline > clock()]
            for request in batch:
                if request not in live:
                    request.finish(None, self._deadline_error(
                        "request expired before dispatch",
                        request_id=request.request_id))
            if not live:
                continue
            stacked = np.stack([r.features for r in live])
            wait_ms = 1000.0 * (clock() - live[0].enqueued_at)
            registry.observe("serve.batcher.batch_size", float(len(live)))
            registry.observe("serve.batcher.queue_wait_ms", wait_ms)
            # Request tracing: every traced member gets a queue-wait
            # span; the *lead* member's context is activated around the
            # dispatch so the engine/stage spans land in its trace, and
            # the other members get pre-timed copies of the dispatch
            # span linked to the shared batch id.
            hub = _HUB
            traced: List[_Request] = []
            if hub.enabled:
                # One span set per *trace* — a multi-row submit_all puts
                # several requests with the same context in one batch.
                seen_traces = set()
                for request in live:
                    ctx = request.trace_ctx
                    if ctx is not None and ctx.trace_id not in seen_traces:
                        seen_traces.add(ctx.trace_id)
                        traced.append(request)
            batch_attrs = None
            dispatch_ts = 0.0
            if traced:
                batch_id = new_span_id()
                now_perf, dispatch_ts = clock(), time.time()
                batch_attrs = {"batch_id": batch_id,
                               "batch_size": len(live),
                               "members": [r.request_id for r in traced]}
                for request in traced:
                    hub.record_span(
                        "serve.batcher.queue", request.trace_ctx,
                        start_ts=request.enqueued_ts,
                        duration_s=now_perf - request.enqueued_at,
                        attrs={"batch_id": batch_id})
            t0 = clock()
            error_text: Optional[str] = None
            try:
                if traced:
                    with hub.activate(traced[0].trace_ctx):
                        with span("serve.batcher.dispatch",
                                  nbytes=int(stacked.nbytes),
                                  attrs=batch_attrs):
                            result = self.predict_fn(stacked)
                else:
                    with span("serve.batcher.dispatch",
                              nbytes=int(stacked.nbytes)):
                        result = self.predict_fn(stacked)
                # ``predict_fn`` may tag its batch: a ``(labels, meta)``
                # return delivers each row as ``(label, meta)``, letting
                # callers attribute every answer to the engine snapshot
                # that actually computed it (hot reload swaps engines
                # *between* batches, not within one).
                meta = None
                if isinstance(result, tuple) and len(result) == 2:
                    result, meta = result
                labels = np.asarray(result)
            except BaseException as exc:  # surfaced per request
                error_text = f"{type(exc).__name__}: {exc}"
                self._record_follower_dispatch(traced, dispatch_ts,
                                               clock() - t0, batch_attrs,
                                               error_text)
                with self._cv:
                    self.stats["errors"] += len(live)
                registry.inc("serve.batcher.errors", len(live))
                for request in live:
                    request.finish(None, exc)
                continue
            self._record_follower_dispatch(traced, dispatch_ts,
                                           clock() - t0, batch_attrs,
                                           error_text)
            with self._cv:
                self.stats["batches"] += 1
                self.stats["completed"] += len(live)
            registry.inc("serve.batcher.batches")
            registry.inc("serve.batcher.completed", len(live))
            for request, label in zip(live, labels):
                request.finish(int(label) if meta is None
                               else (int(label), meta))

    # ------------------------------------------------------------------
    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Drain the queue, answer every pending request, stop workers."""
        with self._cv:
            if self._stopping:
                return
            self._stopping = True
            self._cv.notify_all()
        for thread in self._workers:
            thread.join(timeout_s)
        self._stopped.set()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"MicroBatcher(batch={self.max_batch_size}, "
                f"latency_ms={self.max_latency_s * 1000:.1f}, "
                f"workers={len(self._workers)}, depth={self.depth}, "
                f"stats={self.stats})")
