"""Inference-serving subsystem: bundles, engine, micro-batching, HTTP.

The deployment story around the paper's HD pipelines (Sec. VI-B trains
once, serves many):

* :mod:`~repro.serve.bundle` — :class:`ModelBundle`, the frozen,
  versioned inference artifact (extractor weights, manifold FC,
  projection, class hypervectors, scaler stats + git/config provenance)
  on the atomic CRC-manifest checkpoint format.
* :mod:`~repro.serve.engine` — :class:`InferenceEngine`, the fused
  forward path: bit-packed XOR-popcount classification for binarized
  bundles (bit-exact with the float pipeline), cached class norms, and
  an LRU over encoded hypervectors.
* :mod:`~repro.serve.batching` — :class:`MicroBatcher`, dynamic
  micro-batching with a worker pool, per-request deadlines, and
  watermark overload shedding (:mod:`repro.reliability.degrade`).
* :mod:`~repro.serve.server` — :class:`ModelServer`, stdlib HTTP
  endpoints ``/predict``, ``/healthz``, ``/metrics`` (Prometheus).
* :mod:`~repro.serve.fleet` — :class:`Supervisor`, N supervised worker
  processes with heartbeat probes, exponential-backoff restart, and
  crash-loop quarantine.
* :mod:`~repro.serve.router` — :class:`Router`, the consistent-hash,
  health-gated, circuit-broken fleet front-end.

Quickstart::

    from repro.serve import InferenceEngine, ModelBundle, ModelServer

    ModelBundle.from_pipeline(nshd, config=cfg, binarize=True).save(path)
    engine = InferenceEngine.from_path(path)       # selfchecks packed path
    with ModelServer(engine, port=0) as server:
        print(server.url)                          # POST /predict
"""

from .batching import MicroBatcher
from .bundle import BUNDLE_SECTION, BUNDLE_VERSION, BundleError, ModelBundle
from .engine import EngineSelfCheckError, InferenceEngine
from .fleet import FleetError, StaticFleet, Supervisor, Worker, free_port
from .router import HashRing, Router
from .server import ModelServer, ReloadError, RequestError

__all__ = [
    "BUNDLE_VERSION", "BUNDLE_SECTION", "BundleError", "ModelBundle",
    "InferenceEngine", "EngineSelfCheckError",
    "MicroBatcher",
    "ModelServer", "ReloadError", "RequestError",
    "Supervisor", "StaticFleet", "Worker", "FleetError", "free_port",
    "Router", "HashRing",
]
