"""Stdlib HTTP model server: /predict, /healthz, /metrics.

:class:`ModelServer` wires an :class:`~repro.serve.engine.InferenceEngine`
behind a :class:`~repro.serve.batching.MicroBatcher` and exposes it over
``http.server`` (zero dependencies; ``ThreadingHTTPServer`` gives one
handler thread per connection, which is exactly what feeds the
micro-batcher concurrent submits to coalesce).

Endpoints
---------
``POST /predict``
    Body ``{"features": [[...], ...]}`` (one row per sample; a single
    flat list is treated as one sample).  Response
    ``{"labels": [...], "model": <config fingerprint>}`` — the
    fingerprint of the engine snapshot that *computed the labels*
    (a list if a hot reload split the request across two models).
    Degradation mapping: admission-control rejection → **503** with
    ``Retry-After``; per-request deadline expiry → **504**; malformed
    input → **400**; engine failure → **500**.
``GET /healthz``
    Engine + batcher + shedder facts as JSON (status ``ok`` /
    ``shedding`` / ``draining``), plus the bundle identity (version,
    config fingerprint, path) and the engine mode (``packed`` /
    ``float``) so a fleet supervisor can detect a torn or wrong-version
    worker.  ``?deep=1`` additionally runs the engine selfcheck and
    reports ``selfcheck`` (a failing selfcheck answers **500** so
    health-gated routing drops the worker).
``GET /metrics``
    Prometheus text exposition of the process-global telemetry registry
    (the same counters/histograms the batcher and engine populate).
``GET /driftz``
    Model-quality snapshot from the engine's streaming
    :class:`~repro.telemetry.quality.DriftMonitor` (feature PSI /
    z-scores vs the training baseline, prediction skew, margin and
    confidence histograms, HV saturation); ``{"enabled": false}`` when
    the bundle carries no quality baseline.
``GET /alertz``
    Evaluate-now snapshot of the declarative alert rules
    (:mod:`repro.telemetry.alerts`): per-rule state machine
    (inactive/pending/firing/resolved), firing list, recent
    transitions.
``POST /slow`` (chaos builds only)
    Fault-injection stall: ``{"stall_s": 2.5}`` wedges ``/predict`` and
    ``/healthz`` for the given duration, simulating a hung worker for
    the chaos harness.  Only routed when the server was built with
    ``chaos=True`` (or ``REPRO_SERVE_CHAOS=1``); otherwise 404.

Client disconnects (a load generator hanging up mid-response) are
counted in ``serve.client_disconnect`` instead of dumping stack traces
to stderr.  ``SIGTERM`` triggers a graceful drain: stop accepting,
answer everything queued in the micro-batcher, then exit — the same
code path a fleet supervisor uses to stop a worker.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..reliability.degrade import (DeadlineExceededError, LoadShedder,
                                   OverloadShedError)
from ..telemetry import (AlertManager, clock, get_flight_recorder,
                         get_registry, get_request_log, prometheus_text)
from ..telemetry.reqtrace import HUB as _HUB
from ..telemetry.reqtrace import TraceContext
from .batching import MicroBatcher
from .bundle import BundleError, ModelBundle
from .engine import EngineSelfCheckError, InferenceEngine

__all__ = ["ModelServer", "RequestError", "ReloadError"]


class ReloadError(RuntimeError):
    """A hot reload was requested but could not be satisfied."""


class RequestError(ValueError):
    """Client-side error (malformed JSON / wrong feature shape): HTTP 400."""


#: Exceptions raised when the client hangs up mid-request/-response.
_DISCONNECTS = (BrokenPipeError, ConnectionResetError, ConnectionAbortedError)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ModelServer`."""

    protocol_version = "HTTP/1.1"
    server: "_HTTPServer"

    #: Request-trace context echoed on every response of the current
    #: request (set at the top of do_GET/do_POST, refreshed by /predict
    #: with its live root-span context).
    _trace_ctx: Optional[TraceContext] = None

    # -- helpers -------------------------------------------------------
    def _begin_request(self) -> TraceContext:
        """Adopt the client's traceparent (or mint a request id).

        Every response — including 404/400/503/504/500 — carries
        ``X-Trace-Id`` + ``traceparent`` headers built from this
        context, whether or not tracing is enabled.
        """
        ctx = TraceContext.parse(self.headers.get("traceparent"))
        if ctx is None:
            ctx = TraceContext.mint(sampled=False)
        self._trace_ctx = ctx
        return ctx

    def _trace_headers(self) -> Dict[str, str]:
        ctx = self._trace_ctx
        if ctx is None:
            return {}
        return {"X-Trace-Id": ctx.trace_id,
                "traceparent": ctx.to_traceparent()}

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in self._trace_headers().items():
                self.send_header(name, value)
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except _DISCONNECTS:
            # The client is gone; nobody is owed this response.
            get_registry().inc("serve.client_disconnect")
            self.close_connection = True

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in self._trace_headers().items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except _DISCONNECTS:
            get_registry().inc("serve.client_disconnect")
            self.close_connection = True

    def log_message(self, format: str, *args: Any) -> None:
        # Access logs go to the metrics registry, not stderr (tests and
        # benchmarks would otherwise drown in per-request lines).
        get_registry().inc("serve.http.requests")

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        app = self.server.app
        url = urllib.parse.urlsplit(self.path)
        # Probe endpoints are *not* traced (a supervisor heartbeats
        # /healthz several times a second — root spans for those would
        # churn the flight recorder), but every response still echoes a
        # request id.
        self._begin_request()
        if url.path == "/healthz":
            app._maybe_stall()
            query = urllib.parse.parse_qs(url.query)
            deep = query.get("deep", ["0"])[-1] not in ("0", "", "false")
            payload = app.health(deep=deep)
            status = 200 if payload["status"] != "selfcheck_failed" else 500
            self._send_json(status, payload)
        elif url.path == "/metrics":
            self._send_text(200, prometheus_text())
        elif url.path == "/tracez":
            self._send_json(*_tracez_payload(url.query))
        elif url.path == "/requestz":
            self._send_json(200, _requestz_payload(url.query))
        elif url.path == "/driftz":
            self._send_json(200, app.driftz())
        elif url.path == "/alertz":
            self._send_json(200, app.alertz())
        elif url.path == "/onlinez":
            self._send_json(200, app.onlinez())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        app = self.server.app
        self._begin_request()
        if self.path == "/reload":
            self._do_reload(app)
            return
        if self.path == "/feedback":
            self._do_feedback(app)
            return
        if self.path == "/promote":
            self._do_promote(app)
            return
        if self.path == "/slow" and app.chaos:
            self._do_slow(app)
            return
        if self.path != "/predict":
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        registry = get_registry()
        # Root span of this worker's part of the request.  The client's
        # traceparent (router or external) becomes the parent, so the
        # cross-process stitcher hangs this hop under the router's
        # attempt span.  Works with tracing disabled too — the context
        # still carries the request id every response echoes.
        client_parent = TraceContext.parse(self.headers.get("traceparent"))
        # The response is sent AFTER the root span closes, so by the
        # time the client holds its trace id the flight recorder has
        # already retained the trace — an immediate /tracez lookup
        # cannot race the request it is looking for.
        response: Optional[Tuple[int, Dict[str, Any],
                                 Optional[Dict[str, str]]]] = None
        with _HUB.trace("server.request",
                        parent=client_parent,
                        attrs={"path": "/predict"}) as trace:
            self._trace_ctx = trace.ctx
            t0 = clock()
            n_rows = 0
            status, error_text = 200, None
            try:
                app._maybe_stall()
                length = int(self.headers.get("Content-Length", 0))
                features = _parse_features(self.rfile.read(length))
                n_rows = len(features)
                labels, models = app.predict_tagged(
                    features, trace_ctx=trace.ctx)
            except _DISCONNECTS:
                registry.inc("serve.client_disconnect")
                trace.set_error("client disconnect")
                self.close_connection = True
                return
            except RequestError as exc:
                status, error_text = 400, str(exc)
                registry.inc("serve.http.bad_request")
                response = (400, {"error": str(exc),
                                  "request_id": trace.trace_id}, None)
            except OverloadShedError as exc:
                status, error_text = 503, str(exc)
                registry.inc("serve.http.shed")
                response = (
                    503, {"error": str(exc), "retryable": True,
                          "request_id": exc.request_id or trace.trace_id,
                          "model": exc.model},
                    {"Retry-After": "1"})
            except DeadlineExceededError as exc:
                status, error_text = 504, str(exc)
                registry.inc("serve.http.deadline")
                response = (
                    504, {"error": str(exc), "retryable": True,
                          "request_id": exc.request_id or trace.trace_id,
                          "model": exc.model}, None)
            except Exception as exc:  # engine failure
                status = 500
                error_text = f"{type(exc).__name__}: {exc}"
                registry.inc("serve.http.internal_error")
                response = (500, {"error": error_text,
                                  "request_id": trace.trace_id}, None)
            else:
                if app.online is not None:
                    # Retain single-row request features so feedback can
                    # reference them by request_id instead of re-upload.
                    app.online.remember(trace.trace_id, features)
                response = (200, {
                    "labels": [int(label) for label in labels],
                    "model": models[0] if len(models) == 1 else models,
                    "request_id": trace.trace_id,
                }, None)
            latency_ms = 1000.0 * (clock() - t0)
            # The P99 exemplar points at a real recent trace: a slow
            # /metrics scrape can be chased into /tracez directly.
            registry.observe("serve.latency_ms", latency_ms,
                             exemplar=trace.trace_id)
            trace.annotate(status=status, rows=n_rows)
            if error_text is not None:
                trace.set_error(error_text)
            get_request_log().append(
                path="/predict", status=status, trace_id=trace.trace_id,
                latency_ms=round(latency_ms, 3), rows=n_rows,
                error=error_text)
        self._send_json(response[0], response[1], headers=response[2])

    def _do_reload(self, app: "ModelServer") -> None:
        """``POST /reload``: swap in a re-verified bundle (or refuse).

        An optional JSON body ``{"bundle": "path.npz"}`` points the
        server at a *new* artifact; otherwise the configured
        ``bundle_path`` is re-read.  A torn, invalid, or incompatible
        bundle returns **409** and the old engine keeps serving.
        """
        registry = get_registry()
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length) if length else b""
            path = None
            if body.strip():
                try:
                    payload = json.loads(body.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise RequestError(
                        f"reload body is not valid JSON: {exc}") from exc
                if not isinstance(payload, dict):
                    raise RequestError(
                        'reload body must be {"bundle": "path"}')
                path = payload.get("bundle")
            info = app.reload(path)
        except RequestError as exc:
            registry.inc("serve.http.bad_request")
            self._send_json(400, {"error": str(exc)})
        except ReloadError as exc:
            registry.inc("serve.reload.rejected")
            self._send_json(409, {"error": str(exc), "reloaded": False})
        else:
            self._send_json(200, info)

    def _do_feedback(self, app: "ModelServer") -> None:
        """``POST /feedback``: guarded shadow-model update from a label.

        Body: ``{"label": k, "features": [...]}`` or ``{"label": k,
        "request_id": "<id from /predict>"}``.  Updates only the
        *shadow* copy — the live engine is untouched until a promotion
        passes every gate.  404 when online learning is disabled or the
        request_id fell out of the window, 422 when the numerics guard
        vetoes the payload, 429 when rate-limited.
        """
        registry = get_registry()
        registry.inc("serve.feedback.requests")
        if app.online is None:
            self._send_json(404, {"error": "online learning is not "
                                           "enabled on this server"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("feedback body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            registry.inc("serve.feedback.bad_request")
            self._send_json(400, {"error": f"invalid feedback body: "
                                           f"{exc}"})
            return
        try:
            status, body = app.online.feedback(payload)
        except Exception as exc:  # defensive: keep the worker alive
            registry.inc("serve.http.internal_error")
            self._send_json(500, {"error":
                                  f"{type(exc).__name__}: {exc}"})
            return
        if status == 400:
            registry.inc("serve.feedback.bad_request")
        headers = {"Retry-After": "1"} if status == 429 else None
        self._send_json(status, body, headers=headers)

    def _do_promote(self, app: "ModelServer") -> None:
        """``POST /promote``: run the promotion gates right now.

        Evaluation on demand — the gates still apply; this cannot force
        an unqualified shadow into production.  Returns the full
        decision record (also retained on ``/onlinez``).
        """
        if app.online is None:
            self._send_json(404, {"error": "online learning is not "
                                           "enabled on this server"})
            return
        try:
            decision = app.online.try_promote()
        except Exception as exc:  # defensive: keep the worker alive
            get_registry().inc("serve.http.internal_error")
            self._send_json(500, {"error":
                                  f"{type(exc).__name__}: {exc}"})
            return
        self._send_json(200, decision)

    def _do_slow(self, app: "ModelServer") -> None:
        """``POST /slow`` (chaos builds): wedge the worker for a while."""
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
            stall_s = float(payload["stall_s"])
            if not 0.0 <= stall_s <= 120.0:
                raise ValueError(f"stall_s out of range: {stall_s}")
        except (KeyError, TypeError, ValueError,
                UnicodeDecodeError) as exc:
            self._send_json(400, {"error": f'expected {{"stall_s": '
                                           f's}}: {exc}'})
            return
        get_registry().inc("serve.chaos.stalls")
        app.stall(stall_s)
        self._send_json(200, {"stalled_s": stall_s})


def _tracez_payload(query: str) -> Tuple[int, Dict[str, Any]]:
    """``GET /tracez`` body: flight-recorder snapshot or one trace.

    ``?trace_id=<id>`` looks up a retained trace (404 with the retained
    id list when it aged out); no query returns the recorder snapshot
    (retained traces sorted slowest-first, active-trace count, stats).
    Shared by the worker and router handlers.
    """
    params = urllib.parse.parse_qs(query)
    trace_id = params.get("trace_id", [None])[-1]
    recorder = get_flight_recorder()
    if trace_id:
        found = recorder.lookup(trace_id)
        if found is None:
            return 404, {"error": f"trace {trace_id!r} not retained",
                         "retained": recorder.retained_ids()}
        return 200, found
    return 200, recorder.snapshot()


def _requestz_payload(query: str) -> Dict[str, Any]:
    """``GET /requestz`` body: the structured request log (newest first).

    ``?limit=N`` bounds the slice, ``?errors=1`` filters to failures,
    ``?trace_id=<id>`` pulls one request's record.
    """
    params = urllib.parse.parse_qs(query)
    try:
        limit = int(params.get("limit", ["100"])[-1])
    except ValueError:
        limit = 100
    errors_only = params.get("errors", ["0"])[-1] not in ("0", "", "false")
    trace_id = params.get("trace_id", [None])[-1]
    log = get_request_log()
    return {"requests": log.snapshot(limit=limit, trace_id=trace_id,
                                     errors_only=errors_only),
            "appended": log.appended}


def _parse_features(body: bytes) -> np.ndarray:
    """Decode and shape-check the /predict request body."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise RequestError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "features" not in payload:
        raise RequestError('request body must be {"features": [...]}')
    try:
        features = np.asarray(payload["features"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise RequestError(f"features are not numeric: {exc}") from exc
    if features.ndim == 1:
        features = features[None, :]
    if features.ndim != 2 or features.size == 0:
        raise RequestError(
            f"features must be a (n, F) matrix, got shape "
            f"{features.shape}")
    if not np.isfinite(features).all():
        raise RequestError("features contain NaN/Inf")
    return features


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    app: "ModelServer"

    def handle_error(self, request, client_address) -> None:
        """Count client disconnects instead of spewing tracebacks.

        Anything that escapes the handler's own try/except (e.g. a
        reset while *reading* the request line) lands here; for real
        server bugs keep the default stderr traceback.
        """
        import sys
        exc = sys.exc_info()[1]
        if isinstance(exc, _DISCONNECTS):
            get_registry().inc("serve.client_disconnect")
            return
        super().handle_error(request, client_address)


class ModelServer:
    """HTTP front end around an engine + micro-batcher.

    Parameters
    ----------
    engine:
        The :class:`InferenceEngine` to serve.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (tests).
    max_batch_size, max_latency_ms, workers:
        Micro-batcher tuning (see :class:`MicroBatcher`).
    high_watermark:
        Queue depth at which admission control starts shedding
        (hysteresis down to ``high_watermark // 2``); ``None`` disables
        shedding.
    timeout_s:
        Default per-request deadline inside the batcher.
    bundle_path:
        Where this server's bundle lives on disk.  Enables hot reload
        (``POST /reload`` / SIGHUP): the path is re-verified and a fresh
        engine is atomically swapped behind the batcher.
    engine_options:
        Keyword arguments for the :class:`InferenceEngine` built on
        reload (``cache_size``, ``use_packed``, ...).  Defaults to the
        current engine's cache capacity with packed auto-selection.
    chaos:
        Route the fault-injection ``POST /slow`` endpoint (never enable
        outside tests/chaos harnesses).  Defaults to the
        ``REPRO_SERVE_CHAOS=1`` environment toggle so a fleet
        supervisor can arm spawned workers.
    alert_rules:
        Declarative :class:`~repro.telemetry.alerts.AlertRule` list
        evaluated against the metrics registry on a background thread
        while the server runs (and on every ``GET /alertz``); rule
        states are also published as ``alert.state.*`` gauges in
        ``/metrics``.  ``None``/empty disables alerting.
    alert_interval_s:
        Background evaluation period for the alert rules.
    online_options:
        Keyword arguments for an :class:`~repro.online.OnlineLearner`
        riding this server (the ``[online]`` config section): enables
        ``POST /feedback`` guarded shadow-model updates, ``GET
        /onlinez``, and gated atomic promotion through ``POST
        /promote`` / auto-promotion.  ``None`` (the default) disables
        online learning entirely; ``{}`` enables it with defaults.  An
        ``enabled = false`` key inside the dict also disables it (so a
        config file can keep the section but switch it off).
    """

    def __init__(self, engine: InferenceEngine, host: str = "127.0.0.1",
                 port: int = 0, max_batch_size: int = 32,
                 max_latency_ms: float = 5.0, workers: int = 2,
                 high_watermark: Optional[int] = 128,
                 timeout_s: Optional[float] = 5.0,
                 bundle_path: Optional[str] = None,
                 engine_options: Optional[Dict[str, Any]] = None,
                 chaos: Optional[bool] = None,
                 alert_rules: Optional[list] = None,
                 alert_interval_s: float = 1.0,
                 online_options: Optional[Dict[str, Any]] = None):
        self.engine = engine
        self.bundle_path = bundle_path
        if chaos is None:
            chaos = os.environ.get("REPRO_SERVE_CHAOS", "") not in ("", "0")
        self.chaos = bool(chaos)
        self._stall_until = 0.0
        self.draining = False
        if engine_options is None:
            # Test doubles may not implement the full engine surface;
            # fall back to engine defaults on reload in that case.
            cache_info = getattr(engine, "cache_info", None)
            engine_options = ({"cache_size": cache_info()["max_entries"]}
                              if callable(cache_info) else {})
        self.engine_options = dict(engine_options)
        self.reloads = 0
        self.last_reload_ts: Optional[float] = None
        self.started_at = time.time()
        self.alerts = (AlertManager(list(alert_rules))
                       if alert_rules else None)
        self.alert_interval_s = float(alert_interval_s)
        self._reload_lock = threading.Lock()
        self.shedder = (LoadShedder(high_watermark)
                        if high_watermark else None)
        # The batcher calls through ``_predict_batch`` (which reads
        # ``self.engine`` per batch) instead of a bound method, so a hot
        # reload only has to swap the attribute — in-flight batches
        # finish on whichever engine they started with.
        bundle = getattr(engine, "bundle", None)
        model_label = (bundle.info.get("pipeline")
                       if bundle is not None else None)
        self.batcher = MicroBatcher(
            self._predict_batch, max_batch_size=max_batch_size,
            max_latency_ms=max_latency_ms, workers=workers,
            shedder=self.shedder, default_timeout_s=timeout_s,
            model_label=model_label)
        self.online = None
        if online_options is not None:
            opts = dict(online_options)
            if opts.pop("enabled", True):
                # Imported lazily: repro.online imports serve.bundle
                # types through the learner, so a module-level import
                # here would cycle.
                from ..online import OnlineLearner
                self.online = OnlineLearner(self, **opts)
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.app = self
        self._thread: Optional[threading.Thread] = None
        self._started = False

    def _predict_batch(self, features: np.ndarray):
        # Snapshot the engine ONCE per batch: the labels and the
        # fingerprint the handler reports must come from the same
        # model, even if a concurrent /reload swaps ``self.engine``
        # between dispatch and response assembly.
        engine = self.engine
        labels = engine.predict_features(features)
        return labels, engine.bundle.info.get("config_fingerprint")

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """Actual ``(host, port)`` after binding (resolves ``port=0``)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def predict(self, features: np.ndarray) -> list:
        """Route the request through the micro-batcher (blocking).

        All rows of a multi-sample request are enqueued atomically so
        the workers can batch them together (and with rows from other
        concurrent connections).
        """
        return self.predict_tagged(features)[0]

    def predict_tagged(self, features: np.ndarray,
                       trace_ctx: Optional[TraceContext] = None) -> tuple:
        """Like :meth:`predict`, plus the fingerprint(s) that served it.

        Returns ``(labels, models)`` where ``models`` lists the distinct
        config fingerprints of the engine snapshots that computed the
        rows (one entry unless a hot reload landed mid-request).
        ``trace_ctx`` rides into the batcher so queue/dispatch spans
        (and shed/deadline request ids) attach to the HTTP request's
        trace even when called from a non-traced thread.
        """
        results = self.batcher.submit_all(features, trace_ctx=trace_ctx)
        labels = [label for label, _ in results]
        models = []
        for _, fingerprint in results:
            if fingerprint not in models:
                models.append(fingerprint)
        return labels, models

    # -- chaos stall (test-only fault injection) -----------------------
    def stall(self, stall_s: float) -> None:
        """Wedge ``/predict`` and ``/healthz`` for ``stall_s`` seconds
        (chaos harness: simulates a hung worker that a supervisor's
        probe timeout must catch)."""
        self._stall_until = clock() + float(stall_s)

    def _maybe_stall(self) -> None:
        while self.chaos and clock() < self._stall_until:
            time.sleep(0.05)

    def health(self, deep: bool = False) -> Dict[str, Any]:
        """Health facts; ``deep=True`` also runs the engine selfcheck.

        The shallow probe is what a supervisor heartbeats (cheap, no
        engine work); the deep probe re-proves the packed fast path
        against the float reference — the reload tests and the fleet's
        post-restart readiness check both use it.
        """
        shedding = bool(self.shedder is not None and self.shedder.shedding)
        status = "ok"
        if shedding:
            status = "shedding"
        if self.draining:
            status = "draining"
        info = self.engine.bundle.info
        payload = {
            "status": status,
            "engine": self.engine.describe(),
            # getattr: engines are duck-typed (façades/wrappers may not
            # carry the packed-path flag).
            "mode": ("packed" if getattr(self.engine, "use_packed", False)
                     else "float"),
            "bundle": {
                "version": info.get("bundle_version"),
                "fingerprint": info.get("config_fingerprint"),
                "pipeline": info.get("pipeline"),
                "path": self.bundle_path,
            },
            "bundle_path": self.bundle_path,
            "reloads": self.reloads,
            "batcher": {"depth": self.batcher.depth,
                        **self.batcher.stats},
            "shedder": (None if self.shedder is None
                        else {"high": self.shedder.high_watermark,
                              "low": self.shedder.low_watermark,
                              "shedding": shedding,
                              **self.shedder.stats}),
        }
        if deep:
            try:
                self.engine.selfcheck()
            except Exception as exc:
                payload["status"] = "selfcheck_failed"
                payload["selfcheck"] = f"{type(exc).__name__}: {exc}"
            else:
                payload["selfcheck"] = "ok"
            # Operator-facing engine vitals: a cold cache, a packed
            # path that silently fell back to float, or an engine still
            # serving a stale bundle are all visible here without a
            # /metrics scrape.
            cache_info = getattr(self.engine, "cache_info", None)
            cache = cache_info() if callable(cache_info) else {}
            lookups = cache.get("hits", 0) + cache.get("misses", 0)
            stage_cache_info = getattr(self.engine, "stage_cache_info",
                                       None)
            stage_cache = (stage_cache_info()
                           if callable(stage_cache_info) else None)
            payload["engine_vitals"] = {
                "cache_hit_rate": (cache["hits"] / lookups
                                   if lookups else None),
                "cache_entries": cache.get("entries", 0),
                "packed_path": bool(getattr(self.engine, "use_packed",
                                            False)),
                "quality_monitor": getattr(self.engine, "quality",
                                           None) is not None,
                "compile_passes": list(getattr(self.engine,
                                               "compile_passes", [])),
                "executor_plan": dict(getattr(self.engine,
                                              "executor_plan", {})),
                "stage_cache_hit_rate": (
                    None if stage_cache is None
                    else stage_cache.get("hit_rate")),
                "stage_cache": stage_cache,
                "last_reload_ts": self.last_reload_ts,
                "started_at": self.started_at,
                "uptime_s": time.time() - self.started_at,
            }
        return payload

    # ------------------------------------------------------------------
    # Model-quality observability (/driftz, /alertz)
    # ------------------------------------------------------------------
    def driftz(self) -> Dict[str, Any]:
        """``GET /driftz`` body: the engine's drift-monitor snapshot."""
        monitor = getattr(self.engine, "quality", None)
        if monitor is None:
            return {"enabled": False}
        return monitor.snapshot()

    def alertz(self) -> Dict[str, Any]:
        """``GET /alertz`` body: evaluate-now + alert states.

        Evaluating on read means the endpoint is accurate even when the
        background evaluator is not running (tests, one-shot probes).
        """
        if self.alerts is None:
            return {"enabled": False, "rules": [], "firing": []}
        self.alerts.evaluate()
        return self.alerts.snapshot()

    def onlinez(self) -> Dict[str, Any]:
        """``GET /onlinez`` body: online-learning status + last decision."""
        if self.online is None:
            return {"enabled": False}
        return self.online.status()

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def reload(self, bundle_path: Optional[str] = None) -> Dict[str, Any]:
        """Atomically swap in a freshly ``verify()``-ed engine.

        The new bundle is CRC-verified, structurally validated, and
        engine-constructed (including the packed-path selfcheck)
        *before* the swap — any failure raises :class:`ReloadError` and
        the old engine keeps serving untouched.  Returns a summary dict
        (also the ``POST /reload`` response body).
        """
        path = bundle_path or self.bundle_path
        if not path:
            raise ReloadError(
                "no bundle path configured — start the server with "
                "bundle_path= (or POST {\"bundle\": \"path\"})")
        with self._reload_lock:
            try:
                ModelBundle.verify(path)
                engine = InferenceEngine.from_path(path,
                                                   **self.engine_options)
            except (BundleError, EngineSelfCheckError, OSError) as exc:
                raise ReloadError(
                    f"reload of {path!r} rejected "
                    f"({type(exc).__name__}: {exc}); "
                    "previous engine keeps serving") from exc
            old_fingerprint = self.engine.bundle.info.get(
                "config_fingerprint")
            self.engine = engine  # atomic swap behind _predict_batch
            self.bundle_path = path
            self.reloads += 1
            self.last_reload_ts = time.time()
            get_registry().inc("serve.reload.success")
        return {
            "reloaded": True,
            "reloads": self.reloads,
            "bundle_path": path,
            "previous_fingerprint": old_fingerprint,
            "engine": engine.describe(),
        }

    def install_signal_handlers(self) -> bool:
        """Route ``SIGHUP`` → :meth:`reload` and ``SIGTERM`` →
        :meth:`drain` (main thread only).

        Returns whether the handlers were installed; a failed reload
        from a signal never propagates (the old engine keeps serving
        and the rejection is counted in ``serve.reload.rejected``).
        SIGTERM starts the graceful drain — stop accepting, answer the
        queued requests, exit 0 — which is also how a fleet supervisor
        stops a worker.
        """
        if threading.current_thread() is not threading.main_thread():
            return False

        def _on_hup(signum, frame):  # pragma: no cover - signal path
            try:
                self.reload()
            except ReloadError:
                get_registry().inc("serve.reload.rejected")

        def _on_term(signum, frame):  # pragma: no cover - signal path
            self.drain()

        try:
            signal.signal(signal.SIGHUP, _on_hup)
            signal.signal(signal.SIGTERM, _on_term)
        except (ValueError, OSError, AttributeError):
            return False
        return True

    def drain(self) -> None:
        """Graceful shutdown: stop accepting, flush in-flight, stop.

        Safe to call from a signal handler: ``shutdown()`` must not run
        on the thread blocked inside ``serve_forever`` (it would
        deadlock waiting for its own loop to exit), so the actual stop
        runs on a helper thread and this returns immediately.  The
        batcher answers everything already queued before the workers
        exit (see :meth:`MicroBatcher.shutdown`).
        """
        if self.draining:
            return
        self.draining = True
        get_registry().inc("serve.drain")
        threading.Thread(target=self.stop, name="model-server-drain",
                         daemon=True).start()

    # ------------------------------------------------------------------
    def start(self) -> "ModelServer":
        """Serve in a background thread; returns self (fluent)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._started = True
        self._start_alerts()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="model-server",
            daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (CLI entry point).

        Installs the SIGHUP → :meth:`reload` handler when running on
        the main thread.
        """
        self._started = True
        self.install_signal_handlers()
        self._start_alerts()
        try:
            self._httpd.serve_forever()
        finally:
            self.stop()

    def _start_alerts(self) -> None:
        if self.alerts is not None and self.alerts._thread is None:
            self.alerts.start(self.alert_interval_s)

    def stop(self) -> None:
        """Shut down the HTTP listener and drain the batcher."""
        if self.alerts is not None:
            self.alerts.stop()
        if self._started:
            # shutdown() synchronizes with a serve_forever loop; calling
            # it on a never-served listener would block forever.
            self._httpd.shutdown()
        self._httpd.server_close()
        self.batcher.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
