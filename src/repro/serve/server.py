"""Stdlib HTTP model server: /predict, /healthz, /metrics.

:class:`ModelServer` wires an :class:`~repro.serve.engine.InferenceEngine`
behind a :class:`~repro.serve.batching.MicroBatcher` and exposes it over
``http.server`` (zero dependencies; ``ThreadingHTTPServer`` gives one
handler thread per connection, which is exactly what feeds the
micro-batcher concurrent submits to coalesce).

Endpoints
---------
``POST /predict``
    Body ``{"features": [[...], ...]}`` (one row per sample; a single
    flat list is treated as one sample).  Response
    ``{"labels": [...], "model": <config fingerprint>}``.
    Degradation mapping: admission-control rejection → **503** with
    ``Retry-After``; per-request deadline expiry → **504**; malformed
    input → **400**; engine failure → **500**.
``GET /healthz``
    Engine + batcher + shedder facts as JSON (status ``ok`` /
    ``shedding``).
``GET /metrics``
    Prometheus text exposition of the process-global telemetry registry
    (the same counters/histograms the batcher and engine populate).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..reliability.degrade import (DeadlineExceededError, LoadShedder,
                                   OverloadShedError)
from ..telemetry import get_registry, prometheus_text
from .batching import MicroBatcher
from .engine import InferenceEngine

__all__ = ["ModelServer", "RequestError"]


class RequestError(ValueError):
    """Client-side error (malformed JSON / wrong feature shape): HTTP 400."""


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ModelServer`."""

    protocol_version = "HTTP/1.1"
    server: "_HTTPServer"

    # -- helpers -------------------------------------------------------
    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        # Access logs go to the metrics registry, not stderr (tests and
        # benchmarks would otherwise drown in per-request lines).
        get_registry().inc("serve.http.requests")

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        app = self.server.app
        if self.path == "/healthz":
            self._send_json(200, app.health())
        elif self.path == "/metrics":
            self._send_text(200, prometheus_text())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        app = self.server.app
        if self.path != "/predict":
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        registry = get_registry()
        try:
            length = int(self.headers.get("Content-Length", 0))
            features = _parse_features(self.rfile.read(length))
            labels = app.predict(features)
        except RequestError as exc:
            registry.inc("serve.http.bad_request")
            self._send_json(400, {"error": str(exc)})
        except OverloadShedError as exc:
            registry.inc("serve.http.shed")
            self._send_json(503, {"error": str(exc), "retryable": True},
                            headers={"Retry-After": "1"})
        except DeadlineExceededError as exc:
            registry.inc("serve.http.deadline")
            self._send_json(504, {"error": str(exc), "retryable": True})
        except Exception as exc:  # engine failure
            registry.inc("serve.http.internal_error")
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send_json(200, {
                "labels": [int(label) for label in labels],
                "model": app.engine.bundle.info.get("config_fingerprint"),
            })


def _parse_features(body: bytes) -> np.ndarray:
    """Decode and shape-check the /predict request body."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise RequestError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "features" not in payload:
        raise RequestError('request body must be {"features": [...]}')
    try:
        features = np.asarray(payload["features"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise RequestError(f"features are not numeric: {exc}") from exc
    if features.ndim == 1:
        features = features[None, :]
    if features.ndim != 2 or features.size == 0:
        raise RequestError(
            f"features must be a (n, F) matrix, got shape "
            f"{features.shape}")
    if not np.isfinite(features).all():
        raise RequestError("features contain NaN/Inf")
    return features


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    app: "ModelServer"


class ModelServer:
    """HTTP front end around an engine + micro-batcher.

    Parameters
    ----------
    engine:
        The :class:`InferenceEngine` to serve.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (tests).
    max_batch_size, max_latency_ms, workers:
        Micro-batcher tuning (see :class:`MicroBatcher`).
    high_watermark:
        Queue depth at which admission control starts shedding
        (hysteresis down to ``high_watermark // 2``); ``None`` disables
        shedding.
    timeout_s:
        Default per-request deadline inside the batcher.
    """

    def __init__(self, engine: InferenceEngine, host: str = "127.0.0.1",
                 port: int = 0, max_batch_size: int = 32,
                 max_latency_ms: float = 5.0, workers: int = 2,
                 high_watermark: Optional[int] = 128,
                 timeout_s: Optional[float] = 5.0):
        self.engine = engine
        self.shedder = (LoadShedder(high_watermark)
                        if high_watermark else None)
        self.batcher = MicroBatcher(
            engine.predict_features, max_batch_size=max_batch_size,
            max_latency_ms=max_latency_ms, workers=workers,
            shedder=self.shedder, default_timeout_s=timeout_s)
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.app = self
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """Actual ``(host, port)`` after binding (resolves ``port=0``)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def predict(self, features: np.ndarray) -> list:
        """Route the request through the micro-batcher (blocking).

        All rows of a multi-sample request are enqueued atomically so
        the workers can batch them together (and with rows from other
        concurrent connections).
        """
        return self.batcher.submit_all(features)

    def health(self) -> Dict[str, Any]:
        shedding = bool(self.shedder is not None and self.shedder.shedding)
        return {
            "status": "shedding" if shedding else "ok",
            "engine": self.engine.describe(),
            "batcher": {"depth": self.batcher.depth,
                        **self.batcher.stats},
            "shedder": (None if self.shedder is None
                        else {"high": self.shedder.high_watermark,
                              "low": self.shedder.low_watermark,
                              "shedding": shedding,
                              **self.shedder.stats}),
        }

    # ------------------------------------------------------------------
    def start(self) -> "ModelServer":
        """Serve in a background thread; returns self (fluent)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._started = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="model-server",
            daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (CLI entry point)."""
        self._started = True
        try:
            self._httpd.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        """Shut down the HTTP listener and drain the batcher."""
        if self._started:
            # shutdown() synchronizes with a serve_forever loop; calling
            # it on a never-served listener would block forever.
            self._httpd.shutdown()
        self._httpd.server_close()
        self.batcher.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
