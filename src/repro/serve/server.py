"""Stdlib HTTP model server: /predict, /healthz, /metrics.

:class:`ModelServer` wires an :class:`~repro.serve.engine.InferenceEngine`
behind a :class:`~repro.serve.batching.MicroBatcher` and exposes it over
``http.server`` (zero dependencies; ``ThreadingHTTPServer`` gives one
handler thread per connection, which is exactly what feeds the
micro-batcher concurrent submits to coalesce).

Endpoints
---------
``POST /predict``
    Body ``{"features": [[...], ...]}`` (one row per sample; a single
    flat list is treated as one sample).  Response
    ``{"labels": [...], "model": <config fingerprint>}``.
    Degradation mapping: admission-control rejection → **503** with
    ``Retry-After``; per-request deadline expiry → **504**; malformed
    input → **400**; engine failure → **500**.
``GET /healthz``
    Engine + batcher + shedder facts as JSON (status ``ok`` /
    ``shedding``).
``GET /metrics``
    Prometheus text exposition of the process-global telemetry registry
    (the same counters/histograms the batcher and engine populate).
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..reliability.degrade import (DeadlineExceededError, LoadShedder,
                                   OverloadShedError)
from ..telemetry import get_registry, prometheus_text
from .batching import MicroBatcher
from .bundle import BundleError, ModelBundle
from .engine import EngineSelfCheckError, InferenceEngine

__all__ = ["ModelServer", "RequestError", "ReloadError"]


class ReloadError(RuntimeError):
    """A hot reload was requested but could not be satisfied."""


class RequestError(ValueError):
    """Client-side error (malformed JSON / wrong feature shape): HTTP 400."""


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ModelServer`."""

    protocol_version = "HTTP/1.1"
    server: "_HTTPServer"

    # -- helpers -------------------------------------------------------
    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        # Access logs go to the metrics registry, not stderr (tests and
        # benchmarks would otherwise drown in per-request lines).
        get_registry().inc("serve.http.requests")

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        app = self.server.app
        if self.path == "/healthz":
            self._send_json(200, app.health())
        elif self.path == "/metrics":
            self._send_text(200, prometheus_text())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        app = self.server.app
        if self.path == "/reload":
            self._do_reload(app)
            return
        if self.path != "/predict":
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        registry = get_registry()
        try:
            length = int(self.headers.get("Content-Length", 0))
            features = _parse_features(self.rfile.read(length))
            labels = app.predict(features)
        except RequestError as exc:
            registry.inc("serve.http.bad_request")
            self._send_json(400, {"error": str(exc)})
        except OverloadShedError as exc:
            registry.inc("serve.http.shed")
            self._send_json(503, {"error": str(exc), "retryable": True},
                            headers={"Retry-After": "1"})
        except DeadlineExceededError as exc:
            registry.inc("serve.http.deadline")
            self._send_json(504, {"error": str(exc), "retryable": True})
        except Exception as exc:  # engine failure
            registry.inc("serve.http.internal_error")
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send_json(200, {
                "labels": [int(label) for label in labels],
                "model": app.engine.bundle.info.get("config_fingerprint"),
            })

    def _do_reload(self, app: "ModelServer") -> None:
        """``POST /reload``: swap in a re-verified bundle (or refuse).

        An optional JSON body ``{"bundle": "path.npz"}`` points the
        server at a *new* artifact; otherwise the configured
        ``bundle_path`` is re-read.  A torn, invalid, or incompatible
        bundle returns **409** and the old engine keeps serving.
        """
        registry = get_registry()
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length) if length else b""
            path = None
            if body.strip():
                try:
                    payload = json.loads(body.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise RequestError(
                        f"reload body is not valid JSON: {exc}") from exc
                if not isinstance(payload, dict):
                    raise RequestError(
                        'reload body must be {"bundle": "path"}')
                path = payload.get("bundle")
            info = app.reload(path)
        except RequestError as exc:
            registry.inc("serve.http.bad_request")
            self._send_json(400, {"error": str(exc)})
        except ReloadError as exc:
            registry.inc("serve.reload.rejected")
            self._send_json(409, {"error": str(exc), "reloaded": False})
        else:
            self._send_json(200, info)


def _parse_features(body: bytes) -> np.ndarray:
    """Decode and shape-check the /predict request body."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise RequestError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "features" not in payload:
        raise RequestError('request body must be {"features": [...]}')
    try:
        features = np.asarray(payload["features"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise RequestError(f"features are not numeric: {exc}") from exc
    if features.ndim == 1:
        features = features[None, :]
    if features.ndim != 2 or features.size == 0:
        raise RequestError(
            f"features must be a (n, F) matrix, got shape "
            f"{features.shape}")
    if not np.isfinite(features).all():
        raise RequestError("features contain NaN/Inf")
    return features


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    app: "ModelServer"


class ModelServer:
    """HTTP front end around an engine + micro-batcher.

    Parameters
    ----------
    engine:
        The :class:`InferenceEngine` to serve.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (tests).
    max_batch_size, max_latency_ms, workers:
        Micro-batcher tuning (see :class:`MicroBatcher`).
    high_watermark:
        Queue depth at which admission control starts shedding
        (hysteresis down to ``high_watermark // 2``); ``None`` disables
        shedding.
    timeout_s:
        Default per-request deadline inside the batcher.
    bundle_path:
        Where this server's bundle lives on disk.  Enables hot reload
        (``POST /reload`` / SIGHUP): the path is re-verified and a fresh
        engine is atomically swapped behind the batcher.
    engine_options:
        Keyword arguments for the :class:`InferenceEngine` built on
        reload (``cache_size``, ``use_packed``, ...).  Defaults to the
        current engine's cache capacity with packed auto-selection.
    """

    def __init__(self, engine: InferenceEngine, host: str = "127.0.0.1",
                 port: int = 0, max_batch_size: int = 32,
                 max_latency_ms: float = 5.0, workers: int = 2,
                 high_watermark: Optional[int] = 128,
                 timeout_s: Optional[float] = 5.0,
                 bundle_path: Optional[str] = None,
                 engine_options: Optional[Dict[str, Any]] = None):
        self.engine = engine
        self.bundle_path = bundle_path
        if engine_options is None:
            # Test doubles may not implement the full engine surface;
            # fall back to engine defaults on reload in that case.
            cache_info = getattr(engine, "cache_info", None)
            engine_options = ({"cache_size": cache_info()["max_entries"]}
                              if callable(cache_info) else {})
        self.engine_options = dict(engine_options)
        self.reloads = 0
        self._reload_lock = threading.Lock()
        self.shedder = (LoadShedder(high_watermark)
                        if high_watermark else None)
        # The batcher calls through ``_predict_batch`` (which reads
        # ``self.engine`` per batch) instead of a bound method, so a hot
        # reload only has to swap the attribute — in-flight batches
        # finish on whichever engine they started with.
        self.batcher = MicroBatcher(
            self._predict_batch, max_batch_size=max_batch_size,
            max_latency_ms=max_latency_ms, workers=workers,
            shedder=self.shedder, default_timeout_s=timeout_s)
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.app = self
        self._thread: Optional[threading.Thread] = None
        self._started = False

    def _predict_batch(self, features: np.ndarray) -> np.ndarray:
        return self.engine.predict_features(features)

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """Actual ``(host, port)`` after binding (resolves ``port=0``)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def predict(self, features: np.ndarray) -> list:
        """Route the request through the micro-batcher (blocking).

        All rows of a multi-sample request are enqueued atomically so
        the workers can batch them together (and with rows from other
        concurrent connections).
        """
        return self.batcher.submit_all(features)

    def health(self) -> Dict[str, Any]:
        shedding = bool(self.shedder is not None and self.shedder.shedding)
        return {
            "status": "shedding" if shedding else "ok",
            "engine": self.engine.describe(),
            "bundle_path": self.bundle_path,
            "reloads": self.reloads,
            "batcher": {"depth": self.batcher.depth,
                        **self.batcher.stats},
            "shedder": (None if self.shedder is None
                        else {"high": self.shedder.high_watermark,
                              "low": self.shedder.low_watermark,
                              "shedding": shedding,
                              **self.shedder.stats}),
        }

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def reload(self, bundle_path: Optional[str] = None) -> Dict[str, Any]:
        """Atomically swap in a freshly ``verify()``-ed engine.

        The new bundle is CRC-verified, structurally validated, and
        engine-constructed (including the packed-path selfcheck)
        *before* the swap — any failure raises :class:`ReloadError` and
        the old engine keeps serving untouched.  Returns a summary dict
        (also the ``POST /reload`` response body).
        """
        path = bundle_path or self.bundle_path
        if not path:
            raise ReloadError(
                "no bundle path configured — start the server with "
                "bundle_path= (or POST {\"bundle\": \"path\"})")
        with self._reload_lock:
            try:
                ModelBundle.verify(path)
                engine = InferenceEngine.from_path(path,
                                                   **self.engine_options)
            except (BundleError, EngineSelfCheckError, OSError) as exc:
                raise ReloadError(
                    f"reload of {path!r} rejected "
                    f"({type(exc).__name__}: {exc}); "
                    "previous engine keeps serving") from exc
            old_fingerprint = self.engine.bundle.info.get(
                "config_fingerprint")
            self.engine = engine  # atomic swap behind _predict_batch
            self.bundle_path = path
            self.reloads += 1
            get_registry().inc("serve.reload.success")
        return {
            "reloaded": True,
            "reloads": self.reloads,
            "bundle_path": path,
            "previous_fingerprint": old_fingerprint,
            "engine": engine.describe(),
        }

    def install_signal_handlers(self) -> bool:
        """Route ``SIGHUP`` to :meth:`reload` (main thread only).

        Returns whether the handler was installed; a failed reload from
        a signal never propagates (the old engine keeps serving and the
        rejection is counted in ``serve.reload.rejected``).
        """
        if threading.current_thread() is not threading.main_thread():
            return False

        def _on_hup(signum, frame):  # pragma: no cover - signal path
            try:
                self.reload()
            except ReloadError:
                get_registry().inc("serve.reload.rejected")

        try:
            signal.signal(signal.SIGHUP, _on_hup)
        except (ValueError, OSError, AttributeError):
            return False
        return True

    # ------------------------------------------------------------------
    def start(self) -> "ModelServer":
        """Serve in a background thread; returns self (fluent)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._started = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="model-server",
            daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (CLI entry point).

        Installs the SIGHUP → :meth:`reload` handler when running on
        the main thread.
        """
        self._started = True
        self.install_signal_handlers()
        try:
            self._httpd.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        """Shut down the HTTP listener and drain the batcher."""
        if self._started:
            # shutdown() synchronizes with a serve_forever loop; calling
            # it on a never-served listener would block forever.
            self._httpd.shutdown()
        self._httpd.server_close()
        self.batcher.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
