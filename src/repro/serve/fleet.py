"""Fleet supervision: spawn, probe, restart, quarantine worker processes.

A single :class:`~repro.serve.server.ModelServer` dies with its host
process; the paper's cheap-to-serve-anywhere claim needs a story for
crashes, hangs, and poisoned reloads.  :class:`Supervisor` provides it:

* **Spawn** — N worker processes, each a ``python -m repro.serve``
  instance serving the *same* bundle on its own port (so responses are
  interchangeable across the fleet and a router can hash over them).
* **Probe** — per-worker heartbeats: process liveness
  (``Popen.poll``) plus an HTTP ``/healthz`` probe with a timeout.  A
  worker whose process is alive but whose probe times out
  ``hang_probe_limit`` times in a row is *hung* — it is SIGKILLed and
  treated like a crash (this is what the chaos harness's ``/slow``
  stall exercises).
* **Restart** — crashed/hung workers respawn after exponential backoff
  (``backoff_base_s · 2^(recent failures − 1)``, capped at
  ``backoff_max_s``).
* **Quarantine** — ``crash_loop_threshold`` failures inside
  ``crash_loop_window_s`` mark the worker quarantined: the supervisor
  stops restarting it and the fleet degrades to the surviving workers
  instead of flapping.  ``revive()`` is the operator override.
* **Stop** — graceful: SIGTERM every worker (each drains its
  micro-batcher, see :meth:`ModelServer.drain`), wait ``grace_s``,
  SIGKILL stragglers.

Per-worker gauges/counters land in the telemetry registry
(``fleet.worker.<id>.up`` / ``.restarts`` / ``.quarantined`` and the
aggregate ``fleet.workers.up``), so the router's ``/metrics`` exposes
fleet state with no extra plumbing.

``spawn_fn`` / ``probe_fn`` / ``clock`` are injectable, and
:meth:`Supervisor.tick` runs one monitor pass synchronously, so the
backoff/quarantine state machine is unit-testable with fake processes
and a fake clock.  :class:`StaticFleet` is the inert stand-in used to
test the router against in-process servers.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..telemetry import clock as _default_clock
from ..telemetry import get_registry

__all__ = ["Supervisor", "StaticFleet", "Worker", "FleetError",
           "free_port"]

#: Worker lifecycle states.
STARTING = "starting"
UP = "up"
BACKOFF = "backoff"
QUARANTINED = "quarantined"
STOPPED = "stopped"

#: /healthz statuses that count as "ready to take traffic".
_READY_STATUSES = ("ok", "shedding")


class FleetError(RuntimeError):
    """The fleet could not reach the requested state."""


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (bind-probe; tiny race accepted —
    the worker's own bind fails loudly if it loses it)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class Worker:
    """One supervised worker slot (identity survives restarts)."""

    def __init__(self, worker_id: str, host: str, port: int):
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self.process: Optional[Any] = None  # Popen-shaped
        self.state = STOPPED
        self.restarts = 0
        self.consecutive_probe_failures = 0
        self.failure_times: List[float] = []
        self.backoff_until = 0.0
        self.started_at = 0.0
        self.last_probe: Optional[Dict[str, Any]] = None
        self.last_failure_reason: Optional[str] = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def describe(self) -> Dict[str, Any]:
        return {
            "id": self.worker_id,
            "url": self.url,
            "state": self.state,
            "restarts": self.restarts,
            "pid": getattr(self.process, "pid", None),
            "consecutive_probe_failures": self.consecutive_probe_failures,
            "last_failure": self.last_failure_reason,
        }

    def __repr__(self) -> str:
        return (f"Worker({self.worker_id}, {self.url}, "
                f"state={self.state}, restarts={self.restarts})")


class Supervisor:
    """Spawn and babysit N model-server worker processes.

    Parameters
    ----------
    bundle_path:
        The bundle every worker serves.
    workers:
        Fleet size.
    host:
        Bind host for the workers.
    ports:
        Explicit worker ports; default allocates free ones.
    probe_interval_s / probe_timeout_s:
        Heartbeat cadence and per-probe timeout.  The timeout is the
        hang detector: a wedged worker cannot answer ``/healthz``.
    hang_probe_limit:
        Consecutive failed probes (process still alive) before the
        worker is declared hung and SIGKILLed.
    startup_timeout_s:
        How long a freshly spawned worker may stay unready before the
        spawn itself counts as a failure.
    backoff_base_s / backoff_max_s:
        Exponential restart backoff bounds.
    crash_loop_threshold / crash_loop_window_s:
        K failures in W seconds quarantines the worker.
    worker_args:
        Extra CLI flags for each worker (batcher/engine tuning).
    chaos:
        Arm the workers' ``POST /slow`` fault-injection endpoint
        (``REPRO_SERVE_CHAOS=1`` in the child environment).
    trace_dir:
        Enable request tracing in every spawned worker and point its
        JSONL span exporter at this directory (``REPRO_TRACE_DIR`` in
        the child environment) — each worker writes
        ``trace-<service>-<pid>.jsonl`` there and the cross-process
        stitcher joins them with the router's file.
    trace_sample:
        Worker-side head-sampling rate forwarded as
        ``REPRO_TRACE_SAMPLE`` (only meaningful with ``trace_dir``).
    log_dir:
        Per-worker stdout/stderr capture files (default: devnull).
    spawn_fn / probe_fn / clock:
        Injection points for unit tests — ``spawn_fn(worker)`` returns
        a Popen-shaped object, ``probe_fn(worker)`` returns the parsed
        ``/healthz`` payload or ``None``.
    """

    def __init__(self, bundle_path: str, workers: int = 4,
                 host: str = "127.0.0.1",
                 ports: Optional[Sequence[int]] = None,
                 probe_interval_s: float = 0.25,
                 probe_timeout_s: float = 1.0,
                 hang_probe_limit: int = 3,
                 startup_timeout_s: float = 30.0,
                 backoff_base_s: float = 0.25,
                 backoff_max_s: float = 8.0,
                 crash_loop_threshold: int = 5,
                 crash_loop_window_s: float = 30.0,
                 worker_args: Sequence[str] = (),
                 chaos: bool = False,
                 trace_dir: Optional[str] = None,
                 trace_sample: Optional[float] = None,
                 log_dir: Optional[str] = None,
                 spawn_fn: Optional[Callable[["Worker"], Any]] = None,
                 probe_fn: Optional[
                     Callable[["Worker"],
                              Optional[Dict[str, Any]]]] = None,
                 clock: Optional[Callable[[], float]] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if ports is not None and len(ports) != workers:
            raise ValueError(f"need {workers} ports, got {len(ports)}")
        self.bundle_path = bundle_path
        self.host = host
        self.probe_interval_s = float(probe_interval_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.hang_probe_limit = int(hang_probe_limit)
        self.startup_timeout_s = float(startup_timeout_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.crash_loop_threshold = int(crash_loop_threshold)
        self.crash_loop_window_s = float(crash_loop_window_s)
        self.worker_args = list(worker_args)
        self.chaos = bool(chaos)
        self.trace_dir = trace_dir
        self.trace_sample = trace_sample
        self.log_dir = log_dir
        self._spawn_fn = spawn_fn or self._default_spawn
        self._probe_fn = probe_fn or self._default_probe
        self._clock = clock if clock is not None else _default_clock
        ports = list(ports) if ports is not None else [
            free_port(host) for _ in range(workers)]
        self.workers: List[Worker] = [
            Worker(f"w{i}", host, ports[i]) for i in range(workers)]
        self._lock = threading.RLock()
        self._stop_event = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._log_handles: List[Any] = []

    # ------------------------------------------------------------------
    # Spawning and probing (default implementations)
    # ------------------------------------------------------------------
    def _default_spawn(self, worker: Worker):
        import repro
        cmd = [sys.executable, "-m", "repro.serve", self.bundle_path,
               "--host", worker.host, "--port", str(worker.port),
               *self.worker_args]
        env = dict(os.environ)
        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        if self.chaos:
            env["REPRO_SERVE_CHAOS"] = "1"
        if self.trace_dir:
            env["REPRO_TRACE"] = "1"
            env["REPRO_TRACE_DIR"] = self.trace_dir
            if self.trace_sample is not None:
                env["REPRO_TRACE_SAMPLE"] = str(self.trace_sample)
        if self.log_dir:
            os.makedirs(self.log_dir, exist_ok=True)
            handle = open(os.path.join(
                self.log_dir, f"{worker.worker_id}.log"), "ab")
            self._log_handles.append(handle)
            out = handle
        else:
            out = subprocess.DEVNULL
        return subprocess.Popen(cmd, env=env, stdout=out,
                                stderr=subprocess.STDOUT)

    def _default_probe(self, worker: Worker) -> Optional[Dict[str, Any]]:
        try:
            with urllib.request.urlopen(
                    worker.url + "/healthz",
                    timeout=self.probe_timeout_s) as response:
                return json.loads(response.read())
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, wait_ready: bool = True,
              timeout_s: Optional[float] = None) -> "Supervisor":
        """Spawn the fleet and begin monitoring; optionally block until
        every worker answered its first probe."""
        with self._lock:
            for worker in self.workers:
                if worker.state == STOPPED:
                    self._spawn(worker)
        self._stop_event.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-supervisor",
            daemon=True)
        self._monitor.start()
        if wait_ready:
            self.wait_ready(timeout_s)
        return self

    def wait_ready(self, timeout_s: Optional[float] = None,
                   min_up: Optional[int] = None) -> None:
        """Block until ``min_up`` (default: all non-quarantined)
        workers are up; :class:`FleetError` on timeout."""
        timeout_s = (self.startup_timeout_s if timeout_s is None
                     else timeout_s)
        deadline = self._clock() + timeout_s
        while True:
            with self._lock:
                up = sum(w.state == UP for w in self.workers)
                alive = sum(w.state != QUARANTINED for w in self.workers)
            need = alive if min_up is None else min(min_up, alive)
            if need and up >= need:
                return
            if self._clock() >= deadline:
                raise FleetError(
                    f"fleet not ready after {timeout_s:.1f}s: "
                    f"{[w.describe() for w in self.workers]}")
            self._stop_event.wait(0.05)

    def _spawn(self, worker: Worker) -> None:
        worker.process = self._spawn_fn(worker)
        worker.state = STARTING
        worker.started_at = self._clock()
        worker.consecutive_probe_failures = 0
        self._update_gauges()

    def _monitor_loop(self) -> None:
        while not self._stop_event.is_set():
            self.tick()
            self._stop_event.wait(self.probe_interval_s)

    # ------------------------------------------------------------------
    # One monitor pass (public for deterministic unit tests)
    # ------------------------------------------------------------------
    def tick(self) -> None:
        # The health probe is a network call with a timeout: it must
        # NOT run under the fleet lock, or a hung worker would stall
        # every ``healthy_workers()`` read (and therefore the router)
        # for probe_timeout_s per tick.  State mutations take the lock;
        # the router tolerates the resulting staleness by retrying.
        for worker in list(self.workers):
            self._tick_worker(worker)
        with self._lock:
            self._update_gauges()

    def _tick_worker(self, worker: Worker) -> None:
        now = self._clock()
        if worker.state in (QUARANTINED, STOPPED):
            return
        if worker.state == BACKOFF:
            if now >= worker.backoff_until:
                with self._lock:
                    if worker.state == BACKOFF:
                        self._spawn(worker)
            return
        process = worker.process
        if process is not None and process.poll() is not None:
            with self._lock:
                self._on_failure(worker,
                                 f"exited with code {process.poll()}")
            return
        payload = self._probe_fn(worker)
        ready = bool(payload) and payload.get("status") in _READY_STATUSES
        if ready:
            worker.consecutive_probe_failures = 0
            worker.last_probe = payload
            if worker.state == STARTING:
                with self._lock:
                    if worker.state == STARTING:
                        worker.state = UP
            return
        worker.consecutive_probe_failures += 1
        if worker.state == STARTING:
            if now - worker.started_at >= self.startup_timeout_s:
                self._kill(worker)
                with self._lock:
                    self._on_failure(worker, "startup timeout")
            return
        if worker.consecutive_probe_failures >= self.hang_probe_limit:
            # Alive but unresponsive: hung.  Kill hard and restart.
            self._kill(worker)
            with self._lock:
                self._on_failure(
                    worker,
                    f"hung ({worker.consecutive_probe_failures} probes "
                    f"timed out)")

    def _kill(self, worker: Worker) -> None:
        process = worker.process
        if process is not None and process.poll() is None:
            try:
                process.kill()
                process.wait(timeout=5.0)
            except Exception:
                pass

    def _on_failure(self, worker: Worker, reason: str) -> None:
        now = self._clock()
        registry = get_registry()
        worker.last_failure_reason = reason
        worker.restarts += 1
        worker.process = None
        registry.inc(f"fleet.worker.{worker.worker_id}.restarts")
        registry.inc("fleet.supervisor.failures")
        worker.failure_times = [
            t for t in worker.failure_times
            if now - t <= self.crash_loop_window_s] + [now]
        if len(worker.failure_times) >= self.crash_loop_threshold:
            worker.state = QUARANTINED
            registry.inc("fleet.supervisor.quarantined")
            registry.set_gauge(
                f"fleet.worker.{worker.worker_id}.quarantined", 1.0)
            return
        recent = len(worker.failure_times)
        backoff = min(self.backoff_max_s,
                      self.backoff_base_s * (2.0 ** (recent - 1)))
        worker.backoff_until = now + backoff
        worker.state = BACKOFF

    def revive(self, worker_id: str) -> None:
        """Operator override: clear quarantine and respawn."""
        with self._lock:
            worker = self._worker(worker_id)
            if worker.state != QUARANTINED:
                raise FleetError(
                    f"{worker_id} is {worker.state}, not quarantined")
            worker.failure_times = []
            get_registry().set_gauge(
                f"fleet.worker.{worker_id}.quarantined", 0.0)
            self._spawn(worker)

    def stop(self, grace_s: float = 5.0) -> None:
        """Graceful fleet stop: SIGTERM (workers drain), then SIGKILL."""
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._lock:
            live = [w for w in self.workers
                    if w.process is not None and w.process.poll() is None]
            for worker in live:
                try:
                    worker.process.send_signal(signal.SIGTERM)
                except Exception:
                    pass
            deadline = self._clock() + grace_s
            for worker in live:
                remaining = max(0.0, deadline - self._clock())
                try:
                    worker.process.wait(timeout=remaining)
                except Exception:
                    self._kill(worker)
            for worker in self.workers:
                worker.state = STOPPED
                worker.process = None
            self._update_gauges()
        for handle in self._log_handles:
            try:
                handle.close()
            except Exception:
                pass
        self._log_handles = []

    # ------------------------------------------------------------------
    # Chaos / introspection surface
    # ------------------------------------------------------------------
    def _worker(self, worker_id: str) -> Worker:
        for worker in self.workers:
            if worker.worker_id == worker_id:
                return worker
        raise FleetError(f"no worker {worker_id!r}")

    def kill_worker(self, worker_id: str) -> int:
        """SIGKILL one worker (chaos harness); returns the dead pid.

        The monitor's next tick sees the exit and schedules the
        restart — exactly the code path a real crash takes.
        """
        with self._lock:
            worker = self._worker(worker_id)
            process = worker.process
            if process is None or process.poll() is not None:
                raise FleetError(f"{worker_id} has no live process")
            pid = process.pid
        process.kill()
        process.wait(timeout=5.0)
        return pid

    def all_workers(self) -> List[Tuple[str, Tuple[str, int]]]:
        """Stable ``(worker_id, (host, port))`` membership (the hash
        ring is built over this, so key → worker stays stable while
        health flips)."""
        with self._lock:
            return [(w.worker_id, w.address) for w in self.workers]

    def healthy_workers(self) -> List[Tuple[str, Tuple[str, int]]]:
        """Workers currently in rotation (state ``up``)."""
        with self._lock:
            return [(w.worker_id, w.address) for w in self.workers
                    if w.state == UP]

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            states = [w.describe() for w in self.workers]
        up = sum(1 for s in states if s["state"] == UP)
        return {
            "bundle_path": self.bundle_path,
            "size": len(states),
            "up": up,
            "quarantined": sum(1 for s in states
                               if s["state"] == QUARANTINED),
            "restarts": sum(s["restarts"] for s in states),
            "workers": states,
        }

    def _update_gauges(self) -> None:
        registry = get_registry()
        up = 0
        for worker in self.workers:
            is_up = 1.0 if worker.state == UP else 0.0
            up += int(is_up)
            registry.set_gauge(f"fleet.worker.{worker.worker_id}.up",
                               is_up)
        registry.set_gauge("fleet.workers.up", float(up))
        registry.set_gauge("fleet.workers.size", float(len(self.workers)))

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        with self._lock:
            states = {w.worker_id: w.state for w in self.workers}
        return f"Supervisor({self.bundle_path!r}, workers={states})"


class StaticFleet:
    """Inert fleet over pre-existing servers (router tests / embedding).

    Wraps a list of ``(host, port)`` addresses with a manual health
    toggle — the router only needs ``all_workers`` / ``healthy_workers``
    / ``describe``, so in-process :class:`ModelServer` instances can
    stand in for supervised processes.
    """

    def __init__(self, addresses: Sequence[Tuple[str, int]]):
        self._workers = [(f"w{i}", (host, int(port)))
                         for i, (host, port) in enumerate(addresses)]
        self._healthy = {worker_id: True for worker_id, _ in self._workers}

    def all_workers(self) -> List[Tuple[str, Tuple[str, int]]]:
        return list(self._workers)

    def healthy_workers(self) -> List[Tuple[str, Tuple[str, int]]]:
        return [(worker_id, addr) for worker_id, addr in self._workers
                if self._healthy[worker_id]]

    def set_healthy(self, worker_id: str, healthy: bool) -> None:
        if worker_id not in self._healthy:
            raise FleetError(f"no worker {worker_id!r}")
        self._healthy[worker_id] = bool(healthy)

    def describe(self) -> Dict[str, Any]:
        return {
            "size": len(self._workers),
            "up": sum(self._healthy.values()),
            "quarantined": 0,
            "restarts": 0,
            "workers": [{"id": worker_id,
                         "url": f"http://{host}:{port}",
                         "state": UP if self._healthy[worker_id]
                         else STOPPED,
                         "restarts": 0}
                        for worker_id, (host, port) in self._workers],
        }

    def stop(self, grace_s: float = 0.0) -> None:
        """No-op (the embedded servers own their lifecycle)."""
