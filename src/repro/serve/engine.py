"""The serving inference engine: a thin executor over a frozen StageGraph.

:class:`InferenceEngine` serves a :class:`repro.serve.bundle.ModelBundle`
by executing the bundle's :class:`repro.pipeline.StageGraph`
(``bundle.build_graph()``) — the *same* stage implementations the
training pipelines run, so predictions are bit-exact with
``pipeline.predict`` by construction rather than by replication.  The
engine itself contains **no stage math**: no scaling, no manifold
reduction, no encoding, no similarity expressions — it adds exactly the
serving concerns:

* an LRU cache keyed by the sha1 of each sample's raw feature bytes that
  memoizes encoded hypervectors, so repeated queries skip the projection
  GEMM entirely (``serve.cache.hits`` / ``serve.cache.misses``);
* automatic selection of the **bit-packed XOR-popcount fast path**
  (:class:`repro.pipeline.PackedClassifyStage`) when the bundle's class
  matrix is bipolar (``binarize=True`` export) and the encoder emits
  bipolar queries — it ranks identically to the float cosine stage for
  bipolar operands (integer dots, no rounding);
* a load-time :meth:`selfcheck` proving the packed stage agrees with the
  float reference kernels on random probes;
* request/sample counters and ``serve.*`` spans for the telemetry layer.

Pre-refactor bundles (no ``info["graph"]`` topology) are served through
the same code path: :meth:`ModelBundle.build_graph` synthesizes the
equivalent topology from the legacy provenance fields.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

import numpy as np

from ..hd.similarity import classify
from ..pipeline import (ClassifyStage, CompileError, ExtractStage,
                        FlattenStage, StageCache, compile_graph)
from ..telemetry import get_registry, request_span, span
from ..telemetry.quality import DriftMonitor, QualityBaseline
from ..utils.rng import fresh_rng
from .bundle import BundleError, ModelBundle

__all__ = ["InferenceEngine", "EngineSelfCheckError"]


class EngineSelfCheckError(RuntimeError):
    """The packed fast path disagreed with the reference kernel."""


class _EncodedLRU:
    """Thread-safe LRU of encoded hypervectors keyed by feature digest."""

    def __init__(self, max_entries: int):
        self.max_entries = int(max_entries)
        self._data: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: bytes) -> Optional[np.ndarray]:
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: bytes, value: np.ndarray) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def info(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._data), "hits": self.hits,
                    "misses": self.misses,
                    "max_entries": self.max_entries}


class InferenceEngine:
    """Cache-accelerated StageGraph executor over a frozen model bundle.

    Parameters
    ----------
    bundle:
        A validated :class:`ModelBundle` (``validate()`` is called here).
    use_packed:
        Force (True) or forbid (False) the bit-packed XOR-popcount path;
        default ``None`` auto-enables it when the class matrix is
        strictly bipolar.  Forcing it on a non-binary bundle raises.
    cache_size:
        LRU capacity (entries) for encoded hypervectors; 0 disables.
    build_extractor:
        Keep the truncated-CNN ``extract`` stage in the graph so
        :meth:`predict` accepts raw NCHW images.  Disable for servers
        that only ever receive precomputed features.
    selfcheck:
        Run :meth:`selfcheck` at construction when the packed path is
        active (cheap: a handful of random probes).
    quality:
        Force (True) or forbid (False) the streaming
        :class:`~repro.telemetry.quality.DriftMonitor`; default ``None``
        auto-enables it when the bundle manifest carries a
        ``quality_baseline`` section (``from_pipeline(...,
        baseline_features=...)`` export).  Forcing it on a bundle
        without a baseline raises :class:`BundleError`.
    quality_window:
        Rolling-window size (rows) for the drift monitor.
    passes:
        Compile passes to apply to the frozen graph: ``"all"``,
        ``"none"``, or a list of registered pass names.  Default
        ``None`` uses the bundle's persisted plan
        (``info["compile"]``); pre-compile bundles default to none.
    executors:
        Executor assignment: ``"auto"``, a ``{stage name → executor
        name}`` map, or ``None`` for the bundle's plan.  The classify
        entry interacts with ``use_packed``: an explicit ``use_packed``
        always wins, an explicit classify executor settles the default,
        otherwise the historical auto-enable rule applies.
    stage_cache_size:
        Entry capacity of the digest-keyed :class:`StageCache` placed
        under ``encode_features`` batch runs; 0 (default) disables it
        (the per-sample encoded LRU already covers the request path —
        the stage cache pays off for repeated *batch* eval workloads).
    """

    def __init__(self, bundle: ModelBundle,
                 use_packed: Optional[bool] = None,
                 cache_size: int = 256,
                 build_extractor: bool = True,
                 selfcheck: bool = True,
                 quality: Optional[bool] = None,
                 quality_window: int = 512,
                 passes=None,
                 executors=None,
                 stage_cache_size: int = 0):
        bundle.validate()
        self.bundle = bundle
        info = bundle.info
        self.dim = int(info["dim"])
        self.num_classes = int(info["num_classes"])
        self.pipeline_name = str(info["pipeline"])

        # -- the executable: one frozen stage graph --------------------
        base = bundle.build_graph(build_extractor=build_extractor)
        plan = bundle.compile_plan()
        if passes is None:
            passes = list(plan.passes)
        if executors is None:
            executors = plan.executors
        classify_stage = base.stages[-1]
        if not isinstance(classify_stage, ClassifyStage):
            raise BundleError(
                f"bundle graph must end in a classify stage, got "
                f"{type(classify_stage).__name__}")
        encode_stage = next(
            (stage for stage in base.stages
             if getattr(stage, "encoder_type", None) is not None), None)
        if encode_stage is None:
            raise BundleError("bundle graph has no encode stage")
        self._encoder_type = encode_stage.encoder_type
        self._encoder_quantize = bool(encode_stage.quantize)

        # -- packed fast-path selection (now an executor binding) ------
        binary = bundle.binary_classes
        classify_name = classify_stage.name
        exec_map = (dict(executors) if isinstance(executors, dict)
                    else {})
        if use_packed is None:
            explicit = exec_map.get(classify_name)
            if explicit is not None:
                use_packed = explicit == "packed"
            else:
                use_packed = binary and self._encoder_quantize \
                    and self._encoder_type == "random_projection"
        if use_packed and not binary:
            raise BundleError(
                "use_packed=True requires a bipolar class matrix — "
                "export the bundle with binarize=True")
        if use_packed and not self._encoder_quantize:
            raise BundleError(
                "use_packed=True requires a quantizing encoder (the "
                "queries must be bipolar to bit-pack); this bundle's "
                "encoder emits continuous hypervectors")
        if use_packed:
            exec_map[classify_name] = "packed"
        elif exec_map.get(classify_name) == "packed":
            del exec_map[classify_name]

        try:
            result = compile_graph(base, passes=passes,
                                   executors=exec_map)
        except CompileError as exc:
            raise BundleError(f"bundle graph failed to compile: "
                              f"{exc}") from exc
        self.graph = result.graph
        self.compile_passes = list(result.passes_applied)
        self.executor_plan = dict(result.executor_plan)

        # The float classify stage (for similarities / drift monitor)
        # and the executor actually answering requests.
        self._classify_exec = self.graph.stages[-1]
        self._classify = getattr(self._classify_exec, "inner",
                                 self._classify_exec)
        self._packed_stage = getattr(self._classify_exec, "packed", None)
        self.use_packed = self._packed_stage is not None

        # Feature interface: the first stage after extract/flatten (the
        # fuse passes may have renamed or removed interior stages).
        first = self.graph.stages[0]
        first_inner = getattr(first, "inner", first)
        self._has_front = isinstance(first_inner,
                                     (ExtractStage, FlattenStage))
        names = self.graph.names
        self._feature_entry = names[1] if self._has_front else names[0]
        self._classify_name = names[-1]
        self.extractor = (first_inner.extractor
                          if isinstance(first_inner, ExtractStage)
                          else None)

        self._cache = _EncodedLRU(cache_size) if cache_size > 0 else None
        self._stage_cache = (StageCache(max_entries=stage_cache_size)
                             if stage_cache_size > 0 else None)

        # -- streaming drift monitor (training baseline in manifest) ---
        baseline_dict = info.get("quality_baseline")
        if quality is None:
            quality = baseline_dict is not None
        if quality and baseline_dict is None:
            raise BundleError(
                "quality=True but the bundle carries no quality_baseline "
                "section — re-export it with "
                "ModelBundle.from_pipeline(..., baseline_features=...)")
        self.quality: Optional[DriftMonitor] = None
        if quality:
            self.quality = DriftMonitor(
                QualityBaseline.from_dict(baseline_dict),
                window=quality_window)

        if selfcheck and self.use_packed:
            self.selfcheck()

    # ------------------------------------------------------------------
    @classmethod
    def from_path(cls, path: str, **kwargs: Any) -> "InferenceEngine":
        """Verify + load a bundle archive and build an engine on it."""
        return cls(ModelBundle.load(path, verify=True), **kwargs)

    @property
    def class_matrix(self) -> np.ndarray:
        """The frozen class-hypervector matrix this engine serves.

        Public read access for the online-learning layer, which seeds
        its shadow copy from (and evaluates the live model against)
        exactly the matrix the classify stage answers with.  Callers
        must treat it as immutable — the frozen stage caches the class
        norms at construction.
        """
        return self._classify.class_matrix

    # -- packed-stage plumbing (kept for API/test compatibility) -------
    @property
    def _class_matrix(self) -> np.ndarray:
        return self._classify.class_matrix

    @property
    def _packed_classes(self) -> Optional[np.ndarray]:
        return (None if self._packed_stage is None
                else self._packed_stage.packed_classes)

    @_packed_classes.setter
    def _packed_classes(self, value: np.ndarray) -> None:
        if self._packed_stage is None:
            raise BundleError("engine has no packed fast path")
        self._packed_stage.packed_classes = np.asarray(value,
                                                       dtype=np.uint64)

    # ------------------------------------------------------------------
    def encode_features(self, raw_features: np.ndarray) -> np.ndarray:
        """Query hypervectors for ``(n, F)`` raw features (LRU-cached).

        Executes the graph's ``scale → (reduce) → encode`` slice; the
        LRU sits in front of it, keyed per sample.
        """
        raw_features = np.atleast_2d(
            np.asarray(raw_features, dtype=np.float64))
        registry = get_registry()
        if self._cache is None:
            with span("serve.encode", nbytes=int(raw_features.nbytes)):
                return self.graph.run(raw_features,
                                      start=self._feature_entry,
                                      stop=self._classify_name,
                                      cache=self._stage_cache)

        keys = [hashlib.sha1(np.ascontiguousarray(row).tobytes()).digest()
                for row in raw_features]
        encoded = np.empty((len(raw_features), self.dim), dtype=np.float64)
        miss_idx = []
        for i, key in enumerate(keys):
            hit = self._cache.get(key)
            if hit is None:
                miss_idx.append(i)
            else:
                encoded[i] = hit
        registry.inc("serve.cache.hits", len(keys) - len(miss_idx))
        registry.inc("serve.cache.misses", len(miss_idx))
        if miss_idx:
            misses = raw_features[miss_idx]
            with span("serve.encode", nbytes=int(misses.nbytes)):
                fresh = self.graph.run(misses,
                                       start=self._feature_entry,
                                       stop=self._classify_name,
                                       cache=self._stage_cache)
            for j, i in enumerate(miss_idx):
                encoded[i] = fresh[j]
                self._cache.put(keys[i], fresh[j].copy())
        return encoded

    def similarities(self, encoded: np.ndarray) -> np.ndarray:
        """Cosine similarities from the frozen classify stage.

        Bit-exact with :func:`repro.learn.mass.normalized_similarity`
        (same canonical expression in
        :func:`repro.pipeline.cosine_similarities`); the clamped class
        norms are cached by the frozen stage — they are constant.
        """
        return self._classify.similarities(encoded)

    # ------------------------------------------------------------------
    def predict_features(self, raw_features: np.ndarray) -> np.ndarray:
        """Class predictions for ``(n, F)`` raw extractor features."""
        registry = get_registry()
        raw_features = np.atleast_2d(
            np.asarray(raw_features, dtype=np.float64))
        registry.inc("serve.requests")
        registry.inc("serve.samples", len(raw_features))
        with span("serve.predict", nbytes=int(raw_features.nbytes)):
            encoded = self.encode_features(raw_features)
            # The classify stage runs outside graph.run (the encoded
            # LRU sits between), so give it its own request-trace stage
            # span — every StageGraph stage shows up per request.  The
            # stage itself is whatever executor compile() bound (float
            # cosine or the packed XOR-popcount wrapper).
            stage = self._classify_exec
            with request_span(getattr(stage, "span_name",
                                      "stage.similarity")):
                labels = np.asarray(stage(encoded))
            if self.quality is not None:
                self._observe_quality(raw_features, labels, encoded)
            return labels

    def _observe_quality(self, raw_features: np.ndarray,
                         labels: np.ndarray,
                         encoded: np.ndarray) -> None:
        """Feed the drift monitor; a monitor bug must never fail serving."""
        try:
            with span("serve.quality",
                      nbytes=int(raw_features.nbytes)):
                sims = self._classify.similarities(encoded)
                self.quality.observe(raw_features, labels=labels,
                                     similarities=sims, encoded=encoded)
        except Exception:
            get_registry().inc("quality.monitor_errors")

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class predictions for raw NCHW images (end-to-end)."""
        images = np.asarray(images)
        if not self._has_front:
            raise BundleError(
                "engine was built with build_extractor=False; "
                "use predict_features with precomputed features")
        raw = self.graph.run(images, stop=self._feature_entry)
        return self.predict_features(raw)

    def accuracy_features(self, raw_features: np.ndarray,
                          labels: np.ndarray) -> float:
        return float((self.predict_features(raw_features)
                      == np.asarray(labels)).mean())

    # ------------------------------------------------------------------
    def selfcheck(self, probes: int = 32, seed: int = 0) -> bool:
        """Prove the packed path agrees with the reference kernels.

        Draws random bipolar probe hypervectors and checks (1) the
        XOR-popcount classify stage returns the same labels as the float
        dot-product :func:`repro.hd.similarity.classify`, and (2) the
        frozen cosine classify stage agrees as well (for bipolar class
        matrices all three rank identically).  Raises
        :class:`EngineSelfCheckError` on any disagreement.
        """
        if not self.use_packed:
            return True
        rng = fresh_rng((seed, "serve-selfcheck"))
        hvs = np.where(rng.random((probes, self.dim)) < 0.5, -1.0, 1.0)
        got = self._packed_stage(hvs)
        want_dot = classify(self._class_matrix, hvs, metric="dot")
        want_cos = np.asarray(self._classify(hvs))
        if not np.array_equal(got, want_dot):
            raise EngineSelfCheckError(
                f"packed XOR-popcount disagrees with float dot on "
                f"{int((got != want_dot).sum())}/{probes} probes")
        if not np.array_equal(got, want_cos):
            raise EngineSelfCheckError(
                f"packed XOR-popcount disagrees with the cosine path on "
                f"{int((got != want_cos).sum())}/{probes} probes")
        return True

    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        if self._cache is None:
            return {"entries": 0, "hits": 0, "misses": 0, "max_entries": 0}
        return self._cache.info()

    def stage_cache_info(self) -> Optional[Dict[str, Any]]:
        """Digest-keyed stage-cache stats; ``None`` when disabled."""
        return (None if self._stage_cache is None
                else self._stage_cache.info())

    def describe(self) -> Dict[str, Any]:
        """Engine facts for /healthz and logs."""
        return {
            "pipeline": self.pipeline_name,
            "dim": self.dim,
            "num_classes": self.num_classes,
            "packed": self.use_packed,
            "encoder": self._encoder_type,
            "graph": self.graph.describe(),
            "has_extractor": self.extractor is not None,
            "has_manifold": "reduce" in self.graph,
            "cache": self.cache_info(),
            "compile": {"passes": list(self.compile_passes),
                        "executors": dict(self.executor_plan),
                        "stage_cache": self.stage_cache_info()},
            "quality": (None if self.quality is None
                        else self.quality.describe()),
            "config_fingerprint": self.bundle.info.get(
                "config_fingerprint"),
        }

    def __repr__(self) -> str:
        return (f"InferenceEngine({self.pipeline_name}, dim={self.dim}, "
                f"classes={self.num_classes}, packed={self.use_packed})")
