"""The serving inference engine: fused forward path over a model bundle.

:class:`InferenceEngine` executes a :class:`repro.serve.bundle.ModelBundle`
without reconstructing the training pipeline objects around it.  The
float stages are replicated *op-for-op* against the training code so
predictions are bit-exact with ``pipeline.predict``:

* scaler: ``(x - mean) / std`` (same float64 ops as ``FeatureScaler``);
* manifold: crop-to-even + reshape max-pool and ``pooled @ W.T + b`` —
  numerically identical to ``F.max_pool2d(kernel=2)`` + ``F.linear``
  (same operands, same BLAS calls, no autograd tape);
* encoder: ``sign(V @ P)`` (or the nonlinear cos·sin map);
* similarity: an exact replication of
  :func:`repro.learn.mass.normalized_similarity` with the clamped class
  norms **cached** (they are constant for a frozen bundle).

When the bundle's class matrix is bipolar (``binarize=True`` export),
the engine additionally builds a **bit-packed fast path**: class
hypervectors and queries are packed to uint64 words
(:func:`repro.hd.backend.pack_bipolar`) and classified with the
XOR-popcount kernel (:func:`repro.hd.similarity.packed_classify`), which
ranks identically to the float cosine path for bipolar operands —
integer dots, no rounding.  :meth:`selfcheck` proves the agreement on
random probes at load time.

An LRU cache keyed by the sha1 of each sample's raw feature bytes
memoizes encoded hypervectors, so repeated queries skip the
projection GEMM entirely (``serve.cache.hits`` / ``serve.cache.misses``
count the effectiveness).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

import numpy as np

from ..hd.backend import pack_bipolar
from ..hd.hypervector import hard_quantize
from ..hd.similarity import classify, packed_classify
from ..models.extractor import FeatureExtractor
from ..models.registry import create_model
from ..telemetry import get_registry, span
from ..utils.rng import fresh_rng
from .bundle import BundleError, ModelBundle

__all__ = ["InferenceEngine", "EngineSelfCheckError"]


class EngineSelfCheckError(RuntimeError):
    """The packed fast path disagreed with the reference kernel."""


class _EncodedLRU:
    """Thread-safe LRU of encoded hypervectors keyed by feature digest."""

    def __init__(self, max_entries: int):
        self.max_entries = int(max_entries)
        self._data: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: bytes) -> Optional[np.ndarray]:
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: bytes, value: np.ndarray) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def info(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._data), "hits": self.hits,
                    "misses": self.misses,
                    "max_entries": self.max_entries}


class InferenceEngine:
    """Fused, cache-accelerated inference over a frozen model bundle.

    Parameters
    ----------
    bundle:
        A validated :class:`ModelBundle` (``validate()`` is called here).
    use_packed:
        Force (True) or forbid (False) the bit-packed XOR-popcount path;
        default ``None`` auto-enables it when the class matrix is
        strictly bipolar.  Forcing it on a non-binary bundle raises.
    cache_size:
        LRU capacity (entries) for encoded hypervectors; 0 disables.
    build_extractor:
        Reconstruct the truncated CNN from the bundled weights so
        :meth:`predict` accepts raw NCHW images.  Disable for servers
        that only ever receive precomputed features.
    selfcheck:
        Run :meth:`selfcheck` at construction when the packed path is
        active (cheap: a handful of random probes).
    """

    def __init__(self, bundle: ModelBundle,
                 use_packed: Optional[bool] = None,
                 cache_size: int = 256,
                 build_extractor: bool = True,
                 selfcheck: bool = True):
        bundle.validate()
        self.bundle = bundle
        info = bundle.info
        self.dim = int(info["dim"])
        self.num_classes = int(info["num_classes"])
        self.pipeline_name = str(info["pipeline"])

        # -- scaler ----------------------------------------------------
        self._mean = np.asarray(bundle.arrays["scaler.mean"],
                                dtype=np.float64)
        self._std = np.asarray(bundle.arrays["scaler.std"],
                               dtype=np.float64)

        # -- encoder ---------------------------------------------------
        enc = info["encoder"]
        self._encoder_type = enc["type"]
        self._encoder_quantize = bool(enc.get("quantize", True))
        if self._encoder_type == "random_projection":
            self._projection = np.asarray(bundle.arrays["encoder.projection"],
                                          dtype=np.float64)
            self._basis = self._phase = None
        else:
            self._projection = None
            self._basis = np.asarray(bundle.arrays["encoder.basis"],
                                     dtype=np.float64)
            self._phase = np.asarray(bundle.arrays["encoder.phase"],
                                     dtype=np.float64)

        # -- manifold --------------------------------------------------
        manifold = info.get("manifold")
        if manifold is not None:
            self._manifold_shape = tuple(int(s)
                                         for s in manifold["feature_shape"])
            self._manifold_pooling = bool(manifold.get("pooling"))
            self._manifold_weight = bundle.manifold_weight()
            self._manifold_bias = bundle.manifold_bias()
        else:
            self._manifold_shape = None
            self._manifold_weight = None
            self._manifold_bias = None
            self._manifold_pooling = False

        # -- class matrix: float path (cached clamped norms) -----------
        self._class_matrix = bundle.class_matrix()
        norms = np.linalg.norm(self._class_matrix, axis=1)
        self._class_norms = np.where(norms < 1e-12, 1.0, norms)

        # -- class matrix: packed fast path ----------------------------
        binary = bundle.binary_classes
        if use_packed is None:
            use_packed = binary and self._encoder_quantize \
                and self._encoder_type == "random_projection"
        if use_packed and not binary:
            raise BundleError(
                "use_packed=True requires a bipolar class matrix — "
                "export the bundle with binarize=True")
        if use_packed and not self._encoder_quantize:
            raise BundleError(
                "use_packed=True requires a quantizing encoder (the "
                "queries must be bipolar to bit-pack); this bundle's "
                "encoder emits continuous hypervectors")
        self.use_packed = bool(use_packed)
        self._packed_classes = (pack_bipolar(self._class_matrix)
                                if self.use_packed else None)

        # -- extractor -------------------------------------------------
        self.extractor: Optional[FeatureExtractor] = None
        ext = info.get("extractor")
        if ext is not None and build_extractor:
            model = create_model(ext["model"],
                                 num_classes=int(ext["num_classes"]),
                                 width_mult=float(ext["width_mult"]),
                                 image_size=int(ext["image_size"]))
            model.load_state_dict(bundle.model_state())
            model.eval()
            self.extractor = FeatureExtractor(model,
                                              int(ext["layer_index"]))

        self._cache = _EncodedLRU(cache_size) if cache_size > 0 else None
        if selfcheck and self.use_packed:
            self.selfcheck()

    # ------------------------------------------------------------------
    @classmethod
    def from_path(cls, path: str, **kwargs: Any) -> "InferenceEngine":
        """Verify + load a bundle archive and build an engine on it."""
        return cls(ModelBundle.load(path, verify=True), **kwargs)

    # ------------------------------------------------------------------
    # Fused forward stages (op-for-op replicas of the training code)
    # ------------------------------------------------------------------
    def _scale(self, raw_features: np.ndarray) -> np.ndarray:
        return (raw_features - self._mean) / self._std

    def _reduce(self, features: np.ndarray) -> np.ndarray:
        if self._manifold_weight is None:
            return features
        c, h, w = self._manifold_shape
        x = features.reshape(-1, c, h, w)
        if self._manifold_pooling:
            n = len(x)
            x = x[:, :, :h // 2 * 2, :w // 2 * 2]
            x = x.reshape(n, c, h // 2, 2, w // 2, 2).max(axis=(3, 5))
        pooled = x.reshape(len(x), -1)
        out = pooled @ self._manifold_weight.T
        if self._manifold_bias is not None:
            out = out + self._manifold_bias
        return out

    def _encode(self, reduced: np.ndarray) -> np.ndarray:
        if self._encoder_type == "random_projection":
            raw = reduced @ self._projection
            return hard_quantize(raw) if self._encoder_quantize else raw
        proj = reduced @ self._basis
        raw = np.cos(proj + self._phase) * np.sin(proj)
        return hard_quantize(raw) if self._encoder_quantize else raw

    # ------------------------------------------------------------------
    def encode_features(self, raw_features: np.ndarray) -> np.ndarray:
        """Query hypervectors for ``(n, F)`` raw features (LRU-cached)."""
        raw_features = np.atleast_2d(
            np.asarray(raw_features, dtype=np.float64))
        registry = get_registry()
        if self._cache is None:
            with span("serve.encode", nbytes=int(raw_features.nbytes)):
                return self._encode(self._reduce(self._scale(raw_features)))

        keys = [hashlib.sha1(np.ascontiguousarray(row).tobytes()).digest()
                for row in raw_features]
        encoded = np.empty((len(raw_features), self.dim), dtype=np.float64)
        miss_idx = []
        for i, key in enumerate(keys):
            hit = self._cache.get(key)
            if hit is None:
                miss_idx.append(i)
            else:
                encoded[i] = hit
        registry.inc("serve.cache.hits", len(keys) - len(miss_idx))
        registry.inc("serve.cache.misses", len(miss_idx))
        if miss_idx:
            misses = raw_features[miss_idx]
            with span("serve.encode", nbytes=int(misses.nbytes)):
                fresh = self._encode(self._reduce(self._scale(misses)))
            for j, i in enumerate(miss_idx):
                encoded[i] = fresh[j]
                self._cache.put(keys[i], fresh[j].copy())
        return encoded

    def similarities(self, encoded: np.ndarray) -> np.ndarray:
        """Cosine similarities, bit-exact with ``normalized_similarity``.

        The clamped class norms are precomputed at load time; the query
        norms and the final division are performed with the exact
        expression the trainer uses, so predictions agree bit-for-bit.
        """
        queries = np.atleast_2d(encoded)
        query_norms = np.linalg.norm(queries, axis=1, keepdims=True)
        query_norms = np.where(query_norms < 1e-12, 1.0, query_norms)
        return ((queries @ self._class_matrix.T)
                / (query_norms * self._class_norms[None, :]))

    # ------------------------------------------------------------------
    def predict_features(self, raw_features: np.ndarray) -> np.ndarray:
        """Class predictions for ``(n, F)`` raw extractor features."""
        registry = get_registry()
        raw_features = np.atleast_2d(
            np.asarray(raw_features, dtype=np.float64))
        registry.inc("serve.requests")
        registry.inc("serve.samples", len(raw_features))
        with span("serve.predict", nbytes=int(raw_features.nbytes)):
            encoded = self.encode_features(raw_features)
            if self.use_packed:
                packed = pack_bipolar(encoded)
                return packed_classify(self._packed_classes, packed,
                                       self.dim)
            return np.asarray(self.similarities(encoded).argmax(axis=1))

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class predictions for raw NCHW images (end-to-end)."""
        images = np.asarray(images)
        if self.extractor is not None:
            raw = self.extractor.extract(images)
        elif self.bundle.info.get("extractor") is None:
            raw = images.reshape(len(images), -1)
        else:
            raise BundleError(
                "engine was built with build_extractor=False; "
                "use predict_features with precomputed features")
        return self.predict_features(raw)

    def accuracy_features(self, raw_features: np.ndarray,
                          labels: np.ndarray) -> float:
        return float((self.predict_features(raw_features)
                      == np.asarray(labels)).mean())

    # ------------------------------------------------------------------
    def selfcheck(self, probes: int = 32, seed: int = 0) -> bool:
        """Prove the packed path agrees with the reference kernels.

        Draws random bipolar probe hypervectors and checks (1) the
        XOR-popcount classifier returns the same labels as the float
        dot-product :func:`repro.hd.similarity.classify`, and (2) the
        engine's cached-norm cosine path agrees as well (for bipolar
        class matrices all three rank identically).  Raises
        :class:`EngineSelfCheckError` on any disagreement.
        """
        if not self.use_packed:
            return True
        rng = fresh_rng((seed, "serve-selfcheck"))
        hvs = np.where(rng.random((probes, self.dim)) < 0.5, -1.0, 1.0)
        packed = pack_bipolar(hvs)
        got = packed_classify(self._packed_classes, packed, self.dim)
        want_dot = classify(self._class_matrix, hvs, metric="dot")
        want_cos = np.asarray(self.similarities(hvs).argmax(axis=1))
        if not np.array_equal(got, want_dot):
            raise EngineSelfCheckError(
                f"packed XOR-popcount disagrees with float dot on "
                f"{int((got != want_dot).sum())}/{probes} probes")
        if not np.array_equal(got, want_cos):
            raise EngineSelfCheckError(
                f"packed XOR-popcount disagrees with the cosine path on "
                f"{int((got != want_cos).sum())}/{probes} probes")
        return True

    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        if self._cache is None:
            return {"entries": 0, "hits": 0, "misses": 0, "max_entries": 0}
        return self._cache.info()

    def describe(self) -> Dict[str, Any]:
        """Engine facts for /healthz and logs."""
        return {
            "pipeline": self.pipeline_name,
            "dim": self.dim,
            "num_classes": self.num_classes,
            "packed": self.use_packed,
            "encoder": self._encoder_type,
            "has_extractor": self.extractor is not None,
            "has_manifold": self._manifold_weight is not None,
            "cache": self.cache_info(),
            "config_fingerprint": self.bundle.info.get(
                "config_fingerprint"),
        }

    def __repr__(self) -> str:
        return (f"InferenceEngine({self.pipeline_name}, dim={self.dim}, "
                f"classes={self.num_classes}, packed={self.use_packed})")
