"""Fleet router: consistent-hash, health-gated request routing.

The front door of the fault-tolerant serving fleet.  A stdlib
:class:`ThreadingHTTPServer` (same zero-dependency style as
:mod:`~repro.serve.server`) accepts client requests and forwards them to
the worker processes a :class:`~repro.serve.fleet.Supervisor` (or
:class:`~repro.serve.fleet.StaticFleet`) maintains:

* **Consistent hashing.**  Each request body is digested (sha1) and
  placed on a hash ring built over the *stable* fleet membership, then
  served by the nearest *healthy* worker clockwise.  Identical feature
  payloads therefore keep landing on the same worker, preserving each
  worker's encoded-hypervector LRU locality; when a worker leaves
  rotation only its arc of keys moves.
* **Health gating + circuit breakers.**  Routing only considers workers
  the supervisor reports ``up``, and each worker is additionally
  wrapped in a :class:`~repro.reliability.CircuitBreaker` — a worker
  that keeps erroring is skipped *before* a connection is spent on it,
  and half-open probes let it back in gradually.
* **Bounded retry.**  ``/predict`` is idempotent (pure function of the
  payload), so connection resets, timeouts, and 5xx/503/504 worker
  answers are retried on the next worker along the ring with a small
  exponential backoff, up to ``max_attempts`` — a single crashed worker
  costs affected requests one retry, not an error.
* **Keep-alive connection pools.**  One persistent-connection pool per
  worker; a stale pooled connection (worker restarted between requests)
  is transparently replaced once before the attempt counts as a
  failure.
* **Graceful drain.**  SIGTERM stops the accept loop, waits for
  in-flight requests, then stops the fleet — no request is abandoned
  mid-flight.

Endpoints: ``POST /predict`` (routed), ``GET /healthz`` (fleet +
breaker summary), ``GET /metrics`` (Prometheus text of the router
process registry — which already carries the supervisor's per-worker
up/restart gauges, the breaker state gauges, and the router's own
``fleet.router.*`` counters and latency quantiles), ``GET /driftz``
(per-worker model-quality drift snapshots + a fleet-wide rollup of the
worst PSI/z-score), ``GET /alertz`` (the router's own alert-rule
states), ``POST /reload`` (broadcast to every live worker; any
rejection answers 409 with the per-worker outcomes).
"""

from __future__ import annotations

import bisect
import hashlib
import http.client
import json
import signal
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..reliability.circuit import CircuitBreaker
from ..telemetry import (AlertManager, BurnRateTracker, clock,
                         get_registry, get_request_log, prometheus_text,
                         request_span)
from ..telemetry.reqtrace import HUB as _HUB
from ..telemetry.reqtrace import TraceContext, _RequestTrace
from .server import _requestz_payload, _tracez_payload

__all__ = ["Router", "HashRing"]

_DISCONNECTS = (BrokenPipeError, ConnectionResetError, ConnectionAbortedError)

#: Worker answers worth retrying on a different worker (the request is
#: idempotent): server errors, shed (503), and deadline (504).
_RETRYABLE_STATUSES = frozenset({500, 502, 503, 504})


class HashRing:
    """Consistent hash ring over worker ids (sha1 points).

    ``replicas`` virtual points per worker smooth the key distribution;
    :meth:`ordered` yields every distinct worker starting from the
    request digest's position, which doubles as the retry order.
    """

    def __init__(self, worker_ids: List[str], replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self.worker_ids = list(worker_ids)
        points: List[Tuple[int, str]] = []
        for worker_id in self.worker_ids:
            for replica in range(self.replicas):
                digest = hashlib.sha1(
                    f"{worker_id}#{replica}".encode()).digest()
                points.append((int.from_bytes(digest[:8], "big"),
                               worker_id))
        points.sort()
        self._points = points
        self._hashes = [point[0] for point in points]

    def ordered(self, key: bytes) -> List[str]:
        """Distinct worker ids in ring order starting at ``key``."""
        if not self._points:
            return []
        position = int.from_bytes(
            hashlib.sha1(key).digest()[:8], "big")
        start = bisect.bisect_left(self._hashes, position)
        seen: List[str] = []
        for i in range(len(self._points)):
            worker_id = self._points[(start + i) % len(self._points)][1]
            if worker_id not in seen:
                seen.append(worker_id)
                if len(seen) == len(self.worker_ids):
                    break
        return seen

    def __len__(self) -> int:
        return len(self.worker_ids)


class _WorkerClient:
    """Keep-alive connection pool to one worker.

    A pooled connection can be stale (the worker restarted since the
    last request); the first send over a *reused* connection that dies
    with a disconnect is transparently replayed once on a fresh
    connection.  Timeouts and fresh-connection failures propagate — the
    router decides whether to retry elsewhere.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 10.0,
                 pool_size: int = 16):
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.pool_size = int(pool_size)
        self._pool: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()

    def _checkout(self) -> Tuple[http.client.HTTPConnection, bool]:
        with self._lock:
            if self._pool:
                return self._pool.pop(), True
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s), False

    def _checkin(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(conn)
                return
        conn.close()

    def request(self, method: str, path: str, body: bytes = b"",
                content_type: str = "application/json",
                headers: Optional[Dict[str, str]] = None
                ) -> Tuple[int, bytes]:
        send_headers = {"Content-Type": content_type}
        if headers:
            send_headers.update(headers)
        conn, reused = self._checkout()
        while True:
            try:
                conn.request(method, path, body=body or None,
                             headers=send_headers)
                response = conn.getresponse()
                data = response.read()
                status = response.status
                will_close = response.will_close
            except (http.client.RemoteDisconnected,
                    *_DISCONNECTS) as exc:
                conn.close()
                if reused:
                    # Stale keep-alive connection, not a worker fault:
                    # one replay on a fresh socket.
                    get_registry().inc("fleet.router.stale_connections")
                    conn = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout_s)
                    reused = False
                    continue
                raise exc
            except Exception:
                conn.close()
                raise
            if will_close:
                conn.close()
            else:
                self._checkin(conn)
            return status, data

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()


class _RouterHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "_RouterHTTPServer"

    #: Trace context echoed on every response (404s and drain-rejects
    #: included); /predict swaps in its live root-span context.
    _trace_ctx: Optional[TraceContext] = None

    def _begin_request(self) -> TraceContext:
        ctx = TraceContext.parse(self.headers.get("traceparent"))
        if ctx is None:
            ctx = TraceContext.mint(sampled=False)
        self._trace_ctx = ctx
        return ctx

    def _trace_headers(self) -> Dict[str, str]:
        ctx = self._trace_ctx
        if ctx is None:
            return {}
        return {"X-Trace-Id": ctx.trace_id,
                "traceparent": ctx.to_traceparent()}

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        self._send_raw(status, json.dumps(payload).encode("utf-8"),
                       "application/json", headers)

    def _send_raw(self, status: int, body: bytes, content_type: str,
                  headers: Optional[Dict[str, str]] = None) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in self._trace_headers().items():
                self.send_header(name, value)
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except _DISCONNECTS:
            get_registry().inc("serve.client_disconnect")
            self.close_connection = True

    def log_message(self, format: str, *args: Any) -> None:
        get_registry().inc("fleet.router.http.requests")

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        app = self.server.app
        url = urllib.parse.urlsplit(self.path)
        self._begin_request()
        if url.path == "/healthz":
            payload = app.health()
            self._send_json(200 if payload["status"] != "down" else 503,
                            payload)
        elif url.path == "/metrics":
            self._send_raw(200, prometheus_text().encode("utf-8"),
                           "text/plain; charset=utf-8")
        elif url.path == "/tracez":
            self._send_json(*_tracez_payload(url.query))
        elif url.path == "/requestz":
            self._send_json(200, _requestz_payload(url.query))
        elif url.path == "/driftz":
            self._send_json(200, app.fleet_driftz())
        elif url.path == "/alertz":
            self._send_json(200, app.alertz())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        app = self.server.app
        self._begin_request()
        length = int(self.headers.get("Content-Length", 0))
        try:
            body = self.rfile.read(length)
        except _DISCONNECTS:
            get_registry().inc("serve.client_disconnect")
            self.close_connection = True
            return
        if self.path == "/predict":
            # Root span of the whole distributed request: the routed
            # worker's server.request hangs under one of this trace's
            # router.attempt spans.  Closed *before* the response goes
            # out so an immediate /tracez lookup already sees it.
            parent = TraceContext.parse(self.headers.get("traceparent"))
            with _HUB.trace("router.request", parent=parent,
                            attrs={"path": "/predict"}) as trace:
                self._trace_ctx = trace.ctx
                status, data, headers = app.route_predict(body,
                                                          trace=trace)
                trace.annotate(status=status)
                if status >= 500:
                    trace.set_error(f"HTTP {status}")
            self._send_raw(status, data, "application/json", headers)
        elif self.path == "/reload":
            status, payload = app.broadcast_reload(body)
            self._send_json(status, payload)
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})


class _RouterHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    app: "Router"

    def handle_error(self, request, client_address) -> None:
        import sys
        exc = sys.exc_info()[1]
        if isinstance(exc, _DISCONNECTS):
            get_registry().inc("serve.client_disconnect")
            return
        super().handle_error(request, client_address)


class Router:
    """HTTP front-end routing ``/predict`` across a worker fleet.

    Parameters
    ----------
    fleet:
        A :class:`~repro.serve.fleet.Supervisor` or
        :class:`~repro.serve.fleet.StaticFleet` (anything with
        ``all_workers`` / ``healthy_workers`` / ``describe`` /
        ``stop``).
    host, port:
        Bind address (``port=0`` → ephemeral, tests).
    replicas:
        Virtual ring points per worker.
    max_attempts:
        Upper bound on workers tried per request (including the first).
    retry_backoff_s:
        Base of the exponential inter-attempt backoff.
    request_timeout_s:
        Per-attempt socket timeout towards a worker.
    breaker_options:
        Keyword overrides for each worker's
        :class:`~repro.reliability.CircuitBreaker`.
    own_fleet:
        Stop the fleet when the router stops (CLI mode).
    slo_objective:
        Availability/latency success objective for the burn-rate
        trackers (fraction of requests that must succeed / meet the
        latency target); exported as ``fleet.slo.*`` gauges.
    slo_latency_ms:
        Latency target a request must meet to count as "fast" for the
        latency SLO.
    alert_rules:
        Declarative :class:`~repro.telemetry.alerts.AlertRule` list
        evaluated against the *router's* registry (fleet SLO burn
        gauges, router latency quantiles, worker up/restart gauges) on
        a background thread while the router runs; exposed at
        ``GET /alertz`` and as ``alert.state.*`` gauges.
    alert_interval_s:
        Background evaluation period for the alert rules.
    """

    def __init__(self, fleet: Any, host: str = "127.0.0.1", port: int = 0,
                 replicas: int = 64, max_attempts: int = 3,
                 retry_backoff_s: float = 0.05,
                 request_timeout_s: float = 10.0,
                 breaker_options: Optional[Dict[str, Any]] = None,
                 own_fleet: bool = False,
                 slo_objective: float = 0.999,
                 slo_latency_ms: float = 250.0,
                 alert_rules: Optional[List[Any]] = None,
                 alert_interval_s: float = 1.0):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.fleet = fleet
        self.replicas = int(replicas)
        self.max_attempts = int(max_attempts)
        self.retry_backoff_s = float(retry_backoff_s)
        self.request_timeout_s = float(request_timeout_s)
        self.breaker_options = dict(breaker_options or {})
        self.own_fleet = bool(own_fleet)
        self.slo_latency_ms = float(slo_latency_ms)
        self.slo_availability = BurnRateTracker(objective=slo_objective)
        self.slo_latency = BurnRateTracker(objective=slo_objective)
        self.alerts = (AlertManager(list(alert_rules))
                       if alert_rules else None)
        self.alert_interval_s = float(alert_interval_s)
        self.draining = False
        self._ring: Optional[HashRing] = None
        self._ring_members: Tuple[str, ...] = ()
        self._clients: Dict[str, _WorkerClient] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._idle = threading.Condition()
        self._httpd = _RouterHTTPServer((host, port), _RouterHandler)
        self._httpd.app = self
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------------
    # Fleet plumbing
    # ------------------------------------------------------------------
    def _ring_for(self, members: List[Tuple[str, Tuple[str, int]]]
                  ) -> HashRing:
        ids = tuple(worker_id for worker_id, _ in members)
        with self._state_lock:
            if self._ring is None or ids != self._ring_members:
                self._ring = HashRing(list(ids), replicas=self.replicas)
                self._ring_members = ids
            return self._ring

    def _client(self, worker_id: str, address: Tuple[str, int]
                ) -> _WorkerClient:
        with self._state_lock:
            client = self._clients.get(worker_id)
            if client is None or (client.host, client.port) != address:
                client = _WorkerClient(
                    *address, timeout_s=self.request_timeout_s)
                self._clients[worker_id] = client
            return client

    def breaker(self, worker_id: str) -> CircuitBreaker:
        with self._state_lock:
            breaker = self._breakers.get(worker_id)
            if breaker is None:
                breaker = CircuitBreaker(name=f"worker.{worker_id}",
                                         **self.breaker_options)
                self._breakers[worker_id] = breaker
            return breaker

    # ------------------------------------------------------------------
    # Request routing
    # ------------------------------------------------------------------
    def route_predict(self, body: bytes,
                      trace: Optional[_RequestTrace] = None
                      ) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        """Route one ``/predict`` body; returns (status, body, headers).

        Non-retryable worker answers (2xx, 4xx) pass through verbatim —
        they are the worker's verdict on the request, not a worker
        fault.  ``trace`` (the handler's open root span) threads the
        request id into error payloads, the request log, and the
        latency exemplar; each forwarding attempt opens a
        ``router.attempt`` child span whose context travels to the
        worker as its ``traceparent``.
        """
        registry = get_registry()
        request_id = trace.trace_id if trace is not None else None
        if self.draining:
            registry.inc("fleet.router.draining_rejects")
            self._record_slo(503, 0.0)
            return (503, json.dumps(
                {"error": "router is draining", "retryable": True,
                 "request_id": request_id}
            ).encode("utf-8"), {"Retry-After": "1"})
        with self._idle:
            self._inflight += 1
        t0 = clock()
        status = 500
        try:
            status, data, headers = self._route_predict_inner(body, trace)
            return status, data, headers
        finally:
            latency_ms = 1000.0 * (clock() - t0)
            registry.observe("fleet.router.latency_ms", latency_ms,
                             exemplar=request_id)
            self._record_slo(status, latency_ms)
            if trace is not None:
                get_request_log().append(
                    path="/predict", status=status, trace_id=request_id,
                    latency_ms=round(latency_ms, 3),
                    error=(f"HTTP {status}" if status >= 500 else None))
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    def _record_slo(self, status: int, latency_ms: float) -> None:
        """Feed the burn-rate trackers and refresh the SLO gauges.

        Availability counts any non-5xx answer as success (4xx is the
        client's fault, not the fleet's); the latency SLO counts
        successful answers under ``slo_latency_ms``.
        """
        registry = get_registry()
        ok = status < 500
        self.slo_availability.record(ok)
        self.slo_latency.record(ok and latency_ms <= self.slo_latency_ms)
        registry.set_gauge("fleet.slo.availability.burn_fast",
                           self.slo_availability.burn_rate(
                               self.slo_availability.fast_window_s))
        registry.set_gauge("fleet.slo.availability.burn_slow",
                           self.slo_availability.burn_rate(
                               self.slo_availability.slow_window_s))
        registry.set_gauge("fleet.slo.latency.burn_fast",
                           self.slo_latency.burn_rate(
                               self.slo_latency.fast_window_s))
        registry.set_gauge("fleet.slo.latency.burn_slow",
                           self.slo_latency.burn_rate(
                               self.slo_latency.slow_window_s))

    def _route_predict_inner(self, body: bytes,
                             trace: Optional[_RequestTrace] = None
                             ) -> Tuple[int, bytes,
                                        Optional[Dict[str, str]]]:
        registry = get_registry()
        registry.inc("fleet.router.requests")
        request_id = trace.trace_id if trace is not None else None
        root_ctx = trace.ctx if trace is not None else None
        members = self.fleet.all_workers()
        healthy = dict(self.fleet.healthy_workers())
        ring = self._ring_for(members)
        candidates = [worker_id for worker_id in ring.ordered(body)
                      if worker_id in healthy]
        if not candidates:
            registry.inc("fleet.router.no_backend")
            return (503, json.dumps(
                {"error": "no healthy worker in rotation",
                 "retryable": True, "request_id": request_id}
            ).encode("utf-8"), {"Retry-After": "1"})

        attempts = 0
        last_failure = "all workers refused by circuit breakers"
        for worker_id in candidates:
            if attempts >= self.max_attempts:
                break
            breaker = self.breaker(worker_id)
            if not breaker.allow():
                registry.inc("fleet.router.breaker_skips")
                _HUB.event("router.breaker_skip", {"worker": worker_id})
                continue
            if attempts:
                registry.inc("fleet.router.retries")
                backoff_s = self.retry_backoff_s * (2.0 ** (attempts - 1))
                with request_span("router.retry_backoff",
                                  backoff_s=backoff_s):
                    time.sleep(backoff_s)
            attempts += 1
            client = self._client(worker_id, healthy[worker_id])
            # The attempt span's context is the traceparent the worker
            # sees, so its server.request hop hangs under *this attempt*
            # (failover retries become sibling attempts in the tree).
            # With tracing disabled the root context still travels —
            # the worker echoes the same request id either way.
            with request_span("router.attempt", worker=worker_id,
                              attempt=attempts) as attempt_span:
                fwd_ctx = attempt_span.ctx or root_ctx
                fwd_headers = None
                if fwd_ctx is not None:
                    fwd_headers = {
                        "traceparent": fwd_ctx.to_traceparent(),
                        "X-Trace-Id": fwd_ctx.trace_id}
                try:
                    status, data = client.request(
                        "POST", "/predict", body, headers=fwd_headers)
                except Exception as exc:
                    breaker.record_failure()
                    registry.inc("fleet.router.connect_errors")
                    last_failure = (f"{worker_id}: "
                                    f"{type(exc).__name__}: {exc}")
                    attempt_span.set_error(last_failure)
                    continue
                attempt_span.annotate(status=status)
                if status in _RETRYABLE_STATUSES:
                    breaker.record_failure()
                    registry.inc("fleet.router.upstream_errors")
                    last_failure = f"{worker_id}: HTTP {status}"
                    attempt_span.set_error(last_failure)
                    continue
                breaker.record_success()
            if attempts > 1:
                registry.inc("fleet.router.rerouted")
            return status, data, None
        registry.inc("fleet.router.exhausted")
        return (503, json.dumps(
            {"error": f"no worker answered after {attempts} attempts "
                      f"(last: {last_failure})",
             "retryable": True, "request_id": request_id}
            ).encode("utf-8"), {"Retry-After": "1"})

    def broadcast_reload(self, body: bytes
                         ) -> Tuple[int, Dict[str, Any]]:
        """``POST /reload`` fan-out to every healthy worker.

        By default answers 200 only when *every* reached worker accepted
        the reload; any 409/connection failure yields 409 with
        per-worker outcomes (workers that already swapped keep the new
        bundle — the caller decides whether to retry or roll back).

        A JSON body with ``"partial": "allow"`` switches to
        best-effort semantics: as long as *at least one* worker accepts,
        the fan-out answers **207** (Multi-Status) with the same
        per-worker breakdown, and only an all-workers failure is a 409.
        This is what a rolling online-learning promotion wants — a
        single wedged worker should not veto the fleet; it catches up on
        its next reload.  The ``partial`` key is stripped before
        forwarding (workers would reject an unknown key).
        """
        partial = False
        if body.strip():
            try:
                payload = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = None  # let the workers produce the 400
            if isinstance(payload, dict) and "partial" in payload:
                mode = payload.pop("partial")
                if mode not in ("allow", "deny"):
                    return 400, {"error": f"partial must be 'allow' or "
                                          f"'deny', got {mode!r}"}
                partial = mode == "allow"
                body = json.dumps(payload).encode("utf-8")
        results: Dict[str, Any] = {}
        succeeded = failed = 0
        for worker_id, address in self.fleet.healthy_workers():
            client = self._client(worker_id, address)
            try:
                status, data = client.request("POST", "/reload", body)
                try:
                    payload = json.loads(data.decode("utf-8"))
                except ValueError:
                    payload = {"raw": data.decode("utf-8", "replace")}
                results[worker_id] = {"status": status, **(
                    payload if isinstance(payload, dict) else
                    {"body": payload})}
                if status == 200:
                    succeeded += 1
                else:
                    failed += 1
            except Exception as exc:
                results[worker_id] = {
                    "status": None,
                    "error": f"{type(exc).__name__}: {exc}"}
                failed += 1
        ok = failed == 0 and bool(results)
        registry = get_registry()
        if ok:
            registry.inc("fleet.router.reload.success")
            http_status = 200
        elif partial and succeeded:
            registry.inc("fleet.router.reload.partial")
            http_status = 207
        else:
            registry.inc("fleet.router.reload.rejected")
            http_status = 409
        return http_status, {"reloaded": ok, "workers": results,
                             "succeeded": succeeded, "failed": failed}

    # ------------------------------------------------------------------
    # Model-quality observability (/driftz, /alertz)
    # ------------------------------------------------------------------
    def fleet_driftz(self) -> Dict[str, Any]:
        """``GET /driftz``: per-worker drift snapshots + fleet rollup.

        Fans ``GET /driftz`` out to every healthy worker (same pattern
        as :meth:`broadcast_reload`) and aggregates the headline drift
        scalars — worst PSI/z-score across workers, total window
        samples — so one probe answers "is the fleet drifting" without
        scraping each worker.
        """
        workers: Dict[str, Any] = {}
        psi_max = zscore_max = pred_psi = 0.0
        samples = 0
        reporting = 0
        for worker_id, address in self.fleet.healthy_workers():
            client = self._client(worker_id, address)
            try:
                status, data = client.request("GET", "/driftz")
                payload = json.loads(data.decode("utf-8"))
            except Exception as exc:
                workers[worker_id] = {
                    "error": f"{type(exc).__name__}: {exc}"}
                continue
            if status != 200 or not isinstance(payload, dict):
                workers[worker_id] = {"status": status}
                continue
            workers[worker_id] = payload
            if not payload.get("enabled"):
                continue
            reporting += 1
            feature = payload.get("feature") or {}
            prediction = payload.get("prediction") or {}
            psi_max = max(psi_max, float(feature.get("psi_max") or 0.0))
            zscore_max = max(zscore_max,
                             float(feature.get("zscore_max") or 0.0))
            pred_psi = max(pred_psi,
                           float(prediction.get("psi") or 0.0))
            samples += int(payload.get("samples") or 0)
        registry = get_registry()
        registry.set_gauge("fleet.quality.psi_max", psi_max)
        registry.set_gauge("fleet.quality.prediction_psi", pred_psi)
        registry.set_gauge("fleet.quality.workers_reporting",
                           float(reporting))
        return {
            "enabled": reporting > 0,
            "fleet": {"feature_psi_max": psi_max,
                      "feature_zscore_max": zscore_max,
                      "prediction_psi": pred_psi,
                      "samples": samples,
                      "workers_reporting": reporting,
                      "workers_probed": len(workers)},
            "workers": workers,
        }

    def alertz(self) -> Dict[str, Any]:
        """``GET /alertz``: evaluate-now snapshot of the router rules."""
        if self.alerts is None:
            return {"enabled": False, "rules": [], "firing": []}
        self.alerts.evaluate()
        return self.alerts.snapshot()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        fleet = self.fleet.describe()
        up, size = int(fleet.get("up", 0)), int(fleet.get("size", 0))
        if self.draining:
            status = "draining"
        elif up == 0:
            status = "down"
        elif up < size:
            status = "degraded"
        else:
            status = "ok"
        with self._state_lock:
            breakers = {worker_id: breaker.describe()
                        for worker_id, breaker in self._breakers.items()}
        return {
            "status": status,
            "fleet": fleet,
            "breakers": breakers,
            "inflight": self._inflight,
            "slo": {
                "latency_target_ms": self.slo_latency_ms,
                "availability": self.slo_availability.summary(),
                "latency": self.slo_latency.summary(),
            },
        }

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Router":
        if self._thread is not None:
            raise RuntimeError("router already started")
        self._started = True
        self._start_alerts()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="fleet-router",
            daemon=True)
        self._thread.start()
        return self

    def _start_alerts(self) -> None:
        if self.alerts is not None and self.alerts._thread is None:
            self.alerts.start(self.alert_interval_s)

    def serve_forever(self) -> None:
        """Serve on the calling thread (CLI); SIGTERM/SIGINT drain."""
        self._started = True
        self.install_signal_handlers()
        self._start_alerts()
        try:
            self._httpd.serve_forever()
        finally:
            self.stop()

    def install_signal_handlers(self) -> bool:
        if threading.current_thread() is not threading.main_thread():
            return False

        def _on_term(signum, frame):  # pragma: no cover - signal path
            self.drain()

        try:
            signal.signal(signal.SIGTERM, _on_term)
        except (ValueError, OSError, AttributeError):
            return False
        return True

    def drain(self) -> None:
        """Graceful shutdown trigger (signal-safe, returns at once)."""
        if self.draining:
            return
        self.draining = True
        get_registry().inc("fleet.router.drain")
        threading.Thread(target=self.stop, name="fleet-router-drain",
                         daemon=True).start()

    def stop(self, drain_timeout_s: float = 10.0) -> None:
        """Stop accepting, flush in-flight requests, stop the fleet."""
        self.draining = True
        if self.alerts is not None:
            self.alerts.stop()
        if self._started:
            self._httpd.shutdown()
        self._httpd.server_close()
        deadline = clock() + drain_timeout_s
        with self._idle:
            while self._inflight > 0 and clock() < deadline:
                self._idle.wait(timeout=max(0.0, deadline - clock()))
        with self._state_lock:
            clients = list(self._clients.values())
            self._clients = {}
        for client in clients:
            client.close()
        if self.own_fleet:
            self.fleet.stop()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (f"Router({self.url}, fleet={len(self._ring_members)} "
                f"members, draining={self.draining})")
