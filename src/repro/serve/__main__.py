"""CLI entry point: ``python -m repro.serve bundle.npz --port 8000``.

Serves a :class:`~repro.serve.bundle.ModelBundle` over HTTP with the
stdlib :class:`~repro.serve.server.ModelServer` (micro-batching, load
shedding, Prometheus metrics, hot reload on ``POST /reload`` / SIGHUP).

Tuning can come from flags or a TOML config file (``--config
serve.toml``); flags win over the file.  The file maps 1:1 onto the
MicroBatcher / LoadShedder / engine knobs::

    [server]
    host = "0.0.0.0"
    port = 8000

    [batcher]
    max_batch_size = 64
    max_latency_ms = 5.0
    workers = 2
    high_watermark = 128
    timeout_s = 5.0

    [engine]
    cache_size = 256
    use_packed = true        # omit for auto-selection
    build_extractor = true
    quality = true           # omit: auto-on when the bundle has a baseline
    quality_window = 512

    [compile]
    passes = "all"           # "all", "none", or a list of pass names
    stage_cache = 64         # digest-keyed stage-output cache entries
    [compile.executors]      # or executors = "auto"
    encode = "threaded"
    classify = "packed"

    [online]
    rule = "online"          # "mass" (dense) or "online" (sparse)
    max_update_norm = 1.0    # per-class L2 cap per feedback sample
    rate_limit_per_s = 50.0  # feedback admission (token bucket)
    holdout_every = 8        # every Nth sample → validation ring
    promote_every = 64       # gate evaluation cadence
    min_accuracy_gain = 0.01 # shadow must beat live by this much

    [alerts]
    interval_s = 1.0         # background evaluation period

    [[alerts.rules]]
    name = "feature-drift"
    metric = "quality.feature.psi_max"
    op = ">"
    threshold = 0.25
    for_s = 2.0
    severity = "page"

Flat top-level keys (``port = 8000``) are accepted too.  Alert rules
(threshold / absence / burn-rate predicates over the metrics registry —
see :mod:`repro.telemetry.alerts`) are evaluated on a background thread
and exposed at ``GET /alertz`` plus ``alert.state.*`` gauges; in fleet
mode the ``--config`` file is forwarded to every worker, so the same
rules run fleet-wide.

``--fleet N`` switches to the fault-tolerant multi-process mode: a
:class:`~repro.serve.fleet.Supervisor` spawns N worker processes (each
one of these CLI invocations on its own port, inheriting the tuning
flags above) and a :class:`~repro.serve.router.Router` front-end
consistent-hashes ``/predict`` across the healthy ones with per-worker
circuit breakers.  See ``docs/FLEET.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from ..online.learner import ONLINE_OPTION_KEYS
from ..telemetry import (enable_request_tracing, load_alert_rules,
                         tracing_env_options)
from .bundle import BundleError, ModelBundle
from .engine import EngineSelfCheckError, InferenceEngine
from .fleet import FleetError, Supervisor
from .router import Router
from .server import ModelServer

__all__ = ["main", "build_server", "build_fleet", "load_config",
           "worker_args_from", "configure_tracing"]

#: Config keys per section → ModelServer / InferenceEngine kwarg names.
_SERVER_KEYS = ("host", "port")
_BATCHER_KEYS = ("max_batch_size", "max_latency_ms", "workers",
                 "high_watermark", "timeout_s")
_ENGINE_KEYS = ("cache_size", "use_packed", "build_extractor", "selfcheck",
                "quality", "quality_window")
_ALERT_KEYS = ("interval_s", "rules")
_COMPILE_KEYS = ("passes", "executors", "stage_cache")
_ONLINE_KEYS = ONLINE_OPTION_KEYS


def load_config(path: str) -> Dict[str, Any]:
    """Read a TOML config file into a flat ``{key: value}`` dict.

    Accepts both sectioned (``[server]`` / ``[batcher]`` / ``[engine]``
    / ``[compile]`` / ``[alerts]`` / ``[online]``) and flat layouts;
    unknown keys raise
    so typos fail loudly instead of silently serving with defaults.
    The ``[online]`` section lands verbatim as ``online_options`` (the
    :class:`~repro.online.OnlineLearner` kwargs — enables ``POST
    /feedback`` continual learning).  The ``[alerts]``
    section is parsed through
    :func:`~repro.telemetry.alerts.load_alert_rules` (so a malformed
    rule also fails at startup) and lands as ``alert_rules`` /
    ``alert_interval_s``.  The ``[compile]`` section maps onto the
    engine's graph-compiler knobs (``passes`` / ``executors`` /
    ``stage_cache``; see :func:`repro.pipeline.compile_graph`) and
    lands as ``compile_passes`` / ``compile_executors`` /
    ``compile_stage_cache``.
    """
    import tomllib
    with open(path, "rb") as handle:
        raw = tomllib.load(handle)
    flat: Dict[str, Any] = {}
    known = set(_SERVER_KEYS) | set(_BATCHER_KEYS) | set(_ENGINE_KEYS)
    for key, value in raw.items():
        if key == "alerts":
            if not isinstance(value, dict):
                raise ValueError(f"[alerts] must be a table in {path!r}")
            for sub in value:
                if sub not in _ALERT_KEYS:
                    raise ValueError(
                        f"unknown config key alerts.{sub} in {path!r}")
            flat["alert_rules"] = load_alert_rules(
                value.get("rules", []))
            if "interval_s" in value:
                flat["alert_interval_s"] = float(value["interval_s"])
            continue
        if key == "compile":
            if not isinstance(value, dict):
                raise ValueError(f"[compile] must be a table in {path!r}")
            for sub in value:
                if sub not in _COMPILE_KEYS:
                    raise ValueError(
                        f"unknown config key compile.{sub} in {path!r}")
            if "passes" in value:
                flat["compile_passes"] = value["passes"]
            if "executors" in value:
                flat["compile_executors"] = value["executors"]
            if "stage_cache" in value:
                flat["compile_stage_cache"] = int(value["stage_cache"])
            continue
        if key == "online":
            if not isinstance(value, dict):
                raise ValueError(f"[online] must be a table in {path!r}")
            for sub in value:
                if sub not in _ONLINE_KEYS:
                    raise ValueError(
                        f"unknown config key online.{sub} in {path!r}")
            flat["online_options"] = dict(value)
            continue
        if isinstance(value, dict):
            if key not in ("server", "batcher", "engine"):
                raise ValueError(
                    f"unknown config section [{key}] in {path!r}; "
                    "expected [server], [batcher], [engine], "
                    "[compile], [alerts], or [online]")
            for sub, subvalue in value.items():
                if sub not in known:
                    raise ValueError(
                        f"unknown config key {key}.{sub} in {path!r}")
                flat[sub] = subvalue
        else:
            if key not in known:
                raise ValueError(f"unknown config key {key!r} in {path!r}")
            flat[key] = value
    return flat


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a model bundle over HTTP "
                    "(/predict, /healthz, /metrics, /reload).")
    parser.add_argument("bundle", help="path to a ModelBundle .npz archive")
    parser.add_argument("--config", default=None,
                        help="TOML config file (flags override it)")
    parser.add_argument("--host", default=None, help="bind host "
                        "(default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None,
                        help="bind port (default 8000; 0 = ephemeral)")
    parser.add_argument("--max-batch-size", type=int, default=None)
    parser.add_argument("--max-latency-ms", type=float, default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--high-watermark", type=int, default=None,
                        help="shedder high watermark (0 disables shedding)")
    parser.add_argument("--timeout-s", type=float, default=None,
                        help="per-request deadline inside the batcher")
    parser.add_argument("--cache-size", type=int, default=None,
                        help="encoded-hypervector LRU entries (0 disables)")
    parser.add_argument("--no-packed", action="store_true",
                        help="forbid the bit-packed fast path")
    parser.add_argument("--no-extractor", action="store_true",
                        help="serve features only (skip rebuilding the CNN)")
    parser.add_argument("--dry-run", action="store_true",
                        help="build engine+server, print health JSON, exit")
    parser.add_argument("--fleet", type=int, default=0, metavar="N",
                        help="serve through a supervised N-worker fleet "
                             "behind a consistent-hash router (0 = "
                             "single-process mode)")
    parser.add_argument("--chaos", action="store_true",
                        help="arm the POST /slow fault-injection "
                             "endpoint (tests/chaos harness only)")
    parser.add_argument("--trace", action="store_true",
                        help="enable per-request distributed tracing "
                             "(flight recorder + /tracez + /requestz); "
                             "also via REPRO_TRACE=1")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="additionally export sampled trace spans "
                             "as JSONL under DIR (implies --trace; "
                             "also via REPRO_TRACE_DIR)")
    parser.add_argument("--trace-sample", type=float, default=None,
                        metavar="RATE",
                        help="head-sampling rate in [0, 1] for trace "
                             "export (default 1.0; the flight recorder "
                             "sees every trace regardless)")
    return parser.parse_args(argv)


def configure_tracing(args: argparse.Namespace, service: str) -> bool:
    """Turn on request tracing for this process if flags/env ask for it.

    Flags win over the ``REPRO_TRACE`` / ``REPRO_TRACE_DIR`` /
    ``REPRO_TRACE_SAMPLE`` environment (which is how a fleet supervisor
    arms spawned workers).  Returns whether tracing was enabled.
    """
    env = tracing_env_options()
    trace_dir = getattr(args, "trace_dir", None) or env["trace_dir"]
    enabled = bool(getattr(args, "trace", False)) or env["enabled"] \
        or trace_dir is not None
    if not enabled:
        return False
    sample = getattr(args, "trace_sample", None)
    sample_rate = float(sample) if sample is not None else env["sample_rate"]
    enable_request_tracing(service=service, sample_rate=sample_rate,
                           trace_dir=trace_dir)
    return True


def build_server(args: argparse.Namespace) -> ModelServer:
    """Resolve config + flags into a bound (not yet serving) server."""
    config = load_config(args.config) if args.config else {}

    def knob(name: str, default: Any) -> Any:
        flag = getattr(args, name, None)
        if flag is not None:
            return flag
        return config.get(name, default)

    engine_options: Dict[str, Any] = {
        "cache_size": int(knob("cache_size", 256)),
    }
    if args.no_packed:
        engine_options["use_packed"] = False
    elif "use_packed" in config:
        engine_options["use_packed"] = bool(config["use_packed"])
    if args.no_extractor:
        engine_options["build_extractor"] = False
    elif "build_extractor" in config:
        engine_options["build_extractor"] = bool(config["build_extractor"])
    if "selfcheck" in config:
        engine_options["selfcheck"] = bool(config["selfcheck"])
    if "quality" in config:
        engine_options["quality"] = bool(config["quality"])
    if "quality_window" in config:
        engine_options["quality_window"] = int(config["quality_window"])
    if "compile_passes" in config:
        engine_options["passes"] = config["compile_passes"]
    if "compile_executors" in config:
        engine_options["executors"] = config["compile_executors"]
    if "compile_stage_cache" in config:
        engine_options["stage_cache_size"] = int(
            config["compile_stage_cache"])

    ModelBundle.verify(args.bundle)
    engine = InferenceEngine.from_path(args.bundle, **engine_options)

    high_watermark = knob("high_watermark", 128)
    high_watermark = int(high_watermark) if high_watermark else None
    return ModelServer(
        engine,
        host=str(knob("host", "127.0.0.1")),
        port=int(knob("port", 8000)),
        max_batch_size=int(knob("max_batch_size", 32)),
        max_latency_ms=float(knob("max_latency_ms", 5.0)),
        workers=int(knob("workers", 2)),
        high_watermark=high_watermark,
        timeout_s=float(knob("timeout_s", 5.0)),
        bundle_path=args.bundle,
        engine_options=engine_options,
        chaos=True if getattr(args, "chaos", False) else None,
        alert_rules=config.get("alert_rules"),
        alert_interval_s=float(config.get("alert_interval_s", 1.0)),
        online_options=config.get("online_options"),
    )


def worker_args_from(args: argparse.Namespace) -> List[str]:
    """Forward explicitly-set tuning flags to fleet worker processes
    (each worker is its own ``python -m repro.serve`` invocation)."""
    out: List[str] = []
    if args.config:
        out += ["--config", args.config]
    for flag, name in (("--max-batch-size", "max_batch_size"),
                       ("--max-latency-ms", "max_latency_ms"),
                       ("--workers", "workers"),
                       ("--high-watermark", "high_watermark"),
                       ("--timeout-s", "timeout_s"),
                       ("--cache-size", "cache_size")):
        value = getattr(args, name, None)
        if value is not None:
            out += [flag, str(value)]
    if args.no_packed:
        out.append("--no-packed")
    if args.no_extractor:
        out.append("--no-extractor")
    if args.chaos:
        out.append("--chaos")
    if getattr(args, "trace", False):
        out.append("--trace")
    if getattr(args, "trace_dir", None):
        out += ["--trace-dir", args.trace_dir]
    if getattr(args, "trace_sample", None) is not None:
        out += ["--trace-sample", str(args.trace_sample)]
    return out


def build_fleet(args: argparse.Namespace) -> Router:
    """Resolve flags into a bound (not yet serving) fleet router."""
    config = load_config(args.config) if args.config else {}
    ModelBundle.verify(args.bundle)  # fail before spawning anything
    supervisor = Supervisor(
        args.bundle, workers=int(args.fleet),
        host=str(args.host if args.host is not None
                 else config.get("host", "127.0.0.1")),
        worker_args=worker_args_from(args),
        chaos=args.chaos,
        trace_dir=getattr(args, "trace_dir", None),
        trace_sample=getattr(args, "trace_sample", None),
    )
    router = Router(
        supervisor,
        host=str(args.host if args.host is not None
                 else config.get("host", "127.0.0.1")),
        port=int(args.port if args.port is not None
                 else config.get("port", 8000)),
        own_fleet=True,
        alert_rules=config.get("alert_rules"),
        alert_interval_s=float(config.get("alert_interval_s", 1.0)),
    )
    supervisor.start(wait_ready=False)
    try:
        supervisor.wait_ready()
    except FleetError:
        supervisor.stop()
        raise
    return router


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    if args.fleet:
        return _main_fleet(args)
    try:
        server = build_server(args)
    except (BundleError, EngineSelfCheckError, OSError,
            ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    configure_tracing(args, service=f"worker-{server.address[1]}")

    if args.dry_run:
        print(json.dumps(server.health(), indent=2, sort_keys=True,
                         default=str))
        server.stop()
        return 0

    host, port = server.address
    print(f"serving {args.bundle} on http://{host}:{port} "
          f"(POST /predict, /reload; GET /healthz, /metrics; "
          f"SIGHUP reloads, SIGTERM drains)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
        server.stop()
    return 0


def _main_fleet(args: argparse.Namespace) -> int:
    configure_tracing(args, service="router")
    try:
        router = build_fleet(args)
    except (BundleError, EngineSelfCheckError, FleetError, OSError,
            ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.dry_run:
        print(json.dumps(router.health(), indent=2, sort_keys=True,
                         default=str))
        router.stop()
        return 0

    host, port = router.address
    print(f"serving {args.bundle} through a {args.fleet}-worker fleet "
          f"on http://{host}:{port} (POST /predict, /reload; "
          f"GET /healthz, /metrics; SIGTERM drains)")
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        print("shutting down fleet")
        router.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
